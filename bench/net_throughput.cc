// Network front-end throughput (src/net/): the full loopback path —
// JoinClient -> wire protocol -> epoll JoinServer -> admission control ->
// JoinService -> sharded index — versus the same service driven in-process.
// The delta is the whole cost of the network boundary (framing, syscalls,
// loopback TCP), which is the number the ACT paper's throughput claims
// need before they mean anything to a remote client.
//
//   in-process:  Submit() directly, batches of --batch points
//   loopback xN: N client threads, each with its own connection, driving
//                the same batches through the socket
//
// Extra flags: --shards (default 8), --batch (points per request),
// --clients (loopback client threads), --workers (service worker
// threads; default = --threads), --io_threads (server event loops).

#include <sys/socket.h>

#include <atomic>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "net/admin_server.h"
#include "net/join_client.h"
#include "net/join_server.h"
#include "net/socket.h"
#include "service/join_service.h"
#include "service/sharded_index.h"
#include "util/cpu_profiler.h"
#include "util/timer.h"

namespace actjoin::bench {
namespace {

/// One blocking HTTP GET against the admin plane; returns the body ("" on
/// any failure).
std::string AdminGet(uint16_t port, const std::string& target) {
  std::string error;
  net::UniqueFd fd = net::ConnectTcp("127.0.0.1", port, &error);
  if (!fd.valid()) return {};
  const std::string request =
      "GET " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  if (!net::SendAll(fd.get(), reinterpret_cast<const uint8_t*>(request.data()),
                    request.size(), &error)) {
    return {};
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = recv(fd.get(), buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  const size_t body_at = response.find("\r\n\r\n");
  if (response.rfind("HTTP/1.1 200", 0) != 0 || body_at == std::string::npos) {
    return {};
  }
  return response.substr(body_at + 4);
}

int Run(int argc, char** argv) {
  util::Flags flags;
  flags.AddInt("shards", 8, "shard count for the served index");
  flags.AddInt("batch", 65536, "points per JOIN_BATCH request");
  flags.AddInt("clients", 4, "loopback client threads");
  flags.AddInt("workers", 0,
               "JoinService worker threads (0 => same as --threads)");
  flags.AddInt("io_threads", 2, "JoinServer event-loop threads");
  BenchEnv env = ParseEnv(argc, argv, &flags);
  if (env.smoke) {
    env.threads = 4;
    env.reps = 3;
  }
  const int shards = std::max(1, static_cast<int>(flags.GetInt("shards")));
  const uint64_t batch_points = std::max<int64_t>(1, flags.GetInt("batch"));
  const int clients = std::max(1, static_cast<int>(flags.GetInt("clients")));
  const int io_threads =
      std::max(1, static_cast<int>(flags.GetInt("io_threads")));
  int workers = static_cast<int>(flags.GetInt("workers"));
  if (workers <= 0) workers = env.threads;

  wl::PolygonDataset ds = wl::Neighborhoods(env.scale);
  wl::PointSet pts = Taxi(env, ds.mbr);
  act::JoinInput input = pts.AsJoinInput();

  service::ShardingOptions sharding;
  sharding.num_shards = shards;
  sharding.build.precision_bound_m = 60.0;
  sharding.build.threads = env.threads;
  auto index = std::make_shared<const service::ShardedIndex>(
      service::ShardedIndex::Build(ds.polygons, env.grid, sharding));

  // Pre-slice the workload once; both configurations replay these batches.
  std::vector<service::QueryBatch> batches;
  for (uint64_t begin = 0; begin < input.size(); begin += batch_points) {
    uint64_t end = std::min(begin + batch_points, input.size());
    service::QueryBatch batch;
    batch.cell_ids.assign(input.cell_ids.begin() + begin,
                          input.cell_ids.begin() + end);
    batch.points.assign(input.points.begin() + begin,
                        input.points.begin() + end);
    batch.mode = act::JoinMode::kApproximate;
    batches.push_back(std::move(batch));
  }

  std::printf(
      "Network front-end throughput: %zu polygons, %llu points in %zu "
      "batches, %d shards, %d workers, %d clients (scale=%.3g)\n\n",
      ds.polygons.size(), static_cast<unsigned long long>(input.size()),
      batches.size(), shards, workers, clients, env.scale);
  util::TablePrinter table(
      {"config", "throughput [M points/s]", "p50 [ms]", "p99 [ms]"});

  double inproc_mps = 0;
  {
    service::ServiceOptions sopts;
    sopts.worker_threads = workers;
    service::ServiceStats sstats;
    for (int r = 0; r < env.reps; ++r) {
      service::JoinService service(index, sopts);
      std::vector<std::future<service::JoinResult>> futures;
      futures.reserve(batches.size());
      util::WallTimer timer;
      for (const service::QueryBatch& b : batches) {
        futures.push_back(service.Submit(b));
      }
      uint64_t served = 0;
      for (auto& f : futures) served += f.get().stats.num_points;
      double seconds = timer.ElapsedSeconds();
      if (seconds > 0) {
        inproc_mps = std::max(
            inproc_mps, static_cast<double>(served) / seconds / 1e6);
      }
      sstats = service.Stats();
    }
    NoteThroughput(inproc_mps);
    table.AddRow({"in-process", util::TablePrinter::Fmt(inproc_mps, 2),
                  util::TablePrinter::Fmt(sstats.service_p50_ms, 2),
                  util::TablePrinter::Fmt(sstats.service_p99_ms, 2)});
  }

  // One loopback configuration: max throughput over env.reps runs, final
  // stats in *out_stats. `traced` requests a per-stage trace on every
  // batch (the observability A/B's "everything on" arm). Returns < 0 on
  // a failed run.
  // `passes` replays the batch list that many times per run: the smoke
  // workload is a single batch, and an A/B gate on one 5 ms request would
  // be measuring connection setup, not the hot path.
  // `admin_plane` additionally stands up the HTTP admin endpoint next to
  // the wire server (the "everything on" arm's deployment shape) and
  // scrapes /metrics once per rep to prove the plane is live.
  auto run_loopback = [&](const service::ServiceOptions& sopts, bool traced,
                          int passes, int reps, service::ServiceStats* out_stats,
                          bool admin_plane = false) -> double {
    std::vector<service::QueryBatch> work;
    work.reserve(batches.size() * static_cast<size_t>(passes));
    for (int p = 0; p < passes; ++p) {
      for (const service::QueryBatch& b : batches) work.push_back(b);
    }
    if (traced) {
      for (size_t k = 0; k < work.size(); ++k) {
        work[k].trace = true;
        work[k].trace_id = k + 1;
      }
    }
    const uint64_t expected =
        input.size() * static_cast<uint64_t>(passes);
    double mps = -1;
    for (int r = 0; r < reps; ++r) {
      service::JoinService service(index, sopts);
      net::ServerOptions nopts;
      nopts.io_threads = io_threads;
      net::JoinServer server(&service, nopts);
      std::string error;
      if (!server.Start(&error)) {
        std::fprintf(stderr, "JoinServer start failed: %s\n", error.c_str());
        return -1;
      }
      std::unique_ptr<net::AdminServer> admin;
      if (admin_plane) {
        admin = std::make_unique<net::AdminServer>(&service,
                                                   net::AdminOptions{},
                                                   &server);
        if (!admin->Start(&error)) {
          std::fprintf(stderr, "AdminServer start failed: %s\n",
                       error.c_str());
          return -1;
        }
      }
      // Clients pull batch indices round-robin; every batch is sent once.
      std::vector<std::thread> pool;
      std::vector<uint64_t> served_per_client(
          static_cast<size_t>(clients), 0);
      util::WallTimer timer;
      for (int c = 0; c < clients; ++c) {
        pool.emplace_back([&, c] {
          net::JoinClient client;
          if (!client.Connect(server.host(), server.port())) return;
          uint64_t served = 0;
          for (size_t k = static_cast<size_t>(c); k < work.size();
               k += static_cast<size_t>(clients)) {
            net::JoinClient::Reply reply = client.Join(work[k]);
            if (reply.ok) served += reply.result.stats.num_points;
          }
          served_per_client[static_cast<size_t>(c)] = served;
        });
      }
      for (auto& t : pool) t.join();
      double seconds = timer.ElapsedSeconds();
      uint64_t served = 0;
      for (uint64_t s : served_per_client) served += s;
      if (served != expected) {
        std::fprintf(stderr, "loopback run served %llu of %llu points\n",
                     static_cast<unsigned long long>(served),
                     static_cast<unsigned long long>(expected));
        return -1;
      }
      if (seconds > 0) {
        mps = std::max(mps, static_cast<double>(served) / seconds / 1e6);
      }
      *out_stats = server.StatsWithAdmission();
      if (admin != nullptr && AdminGet(admin->port(), "/metrics").empty()) {
        std::fprintf(stderr, "admin /metrics scrape failed\n");
        return -1;
      }
      server.Stop();
    }
    return mps;
  };

  double loopback_mps = 0;
  {
    service::ServiceOptions sopts;
    sopts.worker_threads = workers;
    service::ServiceStats sstats;
    loopback_mps = run_loopback(sopts, /*traced=*/false, /*passes=*/1,
                                env.reps, &sstats);
    if (loopback_mps < 0) return 1;
    NoteThroughput(loopback_mps);
    char name[64];
    std::snprintf(name, sizeof(name), "loopback x%d", clients);
    table.AddRow({name, util::TablePrinter::Fmt(loopback_mps, 2),
                  util::TablePrinter::Fmt(sstats.service_p50_ms, 2),
                  util::TablePrinter::Fmt(sstats.service_p99_ms, 2)});
  }

  // Observability A/B: the same loopback drive with every instrument off
  // (no registry, no traces, no admin plane) versus everything on
  // (registry + per-request stage traces + hardware stage counters + the
  // HTTP admin endpoint). The delta is the full price of the
  // observability stack on the hot path; the smoke run *gates* it at
  // < 5%.
  double obs_off_mps = 0;
  double obs_on_mps = 0;
  double best_pair_ratio = 0;
  {
    // Smoke's whole workload is one batch; measure each arm over enough
    // passes that per-run fixed costs stop moving the ratio. The arms
    // *alternate* rep by rep and each keeps its max: ambient contention
    // (bench_smoke runs under a parallel ctest) degrades both arms, while
    // each arm's best rep approaches its uncontended ceiling — the ratio
    // of the maxes is what the 5% gate can judge reliably.
    const int ab_passes = env.smoke ? 16 : 1;
    const int ab_pairs = std::max(env.reps, env.smoke ? 6 : env.reps);
    service::ServiceOptions off;
    off.worker_threads = workers;
    off.enable_metrics = false;
    service::ServiceOptions on;
    on.worker_threads = workers;  // enable_metrics defaults true
    on.stage_perf_counters = true;
    service::ServiceStats off_stats, on_stats;
    for (int pair = 0; pair < ab_pairs; ++pair) {
      service::ServiceStats sstats;
      double off_mps =
          run_loopback(off, /*traced=*/false, ab_passes, /*reps=*/1, &sstats);
      if (off_mps < 0) return 1;
      if (off_mps > obs_off_mps) {
        obs_off_mps = off_mps;
        off_stats = sstats;
      }
      double on_mps = run_loopback(on, /*traced=*/true, ab_passes, /*reps=*/1,
                                   &sstats, /*admin_plane=*/true);
      if (on_mps < 0) return 1;
      if (on_mps > obs_on_mps) {
        obs_on_mps = on_mps;
        on_stats = sstats;
      }
      // The gate judges temporally adjacent runs: both arms of one pair
      // see the same ambient contention, so a pair ratio near 1 is real
      // even when an absolute max is depressed by a busy machine. A
      // genuine hot-path regression drags *every* pair down.
      if (off_mps > 0) {
        best_pair_ratio = std::max(best_pair_ratio, on_mps / off_mps);
      }
    }
    table.AddRow({"observability off",
                  util::TablePrinter::Fmt(obs_off_mps, 2),
                  util::TablePrinter::Fmt(off_stats.service_p50_ms, 2),
                  util::TablePrinter::Fmt(off_stats.service_p99_ms, 2)});
    table.AddRow({"observability on+trace",
                  util::TablePrinter::Fmt(obs_on_mps, 2),
                  util::TablePrinter::Fmt(on_stats.service_p50_ms, 2),
                  util::TablePrinter::Fmt(on_stats.service_p99_ms, 2)});
  }

  Emit(env, table);
  std::printf("wire-boundary cost at batch=%llu: %.1f%% of in-process "
              "throughput retained\n",
              static_cast<unsigned long long>(batch_points),
              inproc_mps > 0 ? 100.0 * loopback_mps / inproc_mps : 0.0);

  const double overhead =
      obs_off_mps > 0 ? 1.0 - obs_on_mps / obs_off_mps : 0.0;
  std::printf("observability overhead (metrics registry + per-request "
              "tracing): %.1f%%\n", overhead * 100.0);
  if (!SmokeReportPath().empty()) {
    AppendSmokeReport(SmokeReportPath(), "net_throughput/observability_off",
                      obs_off_mps, 0.0);
    AppendSmokeReport(SmokeReportPath(), "net_throughput/observability_on",
                      obs_on_mps, 0.0);
  }
  if (env.smoke && best_pair_ratio < 0.95) {
    std::fprintf(stderr,
                 "FAIL: observability overhead exceeds the 5%% budget in "
                 "every A/B pair (best on/off ratio %.3f; max off %.2f "
                 "Mpts/s, max on %.2f Mpts/s)\n",
                 best_pair_ratio, obs_off_mps, obs_on_mps);
    return 1;
  }

  // /profilez under saturation: drive the server flat-out while the admin
  // plane samples the process for a second, and require the collapsed
  // stacks to name the join hot path — the acceptance check that the
  // profiler sees through the serving stack, not just the bench driver.
  if (util::CpuProfiler::Supported()) {
    service::ServiceOptions sopts;
    sopts.worker_threads = workers;
    sopts.stage_perf_counters = true;
    service::JoinService service(index, sopts);
    net::ServerOptions nopts;
    nopts.io_threads = io_threads;
    net::JoinServer server(&service, nopts);
    std::string error;
    if (!server.Start(&error)) {
      std::fprintf(stderr, "JoinServer start failed: %s\n", error.c_str());
      return 1;
    }
    net::AdminServer admin(&service, net::AdminOptions{}, &server);
    if (!admin.Start(&error)) {
      std::fprintf(stderr, "AdminServer start failed: %s\n", error.c_str());
      return 1;
    }
    std::atomic<bool> stop{false};
    std::vector<std::thread> pool;
    for (int c = 0; c < clients; ++c) {
      pool.emplace_back([&, c] {
        net::JoinClient client;
        if (!client.Connect(server.host(), server.port())) return;
        for (size_t k = static_cast<size_t>(c); !stop.load();
             k += static_cast<size_t>(clients)) {
          client.Join(batches[k % batches.size()]);
        }
      });
    }
    const std::string collapsed = AdminGet(admin.port(), "/profilez?seconds=1");
    stop.store(true);
    for (auto& t : pool) t.join();

    bool hot_path_named = false;
    for (const char* frame :
         {"Probe", "ShardedIndex", "WorkStealingPool", "CellTrie", "actjoin"}) {
      if (collapsed.find(frame) != std::string::npos) {
        hot_path_named = true;
        break;
      }
    }
    std::printf("/profilez under saturation: %d samples, %s\n",
                util::CpuProfiler::last_sample_count(),
                hot_path_named ? "join hot path named in collapsed stacks"
                               : "hot path NOT found");
    if (env.smoke && (collapsed.empty() || !hot_path_named)) {
      std::fprintf(stderr,
                   "FAIL: /profilez of a saturated run returned no "
                   "join-path frames (%zu bytes of collapsed stacks)\n",
                   collapsed.size());
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace actjoin::bench

int main(int argc, char** argv) {
  return actjoin::bench::BenchMain(argc, argv, "net_throughput",
                                   actjoin::bench::Run);
}
