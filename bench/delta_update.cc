// Delta-update benchmark (src/service/ + src/store/): applying a live
// mutation copy-on-write versus rebuilding the whole index, and restarting
// from a full+delta chain versus a compacted full snapshot.
//
// Live mutation's reason to exist is the apply path: a full rebuild re-runs
// the covering pipeline over every polygon, while ApplyDelta recomputes
// coverings only for the added batch and clones only the touched shards.
// This bench measures exactly that delta, per NYC dataset and in total, and
// verifies both correctness halves before trusting any timing:
//
//   * the delta-applied index answers exact-mode joins byte-identically to
//     a fresh build over the same final polygon set;
//   * a store restart replaying full -> delta(add) -> delta(remove) serves
//     byte-identically to a restart from one compacted full snapshot of the
//     same mutated index.
//
// --smoke appends `delta_update_apply` / `delta_update_rebuild` lines to
// bench_smoke.json (wall_ms carries the signal; throughput_mps is polygons
// mutated per second, in millions) and *fails* unless the apply beats the
// rebuild — the mutation path's acceptance criterion.
//
// Extra flags: --shards, --churn (fraction of each dataset arriving as the
// live add batch), --store_dir.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "service/mutation_journal.h"
#include "service/sharded_index.h"
#include "store/snapshot_store.h"
#include "util/timer.h"

namespace actjoin::bench {
namespace {

bool SameJoin(const act::JoinStats& a, const act::JoinStats& b) {
  return a.counts == b.counts && a.result_pairs == b.result_pairs &&
         a.matched_points == b.matched_points;
}

int Run(int argc, char** argv) {
  util::Flags flags;
  flags.AddInt("shards", 4, "shard count of the served index");
  flags.AddDouble("churn", 0.1,
                  "fraction of each dataset arriving as the live add batch");
  flags.AddString("store_dir", "delta_update_store",
                  "snapshot store directory (created if missing)");
  BenchEnv env = ParseEnv(argc, argv, &flags);
  const int shards = std::max(1, static_cast<int>(flags.GetInt("shards")));
  const double churn =
      std::clamp(flags.GetDouble("churn"), 0.01, 0.9);

  store::SnapshotStore store;
  std::string error;
  if (!store.Open({.dir = flags.GetString("store_dir")}, &error)) {
    std::fprintf(stderr, "delta_update: cannot open store: %s\n",
                 error.c_str());
    return 1;
  }

  std::vector<wl::PolygonDataset> datasets = NycDatasets(env);
  std::printf(
      "Delta update: copy-on-write apply vs full rebuild, %d shards, "
      "churn=%.2f, %d rep(s) (scale=%.3g)\n\n",
      shards, churn, env.reps, env.scale);
  util::TablePrinter table({"dataset", "base", "added", "rebuild [ms]",
                            "apply [ms]", "speedup"});

  service::ShardingOptions sharding;
  sharding.num_shards = shards;
  sharding.build.threads = env.threads;

  double total_rebuild_s = 0, total_apply_s = 0;
  uint64_t total_added = 0;
  for (const wl::PolygonDataset& ds : datasets) {
    if (ds.polygons.size() < 4) continue;
    // Split: the head is the standing index, the tail arrives live.
    const size_t n_add = std::max<size_t>(
        1, static_cast<size_t>(static_cast<double>(ds.polygons.size()) *
                               churn));
    const size_t n_base = ds.polygons.size() - n_add;
    std::vector<geom::Polygon> base_polys(ds.polygons.begin(),
                                          ds.polygons.begin() +
                                              static_cast<ptrdiff_t>(n_base));
    std::vector<geom::Polygon> add_polys(ds.polygons.begin() +
                                             static_cast<ptrdiff_t>(n_base),
                                         ds.polygons.end());

    auto base = std::make_shared<const service::ShardedIndex>(
        service::ShardedIndex::Build(base_polys, env.grid, sharding));

    // Rebuild path: what an update without ApplyDelta pays — the whole
    // covering pipeline over base + batch. Best-of-reps.
    double rebuild_s = 0;
    std::shared_ptr<const service::ShardedIndex> rebuilt;
    for (int r = 0; r < env.reps; ++r) {
      util::WallTimer timer;
      auto index = std::make_shared<const service::ShardedIndex>(
          service::ShardedIndex::Build(ds.polygons, env.grid, sharding));
      double seconds = timer.ElapsedSeconds();
      if (rebuilt == nullptr || seconds < rebuild_s) rebuild_s = seconds;
      rebuilt = std::move(index);
    }

    // Apply path: coverings computed for the batch only, untouched shards
    // aliased.
    double apply_s = 0;
    std::shared_ptr<const service::ShardedIndex> applied;
    for (int r = 0; r < env.reps; ++r) {
      service::ShardedIndex::Delta delta;
      delta.add = add_polys;
      util::WallTimer timer;
      service::ShardedIndex::DeltaResult res =
          service::ShardedIndex::ApplyDelta(*base, delta);
      double seconds = timer.ElapsedSeconds();
      if (applied == nullptr || seconds < apply_s) apply_s = seconds;
      applied = std::move(res.index);
    }

    // Timings mean nothing unless the applied index *is* the rebuilt one:
    // exact-mode joins must agree byte for byte.
    wl::PointSet pts = wl::TaxiPoints(
        ds.mbr, std::min<uint64_t>(env.points, 50'000), env.grid, 91);
    act::JoinStats want =
        rebuilt->Join(pts.AsJoinInput(), {act::JoinMode::kExact, 1});
    act::JoinStats got =
        applied->Join(pts.AsJoinInput(), {act::JoinMode::kExact, 1});
    if (!SameJoin(want, got)) {
      std::fprintf(stderr,
                   "delta_update: applied index diverged from rebuilt "
                   "index (%s)\n",
                   ds.name.c_str());
      return 1;
    }

    // Restart equivalence: full(base) -> delta(add) -> delta(remove)
    // replayed by the store must serve exactly like one compacted full
    // snapshot of the same mutated index.
    std::vector<uint32_t> remove_ids;
    for (uint32_t gid = 0; gid < static_cast<uint32_t>(n_base);
         gid += 7) {
      remove_ids.push_back(gid);
    }
    service::ShardedIndex::Delta remove_delta;
    remove_delta.remove = remove_ids;
    std::shared_ptr<const service::ShardedIndex> final_index =
        service::ShardedIndex::ApplyDelta(*applied, remove_delta).index;

    const std::string chain_name = "delta-" + ds.name;
    const std::string compact_name = "compact-" + ds.name;
    service::MutationRecord add_rec;
    add_rec.kind = service::MutationRecord::Kind::kAdd;
    add_rec.added = add_polys;
    service::MutationRecord remove_rec;
    remove_rec.kind = service::MutationRecord::Kind::kRemove;
    remove_rec.removed = remove_ids;
    if (!store.Put(chain_name, *base, nullptr, &error) ||
        !store.PutDelta(chain_name, {add_rec}, nullptr, &error) ||
        !store.PutDelta(chain_name, {remove_rec}, nullptr, &error) ||
        !store.Put(compact_name, *final_index, nullptr, &error)) {
      std::fprintf(stderr, "delta_update: persist failed: %s\n",
                   error.c_str());
      return 1;
    }
    store::LoadReport chain_report, compact_report;
    auto from_chain = store.Load(chain_name, &chain_report);
    auto from_compact = store.Load(compact_name, &compact_report);
    if (from_chain == nullptr || from_compact == nullptr ||
        chain_report.deltas_applied != 2) {
      std::fprintf(stderr,
                   "delta_update: restart failed (%s / %s; deltas=%u)\n",
                   chain_report.detail.c_str(),
                   compact_report.detail.c_str(),
                   chain_report.deltas_applied);
      return 1;
    }
    act::JoinStats chain_join =
        from_chain->Join(pts.AsJoinInput(), {act::JoinMode::kExact, 1});
    act::JoinStats compact_join =
        from_compact->Join(pts.AsJoinInput(), {act::JoinMode::kExact, 1});
    act::JoinStats live_join =
        final_index->Join(pts.AsJoinInput(), {act::JoinMode::kExact, 1});
    if (!SameJoin(chain_join, live_join) ||
        !SameJoin(chain_join, compact_join)) {
      std::fprintf(stderr,
                   "delta_update: restart-from-chain diverged from "
                   "restart-from-compacted (%s)\n",
                   ds.name.c_str());
      return 1;
    }

    total_rebuild_s += rebuild_s;
    total_apply_s += apply_s;
    total_added += n_add;
    table.AddRow({ds.name, std::to_string(n_base), std::to_string(n_add),
                  util::TablePrinter::Fmt(rebuild_s * 1e3, 2),
                  util::TablePrinter::Fmt(apply_s * 1e3, 2),
                  util::TablePrinter::Fmt(
                      apply_s > 0 ? rebuild_s / apply_s : 0, 1)});
  }
  table.AddRow({"TOTAL", "", std::to_string(total_added),
                util::TablePrinter::Fmt(total_rebuild_s * 1e3, 2),
                util::TablePrinter::Fmt(total_apply_s * 1e3, 2),
                util::TablePrinter::Fmt(
                    total_apply_s > 0 ? total_rebuild_s / total_apply_s : 0,
                    1)});
  Emit(env, table);
  store.GarbageCollect();

  // Mutation throughput (polygons added per second) drives the summary.
  if (total_apply_s > 0) {
    NoteThroughput(static_cast<double>(total_added) / total_apply_s / 1e6);
  }
  if (!SmokeReportPath().empty()) {
    AppendSmokeReport(SmokeReportPath(), "delta_update_rebuild",
                      total_rebuild_s > 0
                          ? static_cast<double>(total_added) /
                                total_rebuild_s / 1e6
                          : 0,
                      total_rebuild_s * 1e3);
    AppendSmokeReport(SmokeReportPath(), "delta_update_apply",
                      total_apply_s > 0
                          ? static_cast<double>(total_added) /
                                total_apply_s / 1e6
                          : 0,
                      total_apply_s * 1e3);
  }

  if (env.smoke && total_apply_s >= total_rebuild_s) {
    // The acceptance gate: if applying a delta is not faster than
    // rebuilding from scratch, live mutation lost its reason to exist.
    std::fprintf(stderr,
                 "delta_update: delta apply (%.2f ms) did not beat rebuild "
                 "(%.2f ms)\n",
                 total_apply_s * 1e3, total_rebuild_s * 1e3);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace actjoin::bench

int main(int argc, char** argv) {
  return actjoin::bench::BenchMain(argc, argv, "delta_update",
                                   actjoin::bench::Run);
}
