// Reproduces paper Figure 9: single-threaded approximate-join throughput on
// the four Twitter-city workloads (NYC 289, SF 117, LA 160, BOS 42
// neighborhood polygons) across 60/15/4 m precision bounds. Tweet-analog
// points are clustered like the taxi data.

#include <cstdio>

#include "bench/bench_common.h"

namespace actjoin::bench {
namespace {

int Run(int argc, char** argv) {
  util::Flags flags;
  BenchEnv env = ParseEnv(argc, argv, &flags);
  act::JoinOptions join_opts{act::JoinMode::kApproximate, 1};

  std::printf("Figure 9: Twitter-analog cities (scale=%.3g)\n\n", env.scale);

  util::TablePrinter table({"city", "#polys", "precision [m]", "index",
                            "throughput [M points/s]"});
  for (const wl::PolygonDataset& ds : wl::TwitterCities(env.scale)) {
    act::PolygonClassifier classifier(ds.polygons, env.grid, env.threads);
    // Tweets are clustered; the paper's per-city point counts differ but
    // throughput is per point, so one size fits.
    wl::PointSet pts = Taxi(env, ds.mbr, /*seed=*/900 + ds.polygons.size());
    for (double precision : {60.0, 15.0, 4.0}) {
      act::SuperCovering sc =
          BuildCovering(ds, env, classifier, precision, nullptr);
      act::EncodedCovering enc = act::Encode(sc);
      for (const StructureRun& run :
           RunAllStructures(enc, ds.polygons, pts.AsJoinInput(), join_opts,
                            env.reps)) {
        table.AddRow({ds.name, util::TablePrinter::FmtInt(ds.polygons.size()),
                      util::TablePrinter::Fmt(precision, 0), run.name,
                      util::TablePrinter::Fmt(run.mpoints_s, 2)});
      }
    }
  }
  Emit(env, table);
  std::printf(
      "Paper shape: highest throughput for BOS (42 polygons), then SF, LA,\n"
      "NYC; precision hardly affects ACT4 (~52 M points/s for NYC at 4 m).\n");
  return 0;
}

}  // namespace
}  // namespace actjoin::bench

int main(int argc, char** argv) {
  return actjoin::bench::BenchMain(argc, argv, "fig9_twitter",
                                   actjoin::bench::Run);
}
