// Reproduces paper Table 2: size and single-threaded build time of the
// five data structures (ACT1/ACT2/ACT4, GBT, LB) over the 4 m super
// coverings of the three NYC polygon datasets.

#include <cstdio>

#include "act/act.h"
#include "bench/bench_common.h"
#include "util/timer.h"

namespace actjoin::bench {
namespace {

int Run(int argc, char** argv) {
  util::Flags flags;
  BenchEnv env = ParseEnv(argc, argv, &flags);

  std::printf("Table 2: data structure metrics, 4 m precision (scale=%.3g)\n\n",
              env.scale);

  util::TablePrinter table(
      {"super cov.", "# cells [M]", "index", "size [MiB]", "build [s]"});

  for (const wl::PolygonDataset& ds : NycDatasets(env)) {
    act::PolygonClassifier classifier(ds.polygons, env.grid, env.threads);
    act::BuildTimings timings;
    act::SuperCovering sc = BuildCovering(ds, env, classifier, 4.0, &timings);
    act::EncodedCovering enc = act::Encode(sc);
    std::string cells_m =
        util::TablePrinter::FmtM(static_cast<double>(sc.size()));

    util::WallTimer timer;
    for (int bits : {2, 4, 8}) {
      timer.Restart();
      act::AdaptiveCellTrie trie(enc, {.bits_per_level = bits});
      double build = timer.ElapsedSeconds();
      table.AddRow({ds.name, cells_m, "ACT" + std::to_string(bits / 2),
                    Mib(trie.stats().memory_bytes),
                    util::TablePrinter::Fmt(build, 2)});
    }
    timer.Restart();
    baselines::BTreeCellIndex gbt(enc);
    double gbt_build = timer.ElapsedSeconds();
    table.AddRow({ds.name, cells_m, "GBT", Mib(gbt.MemoryBytes()),
                  util::TablePrinter::Fmt(gbt_build, 2)});
    baselines::SortedVectorIndex lb(enc);
    table.AddRow({ds.name, cells_m, "LB", Mib(lb.MemoryBytes()), "-"});
  }
  Emit(env, table);
  std::printf(
      "Paper shape: ACT more space-efficient at higher fanout except when\n"
      "nodes go sparse (census/ACT4); LB has no build cost (pre-sorted).\n");
  return 0;
}

}  // namespace
}  // namespace actjoin::bench

int main(int argc, char** argv) {
  return actjoin::bench::BenchMain(argc, argv, "table2_structures",
                                   actjoin::bench::Run);
}
