// Reproduces paper Figure 8: single-threaded approximate-join throughput at
// 4 m precision with *uniform* synthetic points — the adversarial case for
// caching. The gap to Fig. 7 (left) quantifies how much real-world point
// skew helps each structure.

#include <cstdio>

#include "bench/bench_common.h"

namespace actjoin::bench {
namespace {

int Run(int argc, char** argv) {
  util::Flags flags;
  BenchEnv env = ParseEnv(argc, argv, &flags);
  act::JoinOptions join_opts{act::JoinMode::kApproximate, 1};

  std::printf("Figure 8: uniform points, single-threaded, 4 m "
              "(scale=%.3g)\n\n", env.scale);

  util::TablePrinter table({"polygons", "index", "uniform [M points/s]",
                            "taxi [M points/s]", "uniform/taxi"});
  for (const wl::PolygonDataset& ds : NycDatasets(env)) {
    act::PolygonClassifier classifier(ds.polygons, env.grid, env.threads);
    act::SuperCovering sc = BuildCovering(ds, env, classifier, 4.0, nullptr);
    act::EncodedCovering enc = act::Encode(sc);
    wl::PointSet uni = Uniform(env, ds.mbr);
    wl::PointSet taxi = Taxi(env, ds.mbr);
    auto uni_runs = RunAllStructures(enc, ds.polygons, uni.AsJoinInput(),
                                     join_opts, env.reps);
    auto taxi_runs = RunAllStructures(enc, ds.polygons, taxi.AsJoinInput(),
                                      join_opts, env.reps);
    for (size_t k = 0; k < uni_runs.size(); ++k) {
      table.AddRow({ds.name, uni_runs[k].name,
                    util::TablePrinter::Fmt(uni_runs[k].mpoints_s, 2),
                    util::TablePrinter::Fmt(taxi_runs[k].mpoints_s, 2),
                    util::TablePrinter::Fmt(
                        uni_runs[k].mpoints_s / taxi_runs[k].mpoints_s, 2)});
    }
  }
  Emit(env, table);
  std::printf(
      "Paper shape: ACT still fastest, but uniform data costs ACT4 65%% on\n"
      "boroughs, 27%% on neighborhoods, 3%% on census (more branch/cache\n"
      "misses without hot clustered paths).\n");
  return 0;
}

}  // namespace
}  // namespace actjoin::bench

int main(int argc, char** argv) {
  return actjoin::bench::BenchMain(argc, argv, "fig8_uniform",
                                   actjoin::bench::Run);
}
