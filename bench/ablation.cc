// Ablation benchmarks for the design choices argued in paper Sec. 3.1.2:
//   * fanout (bits per radix level), including the ragged 6-bit variant
//   * root-prefix compression on/off ("we therefore only use a common
//     prefix at the root level")
//   * inlined polygon references vs forcing everything through the lookup
//     table ("avoids an unnecessary indirection")
//   * space-filling curve: Hilbert vs Morton (the approach is curve-
//     agnostic; locality differs)
//   * B-tree node byte budget (the paper picked 256 B as most efficient)

#include <cstdio>

#include "act/act.h"
#include "bench/bench_common.h"
#include "util/timer.h"

namespace actjoin::bench {
namespace {

double MeasureTrieThroughput(const act::EncodedCovering& enc,
                             const act::ActOptions& opts,
                             const std::vector<geom::Polygon>& polys,
                             const act::JoinInput& input, int reps) {
  act::AdaptiveCellTrie trie(enc, opts);
  double best = 0;
  for (int r = 0; r < reps; ++r) {
    act::JoinStats stats = act::ExecuteJoin(
        trie, enc.table, input, polys, {act::JoinMode::kApproximate, 1});
    best = std::max(best, stats.ThroughputMps());
  }
  NoteThroughput(best);
  return best;
}

int Run(int argc, char** argv) {
  util::Flags flags;
  BenchEnv env = ParseEnv(argc, argv, &flags);

  wl::PolygonDataset ds = wl::Neighborhoods(env.scale);
  act::PolygonClassifier classifier(ds.polygons, env.grid, env.threads);
  act::SuperCovering sc = BuildCovering(ds, env, classifier, 15.0, nullptr);
  act::EncodedCovering enc = act::Encode(sc);
  act::EncodedCovering enc_no_inline = act::Encode(sc, /*inline_refs=*/false);
  wl::PointSet pts = Taxi(env, ds.mbr);
  act::JoinInput input = pts.AsJoinInput();

  // ----- Fanout sweep -------------------------------------------------------
  std::printf("Ablation A: bits per radix level (neighborhoods, 15 m)\n\n");
  util::TablePrinter fanout({"bits/level", "quadtree levels/node",
                             "nodes", "size [MiB]",
                             "throughput [M points/s]"});
  for (int bits : {2, 3, 4, 6, 8}) {
    act::AdaptiveCellTrie trie(enc, {.bits_per_level = bits});
    double tput = MeasureTrieThroughput(enc, {.bits_per_level = bits},
                                        ds.polygons, input, env.reps);
    fanout.AddRow({util::TablePrinter::FmtInt(bits),
                   util::TablePrinter::Fmt(bits / 2.0, 1),
                   util::TablePrinter::FmtInt(trie.stats().node_count),
                   Mib(trie.stats().memory_bytes),
                   util::TablePrinter::Fmt(tput, 2)});
  }
  Emit(env, fanout);

  // ----- Root prefix --------------------------------------------------------
  std::printf("Ablation B: root prefix compression\n\n");
  util::TablePrinter prefix({"root prefix", "nodes",
                             "throughput [M points/s]"});
  for (bool use_prefix : {true, false}) {
    act::ActOptions opts{.bits_per_level = 8, .use_root_prefix = use_prefix};
    act::AdaptiveCellTrie trie(enc, opts);
    double tput =
        MeasureTrieThroughput(enc, opts, ds.polygons, input, env.reps);
    prefix.AddRow({use_prefix ? "on" : "off",
                   util::TablePrinter::FmtInt(trie.stats().node_count),
                   util::TablePrinter::Fmt(tput, 2)});
  }
  Emit(env, prefix);

  // ----- Inlined references -------------------------------------------------
  std::printf("Ablation C: inlined refs vs lookup-table-only\n\n");
  util::TablePrinter inlined({"encoding", "lookup table [MiB]",
                              "throughput [M points/s]"});
  inlined.AddRow({"inline <=2 refs", Mib(enc.table.SizeBytes()),
                  util::TablePrinter::Fmt(
                      MeasureTrieThroughput(enc, {.bits_per_level = 8},
                                            ds.polygons, input, env.reps),
                      2)});
  inlined.AddRow(
      {"table only", Mib(enc_no_inline.table.SizeBytes()),
       util::TablePrinter::Fmt(
           MeasureTrieThroughput(enc_no_inline, {.bits_per_level = 8},
                                 ds.polygons, input, env.reps),
           2)});
  Emit(env, inlined);

  // ----- Space-filling curve ------------------------------------------------
  std::printf("Ablation D: Hilbert vs Morton enumeration\n\n");
  util::TablePrinter curves({"curve", "# cells", "throughput [M points/s]"});
  for (geo::CurveType curve :
       {geo::CurveType::kHilbert, geo::CurveType::kMorton}) {
    geo::Grid grid(curve);
    act::PolygonClassifier cls(ds.polygons, grid, env.threads);
    act::BuildOptions bopts;
    bopts.threads = env.threads;
    bopts.precision_bound_m = 15.0;
    act::SuperCovering curve_sc =
        act::BuildSuperCovering(ds.polygons, grid, cls, bopts, nullptr);
    act::EncodedCovering curve_enc = act::Encode(curve_sc);
    wl::PointSet curve_pts = wl::TaxiPoints(ds.mbr, env.points, grid, 7);
    double tput = MeasureTrieThroughput(curve_enc, {.bits_per_level = 8},
                                        ds.polygons,
                                        curve_pts.AsJoinInput(), env.reps);
    curves.AddRow({geo::CurveName(curve),
                   util::TablePrinter::FmtInt(curve_sc.size()),
                   util::TablePrinter::Fmt(tput, 2)});
  }
  Emit(env, curves);

  // ----- Batched probing ------------------------------------------------------
  std::printf("Ablation F: scalar vs batched (latency-overlapping) probe\n\n");
  {
    act::AdaptiveCellTrie trie(enc, {.bits_per_level = 8});
    const auto& ids = pts.cell_ids();
    util::TablePrinter batch({"probe", "throughput [M probes/s]"});
    double scalar_best = 0, batch_best = 0;
    std::vector<act::TaggedEntry> sink(ids.size());
    for (int r = 0; r < env.reps; ++r) {
      util::WallTimer timer;
      for (size_t k = 0; k < ids.size(); ++k) sink[k] = trie.Probe(ids[k]);
      scalar_best = std::max(scalar_best,
                             ids.size() / timer.ElapsedSeconds() / 1e6);
      timer.Restart();
      trie.ProbeBatch(ids.data(), ids.size(), sink.data());
      batch_best = std::max(batch_best,
                            ids.size() / timer.ElapsedSeconds() / 1e6);
    }
    batch.AddRow({"scalar", util::TablePrinter::Fmt(scalar_best, 2)});
    batch.AddRow({"batched x8", util::TablePrinter::Fmt(batch_best, 2)});
    Emit(env, batch);
  }

  // ----- B-tree node size ---------------------------------------------------
  std::printf("Ablation E: B-tree node byte budget (GBT)\n\n");
  util::TablePrinter nodes({"node bytes", "height", "size [MiB]",
                            "throughput [M points/s]"});
  for (size_t bytes : {64, 128, 256, 512, 1024, 4096}) {
    baselines::BTreeCellIndex gbt(enc, bytes);
    double best = 0;
    for (int r = 0; r < env.reps; ++r) {
      act::JoinStats stats =
          act::ExecuteJoin(gbt, enc.table, input, ds.polygons,
                           {act::JoinMode::kApproximate, 1});
      best = std::max(best, stats.ThroughputMps());
    }
    NoteThroughput(best);
    nodes.AddRow({util::TablePrinter::FmtInt(bytes),
                  util::TablePrinter::FmtInt(gbt.tree().height()),
                  Mib(gbt.MemoryBytes()),
                  util::TablePrinter::Fmt(best, 2)});
  }
  Emit(env, nodes);
  return 0;
}

}  // namespace
}  // namespace actjoin::bench

int main(int argc, char** argv) {
  return actjoin::bench::BenchMain(argc, argv, "ablation",
                                   actjoin::bench::Run);
}
