#include "bench/bench_common.h"

#include <algorithm>
#include <cstdio>

#include "act/act.h"
#include "act/join.h"
#include "util/timer.h"

namespace actjoin::bench {

namespace {

// Smoke-report state shared between ParseEnv (which learns the report path
// from the flags), NoteThroughput (called from measurement loops), and
// BenchMain (which writes the line). One bench binary = one process, so
// plain globals are sufficient.
std::string g_smoke_report_path;
double g_best_mpoints_s = 0;

}  // namespace

BenchEnv ParseEnv(int argc, char** argv, util::Flags* flags,
                  double default_scale, uint64_t default_points) {
  flags->AddDouble("scale", default_scale,
                   "dataset scale factor (1.0 = paper-sized polygon sets)");
  flags->AddInt("points", static_cast<int64_t>(default_points),
                "number of join points");
  flags->AddInt("threads", 1, "worker threads");
  flags->AddInt("reps", 2, "measurement repetitions (max reported)");
  flags->AddBool("csv", false, "also print CSV rows");
  flags->AddBool("full", false, "paper-scale run (scale=1, 20M points)");
  flags->AddBool("smoke", false,
                 "tiny verification run, seconds (overrides --full)");
  flags->AddString("smoke_report", "",
                   "append a JSON result line to this file after the run");
  flags->Parse(argc, argv);

  BenchEnv env;
  env.scale = flags->GetDouble("scale");
  env.points = static_cast<uint64_t>(flags->GetInt("points"));
  env.threads = static_cast<int>(flags->GetInt("threads"));
  env.reps = std::max(1, static_cast<int>(flags->GetInt("reps")));
  env.csv = flags->GetBool("csv");
  if (flags->GetBool("full")) {
    env.scale = 1.0;
    env.points = std::max<uint64_t>(env.points, 20'000'000);
  }
  if (flags->GetBool("smoke")) {
    env.smoke = true;
    env.scale = std::min(env.scale, 0.02);
    env.points = std::min<uint64_t>(env.points, 50'000);
    env.reps = 1;
  }
  g_smoke_report_path = flags->GetString("smoke_report");
  return env;
}

std::vector<wl::PolygonDataset> NycDatasets(const BenchEnv& env) {
  // Boroughs stay at their paper count (5 complex polygons) — they are
  // cheap; neighborhoods/census shrink with the scale.
  return {wl::Boroughs(1.0), wl::Neighborhoods(env.scale),
          wl::Census(env.scale)};
}

wl::PointSet Taxi(const BenchEnv& env, const geom::Rect& mbr, uint64_t seed) {
  return wl::TaxiPoints(mbr, env.points, env.grid, seed);
}

wl::PointSet Uniform(const BenchEnv& env, const geom::Rect& mbr,
                     uint64_t seed) {
  return wl::SyntheticUniformPoints(mbr, env.points, env.grid, seed);
}

namespace {

template <typename Index>
StructureRun MeasureJoin(const std::string& name, const Index& index,
                         const act::LookupTable& table,
                         const std::vector<geom::Polygon>& polygons,
                         const act::JoinInput& input,
                         const act::JoinOptions& opts, int reps) {
  StructureRun run;
  run.name = name;
  for (int r = 0; r < reps; ++r) {
    act::JoinStats stats = act::ExecuteJoin(index, table, input, polygons,
                                            opts);
    if (stats.ThroughputMps() > run.mpoints_s) {
      run.mpoints_s = stats.ThroughputMps();
      run.stats = stats;
    }
  }
  NoteThroughput(run.mpoints_s);
  return run;
}

}  // namespace

std::vector<StructureRun> RunAllStructures(
    const act::EncodedCovering& enc,
    const std::vector<geom::Polygon>& polygons, const act::JoinInput& input,
    const act::JoinOptions& opts, int reps) {
  std::vector<StructureRun> out;
  util::WallTimer timer;

  for (int bits : {2, 4, 8}) {
    timer.Restart();
    act::AdaptiveCellTrie trie(enc, {.bits_per_level = bits});
    double build_s = timer.ElapsedSeconds();
    StructureRun run = MeasureJoin("ACT" + std::to_string(bits / 2),
                                   trie, enc.table, polygons, input, opts,
                                   reps);
    run.build_s = build_s;
    run.bytes = trie.stats().memory_bytes;
    out.push_back(std::move(run));
  }

  timer.Restart();
  baselines::BTreeCellIndex gbt(enc);
  double gbt_build = timer.ElapsedSeconds();
  StructureRun gbt_run =
      MeasureJoin("GBT", gbt, enc.table, polygons, input, opts, reps);
  gbt_run.build_s = gbt_build;
  gbt_run.bytes = gbt.MemoryBytes();
  out.push_back(std::move(gbt_run));

  baselines::SortedVectorIndex lb(enc);
  StructureRun lb_run =
      MeasureJoin("LB", lb, enc.table, polygons, input, opts, reps);
  lb_run.build_s = 0;  // covering is already sorted (paper Sec. 4.1)
  lb_run.bytes = lb.MemoryBytes();
  out.push_back(std::move(lb_run));

  return out;
}

act::SuperCovering BuildCovering(const wl::PolygonDataset& ds,
                                 const BenchEnv& env,
                                 const act::PolygonClassifier& classifier,
                                 std::optional<double> precision_bound_m,
                                 act::BuildTimings* timings) {
  act::BuildOptions opts;
  opts.precision_bound_m = precision_bound_m;
  opts.threads = env.threads;
  return act::BuildSuperCovering(ds.polygons, env.grid, classifier, opts,
                                 timings);
}

std::string Mib(uint64_t bytes) {
  return util::TablePrinter::Fmt(static_cast<double>(bytes) / (1024.0 * 1024),
                                 2);
}

void Emit(const BenchEnv& env, const util::TablePrinter& table) {
  table.Print();
  if (env.csv) {
    std::printf("\n");
    table.PrintCsv();
  }
  std::printf("\n");
}

void NoteThroughput(double mpoints_s) {
  g_best_mpoints_s = std::max(g_best_mpoints_s, mpoints_s);
}

const std::string& SmokeReportPath() { return g_smoke_report_path; }

void AppendSmokeReport(const std::string& path, const char* name,
                       double throughput_mps, double wall_ms) {
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) {
    std::fprintf(stderr, "smoke_report: cannot open %s\n", path.c_str());
    return;
  }
  // One fprintf -> one write on a line-sized buffer: concurrent appenders
  // (ctest -j) cannot interleave mid-line.
  std::fprintf(
      f, "{\"name\":\"%s\",\"throughput_mps\":%.4f,\"wall_ms\":%.1f}\n",
      name, throughput_mps, wall_ms);
  std::fclose(f);
}

int BenchMain(int argc, char** argv, const char* name,
              int (*run)(int argc, char** argv)) {
  util::WallTimer timer;
  int rc = run(argc, argv);
  double wall_ms = timer.ElapsedMillis();
  if (rc == 0 && !g_smoke_report_path.empty()) {
    AppendSmokeReport(g_smoke_report_path, name, g_best_mpoints_s, wall_ms);
  }
  return rc;
}

}  // namespace actjoin::bench
