// Reproduces paper Table 1: metrics of the NYC polygon datasets and of
// super coverings at 60 m / 15 m / 4 m precision — cell counts, lookup
// table size, and build times for the individual coverings (parallel) and
// the super covering merge (serial).

#include <cstdio>

#include "bench/bench_common.h"

namespace actjoin::bench {
namespace {

int Run(int argc, char** argv) {
  util::Flags flags;
  BenchEnv env = ParseEnv(argc, argv, &flags);

  std::printf(
      "Table 1: super covering metrics (scale=%.3g; paper counts at "
      "scale=1)\n\n",
      env.scale);

  util::TablePrinter table({"polygons", "#polys", "avg verts",
                            "precision [m]", "# cells [M]",
                            "lookup table [MiB]", "build indiv. cov. [s]",
                            "build super cov. [s]"});

  for (const wl::PolygonDataset& ds : NycDatasets(env)) {
    act::PolygonClassifier classifier(ds.polygons, env.grid, env.threads);
    for (double precision : {60.0, 15.0, 4.0}) {
      act::BuildTimings timings;
      act::SuperCovering sc =
          BuildCovering(ds, env, classifier, precision, &timings);
      act::EncodedCovering enc = act::Encode(sc);
      table.AddRow({ds.name, util::TablePrinter::FmtInt(ds.polygons.size()),
                    util::TablePrinter::Fmt(ds.AvgVertices(), 1),
                    util::TablePrinter::Fmt(precision, 0),
                    util::TablePrinter::FmtM(static_cast<double>(sc.size())),
                    Mib(enc.table.SizeBytes()),
                    util::TablePrinter::Fmt(timings.individual_coverings_s, 2),
                    util::TablePrinter::Fmt(
                        timings.super_covering_s + timings.refine_s, 2)});
    }
  }
  Emit(env, table);
  std::printf(
      "Paper (scale=1): boroughs 0.09/1.32/20.9 M cells, neighborhoods\n"
      "0.16/0.98/14.0 M, census 8.50/8.97/39.8 M; super covering build\n"
      "dominated by the serial merge, as here.\n");
  return 0;
}

}  // namespace
}  // namespace actjoin::bench

int main(int argc, char** argv) {
  return actjoin::bench::BenchMain(argc, argv, "table1_super_covering",
                                   actjoin::bench::Run);
}
