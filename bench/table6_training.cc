// Reproduces paper Table 6: speedups of single-threaded accurate-join
// lookups after training ACT4 with an increasing number of historical
// points (100 K / 500 K / 1 M at scale 1), relative to the untrained index.
// Also reports the index growth the paper quotes in the text.

#include <cstdio>

#include "bench/bench_common.h"

namespace actjoin::bench {
namespace {

int Run(int argc, char** argv) {
  util::Flags flags;
  BenchEnv env = ParseEnv(argc, argv, &flags, 0.1, 2'000'000);

  std::printf("Table 6: training speedups over untrained ACT4 "
              "(scale=%.3g)\n\n", env.scale);

  // Training point counts scale with the dataset so the effect is
  // comparable across --scale values.
  const uint64_t train_sizes[3] = {
      static_cast<uint64_t>(100'000 * env.scale * 10),
      static_cast<uint64_t>(500'000 * env.scale * 10),
      static_cast<uint64_t>(1'000'000 * env.scale * 10)};

  util::TablePrinter table({"polygons", "train points", "throughput [M/s]",
                            "speedup", "ACT4 [MiB]", "PIP tests/point",
                            "STH %"});
  for (const wl::PolygonDataset& ds : NycDatasets(env)) {
    // Train on one year, join another (paper: 2009 vs 2010-2016).
    wl::PointSet history = wl::TaxiPoints(ds.mbr, train_sizes[2], env.grid,
                                          /*seed=*/2009);
    wl::PointSet query = Taxi(env, ds.mbr, /*seed=*/2010);
    act::JoinInput input = query.AsJoinInput();

    act::BuildOptions build_opts;
    build_opts.threads = env.threads;
    act::PolygonIndex index =
        act::PolygonIndex::Build(ds.polygons, env.grid, build_opts);

    auto measure = [&](const act::PolygonIndex& idx) {
      act::JoinStats best;
      for (int r = 0; r < env.reps; ++r) {
        act::JoinStats stats = idx.Join(input, {act::JoinMode::kExact, 1});
        if (stats.ThroughputMps() > best.ThroughputMps()) best = stats;
      }
      NoteThroughput(best.ThroughputMps());
      return best;
    };

    act::JoinStats untrained = measure(index);
    table.AddRow({ds.name, "0",
                  util::TablePrinter::Fmt(untrained.ThroughputMps(), 2),
                  "1.00x", Mib(index.MemoryBytes()),
                  util::TablePrinter::Fmt(
                      static_cast<double>(untrained.pip_tests) / input.size(),
                      3),
                  util::TablePrinter::Fmt(untrained.SthPercent(), 1)});

    uint64_t trained_so_far = 0;
    for (uint64_t n_train : train_sizes) {
      // Incremental: extend training with the next slice of history.
      act::JoinInput slice{
          std::span(history.cell_ids()).subspan(trained_so_far,
                                                n_train - trained_so_far),
          std::span(history.points()).subspan(trained_so_far,
                                              n_train - trained_so_far)};
      index.Train(slice);
      trained_so_far = n_train;
      act::JoinStats trained = measure(index);
      table.AddRow(
          {ds.name, util::TablePrinter::FmtInt(n_train),
           util::TablePrinter::Fmt(trained.ThroughputMps(), 2),
           util::TablePrinter::Fmt(
               trained.ThroughputMps() / untrained.ThroughputMps(), 2) + "x",
           Mib(index.MemoryBytes()),
           util::TablePrinter::Fmt(
               static_cast<double>(trained.pip_tests) / input.size(), 3),
           util::TablePrinter::Fmt(trained.SthPercent(), 1)});
    }
  }
  Emit(env, table);
  std::printf(
      "Paper: 1 M training points give 1.44x (boroughs), 2.18x\n"
      "(neighborhoods), 1.53x (census); ACT4 grows 25.9 -> 44.3 MiB and PIP\n"
      "tests drop 84%% on neighborhoods.\n");
  return 0;
}

}  // namespace
}  // namespace actjoin::bench

int main(int argc, char** argv) {
  return actjoin::bench::BenchMain(argc, argv, "table6_training",
                                   actjoin::bench::Run);
}
