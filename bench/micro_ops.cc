// Micro-benchmarks (google-benchmark) for the primitive operations the
// paper's cost arguments rest on: space-filling-curve conversion, cell-id
// algebra, PIP tests as a function of polygon complexity, single probes of
// ACT vs B-tree vs lower_bound, covering computation, and edge-grid
// classification.

#include <benchmark/benchmark.h>

#include <string>
#include <string_view>
#include <vector>

#include "act/act.h"
#include "bench/bench_common.h"
#include "util/timer.h"
#include "act/classifier.h"
#include "act/pipeline.h"
#include "baselines/cell_indexes.h"
#include "cover/coverer.h"
#include "geo/grid.h"
#include "geometry/pip.h"
#include "util/random.h"
#include "workloads/datasets.h"
#include "workloads/polygon_gen.h"

namespace actjoin {
namespace {

void BM_HilbertIJToPos(benchmark::State& state) {
  util::Rng rng(1);
  uint32_t i = static_cast<uint32_t>(rng.Next()) & ((1u << 30) - 1);
  uint32_t j = static_cast<uint32_t>(rng.Next()) & ((1u << 30) - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geo::IJToPos(geo::CurveType::kHilbert, 30, i, j));
    i = (i * 2654435761u + 1) & ((1u << 30) - 1);
  }
}
BENCHMARK(BM_HilbertIJToPos);

void BM_MortonIJToPos(benchmark::State& state) {
  util::Rng rng(1);
  uint32_t i = static_cast<uint32_t>(rng.Next()) & ((1u << 30) - 1);
  uint32_t j = static_cast<uint32_t>(rng.Next()) & ((1u << 30) - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geo::IJToPos(geo::CurveType::kMorton, 30, i, j));
    i = (i * 2654435761u + 1) & ((1u << 30) - 1);
  }
}
BENCHMARK(BM_MortonIJToPos);

void BM_CellAtLeaf(benchmark::State& state) {
  geo::Grid grid;
  util::Rng rng(2);
  for (auto _ : state) {
    geo::LatLng p{rng.Uniform(-80, 80), rng.Uniform(-179, 179)};
    benchmark::DoNotOptimize(grid.CellAt(p));
  }
}
BENCHMARK(BM_CellAtLeaf);

void BM_CellIdParentChild(benchmark::State& state) {
  geo::Grid grid;
  geo::CellId c = grid.CellAt({40.7, -74.0}, 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.parent(10));
    benchmark::DoNotOptimize(c.child(2));
    benchmark::DoNotOptimize(c.range_min());
  }
}
BENCHMARK(BM_CellIdParentChild);

// PIP cost is linear in edges — the core argument for true-hit filtering.
void BM_PipByPolygonSize(benchmark::State& state) {
  int vertices = static_cast<int>(state.range(0));
  geom::Polygon poly =
      wl::RandomStarPolygon({0, 0}, 1.0, vertices, /*seed=*/3);
  util::Rng rng(4);
  for (auto _ : state) {
    geom::Point q{rng.Uniform(-1, 1), rng.Uniform(-1, 1)};
    benchmark::DoNotOptimize(geom::ContainsPoint(poly, q));
  }
  state.SetLabel(std::to_string(vertices) + " vertices");
}
BENCHMARK(BM_PipByPolygonSize)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

struct ProbeFixtureData {
  geo::Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.1);
  act::SuperCovering sc;
  act::EncodedCovering enc;
  wl::PointSet pts;

  ProbeFixtureData() {
    act::PolygonClassifier classifier(ds.polygons, grid, 1);
    act::BuildOptions opts;
    opts.threads = 1;
    opts.precision_bound_m = 15.0;
    sc = act::BuildSuperCovering(ds.polygons, grid, classifier, opts,
                                 nullptr);
    enc = act::Encode(sc);
    pts = wl::TaxiPoints(ds.mbr, 200'000, grid, 5);
  }
};

ProbeFixtureData& Fixture() {
  static ProbeFixtureData data;
  return data;
}

void BM_ProbeAct(benchmark::State& state) {
  ProbeFixtureData& f = Fixture();
  act::AdaptiveCellTrie trie(f.enc,
                             {.bits_per_level = static_cast<int>(
                                  state.range(0))});
  size_t k = 0;
  const auto& ids = f.pts.cell_ids();
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie.Probe(ids[k]));
    k = (k + 1) % ids.size();
  }
  state.SetLabel("ACT" + std::to_string(state.range(0) / 2));
}
BENCHMARK(BM_ProbeAct)->Arg(2)->Arg(4)->Arg(8);

void BM_ProbeBTree(benchmark::State& state) {
  ProbeFixtureData& f = Fixture();
  baselines::BTreeCellIndex gbt(f.enc);
  size_t k = 0;
  const auto& ids = f.pts.cell_ids();
  for (auto _ : state) {
    benchmark::DoNotOptimize(gbt.Probe(ids[k]));
    k = (k + 1) % ids.size();
  }
}
BENCHMARK(BM_ProbeBTree);

void BM_ProbeLowerBound(benchmark::State& state) {
  ProbeFixtureData& f = Fixture();
  baselines::SortedVectorIndex lb(f.enc);
  size_t k = 0;
  const auto& ids = f.pts.cell_ids();
  for (auto _ : state) {
    benchmark::DoNotOptimize(lb.Probe(ids[k]));
    k = (k + 1) % ids.size();
  }
}
BENCHMARK(BM_ProbeLowerBound);

void BM_Covering(benchmark::State& state) {
  geo::Grid grid;
  geom::Polygon poly = wl::RandomStarPolygon({-74.0, 40.7}, 0.05, 24, 6);
  for (auto _ : state) {
    cover::Coverer coverer(poly, grid);
    benchmark::DoNotOptimize(coverer.Covering({128, 30, 0}));
  }
}
BENCHMARK(BM_Covering);

void BM_EdgeGridClassify(benchmark::State& state) {
  geom::Polygon poly = wl::RandomStarPolygon({0, 0}, 1.0, 256, 7);
  geom::EdgeGrid grid(poly);
  util::Rng rng(8);
  for (auto _ : state) {
    double x = rng.Uniform(-1, 0.9);
    double y = rng.Uniform(-1, 0.9);
    benchmark::DoNotOptimize(
        grid.Classify(geom::Rect::Of(x, y, x + 0.05, y + 0.05)));
  }
}
BENCHMARK(BM_EdgeGridClassify);

void BM_SuperCoveringInsert(benchmark::State& state) {
  geo::Grid grid;
  util::Rng rng(9);
  for (auto _ : state) {
    state.PauseTiming();
    act::SuperCoveringBuilder builder;
    state.ResumeTiming();
    for (int k = 0; k < 1000; ++k) {
      geo::LatLng p{rng.Uniform(40.4, 41.0), rng.Uniform(-74.3, -73.7)};
      act::RefList refs;
      refs.push_back({static_cast<uint32_t>(k % 16), k % 2 == 0});
      builder.Insert(grid.CellAt(p, 8 + static_cast<int>(rng.UniformInt(10))),
                     refs);
    }
    benchmark::DoNotOptimize(builder.size());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SuperCoveringInsert);

}  // namespace
}  // namespace actjoin

// BENCHMARK_MAIN() plus the repo-wide --smoke / --smoke_report protocol
// (see bench/CMakeLists.txt). --smoke caps each micro-benchmark at a few
// milliseconds of measurement; --smoke_report appends the standard JSON
// line with throughput 0 (micro-op items/s are not join points/s).
int main(int argc, char** argv) {
  std::vector<char*> args;
  std::string report_path;
  bool smoke = false;
  for (int i = 0; i < argc; ++i) {
    std::string_view arg = argv[i];
    constexpr std::string_view kReport = "--smoke_report=";
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.substr(0, kReport.size()) == kReport) {
      report_path = std::string(arg.substr(kReport.size()));
    } else {
      args.push_back(argv[i]);
    }
  }
  static char kMinTime[] = "--benchmark_min_time=0.005";
  if (smoke) args.push_back(kMinTime);
  args.push_back(nullptr);
  int n = static_cast<int>(args.size()) - 1;

  actjoin::util::WallTimer timer;
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!report_path.empty()) {
    actjoin::bench::AppendSmokeReport(report_path, "micro_ops", 0.0,
                                      timer.ElapsedMillis());
  }
  return 0;
}
