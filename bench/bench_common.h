// Shared infrastructure for the per-table / per-figure benchmark binaries.
//
// Every binary accepts:
//   --scale         dataset scale factor (1.0 = the paper's polygon counts)
//   --points        number of join points (paper: 1.23 B taxi pick-ups)
//   --threads       worker threads for multi-threaded experiments
//   --reps          measurement repetitions (max throughput reported)
//   --csv           additionally print rows as CSV
//   --full          paper-scale run (scale=1, more points)
//   --smoke         tiny verification run (seconds; overrides --full)
//   --smoke_report  path: append one JSON line {name, throughput_mps,
//                   wall_ms} after a successful run (ctest wires this to
//                   <build>/bench_smoke.json)
//
// Defaults are sized so the complete suite regenerates every table and
// figure on a small machine in minutes; --full reproduces the paper's
// dataset sizes (slow: the 4 m census covering alone holds tens of millions
// of cells); --smoke only proves the binary still runs end to end.

#ifndef ACTJOIN_BENCH_BENCH_COMMON_H_
#define ACTJOIN_BENCH_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "act/pipeline.h"
#include "baselines/cell_indexes.h"
#include "geo/grid.h"
#include "util/flags.h"
#include "util/table_printer.h"
#include "workloads/datasets.h"

namespace actjoin::bench {

struct BenchEnv {
  double scale = 0.1;
  uint64_t points = 2'000'000;
  int threads = 1;
  int reps = 2;
  bool csv = false;
  bool smoke = false;
  geo::Grid grid;
};

/// Parses the standard flags (plus optional extra registrations done by the
/// caller on `flags` before calling).
BenchEnv ParseEnv(int argc, char** argv, util::Flags* flags,
                  double default_scale = 0.1,
                  uint64_t default_points = 2'000'000);

/// The paper's three NYC polygon datasets at the requested scale.
std::vector<wl::PolygonDataset> NycDatasets(const BenchEnv& env);

/// Clustered taxi-analog points over a dataset's extent.
wl::PointSet Taxi(const BenchEnv& env, const geom::Rect& mbr,
                  uint64_t seed = 7);
/// Uniform synthetic points over a dataset's extent.
wl::PointSet Uniform(const BenchEnv& env, const geom::Rect& mbr,
                     uint64_t seed = 8);

/// One data-structure measurement row (paper Table 2 / Fig. 7 vocabulary).
struct StructureRun {
  std::string name;       // ACT1 / ACT2 / ACT4 / GBT / LB
  double build_s = 0;
  uint64_t bytes = 0;
  double mpoints_s = 0;   // throughput, millions of points per second
  act::JoinStats stats;
};

/// Builds the five structures of Sec. 4.1 over one encoded covering and
/// measures join throughput for each (mode/threads from opts).
std::vector<StructureRun> RunAllStructures(
    const act::EncodedCovering& enc,
    const std::vector<geom::Polygon>& polygons, const act::JoinInput& input,
    const act::JoinOptions& opts, int reps);

/// Builds a super covering with the paper's default approximation config
/// and optional precision bound; returns it with timings.
act::SuperCovering BuildCovering(const wl::PolygonDataset& ds,
                                 const BenchEnv& env,
                                 const act::PolygonClassifier& classifier,
                                 std::optional<double> precision_bound_m,
                                 act::BuildTimings* timings);

/// MiB with two decimals.
std::string Mib(uint64_t bytes);

/// Prints the table and, when env.csv, the CSV mirror.
void Emit(const BenchEnv& env, const util::TablePrinter& table);

/// Records one throughput observation (millions of points per second); the
/// maximum across the whole run lands in the --smoke_report JSON line.
/// RunAllStructures calls this automatically; benches that measure joins
/// some other way call it themselves.
void NoteThroughput(double mpoints_s);

/// Appends `{"name":...,"throughput_mps":...,"wall_ms":...}\n` to `path`.
/// One line, one write: safe under parallel ctest appenders.
void AppendSmokeReport(const std::string& path, const char* name,
                       double throughput_mps, double wall_ms);

/// The --smoke_report path parsed by ParseEnv ("" when absent). Benches
/// that report extra named series beyond BenchMain's single summary line
/// (e.g. an A/B pair the trajectory should track) append through this.
const std::string& SmokeReportPath();

/// Entry point used by every bench binary's main(). Times the whole run
/// and, when the run parsed --smoke_report=<path> via ParseEnv, appends
/// this binary's JSON line on success.
int BenchMain(int argc, char** argv, const char* name,
              int (*run)(int argc, char** argv));

}  // namespace actjoin::bench

#endif  // ACTJOIN_BENCH_BENCH_COMMON_H_
