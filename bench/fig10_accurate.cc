// Reproduces paper Figure 10: single-threaded throughput of the *accurate*
// join (coarse default coverings + refinement) comparing ACT1/ACT2/ACT4
// against S2ShapeIndex analogs (SI1, SI10) and the R-tree (RT). Also prints
// the index sizes quoted in the surrounding text.

#include <cstdio>

#include "act/act.h"
#include "baselines/rtree.h"
#include "baselines/shape_index.h"
#include "bench/bench_common.h"
#include "util/timer.h"

namespace actjoin::bench {
namespace {

int Run(int argc, char** argv) {
  util::Flags flags;
  BenchEnv env = ParseEnv(argc, argv, &flags);

  std::printf("Figure 10: accurate join, single-threaded (scale=%.3g)\n\n",
              env.scale);

  util::TablePrinter table({"polygons", "index", "size [MiB]",
                            "throughput [M points/s]", "PIP tests/point",
                            "STH %"});
  for (const wl::PolygonDataset& ds : NycDatasets(env)) {
    act::PolygonClassifier classifier(ds.polygons, env.grid, env.threads);
    // Coarse covering: the paper's default approximation config, no
    // precision bound (Sec. 4.2: "super coverings that do not guarantee a
    // certain precision").
    act::SuperCovering sc =
        BuildCovering(ds, env, classifier, std::nullopt, nullptr);
    act::EncodedCovering enc = act::Encode(sc);
    wl::PointSet pts = Taxi(env, ds.mbr);
    act::JoinInput input = pts.AsJoinInput();
    act::JoinOptions exact{act::JoinMode::kExact, 1};

    for (const StructureRun& run :
         RunAllStructures(enc, ds.polygons, input, exact, env.reps)) {
      if (run.name == "GBT" || run.name == "LB") continue;  // not in Fig. 10
      table.AddRow(
          {ds.name, run.name, Mib(run.bytes),
           util::TablePrinter::Fmt(run.mpoints_s, 2),
           util::TablePrinter::Fmt(
               static_cast<double>(run.stats.pip_tests) / input.size(), 3),
           util::TablePrinter::Fmt(run.stats.SthPercent(), 1)});
    }

    for (int max_edges : {1, 10}) {
      baselines::ShapeIndex si(ds.polygons, env.grid, {max_edges, 18});
      act::JoinStats best;
      for (int r = 0; r < env.reps; ++r) {
        act::JoinStats stats =
            baselines::ShapeIndexJoin(si, ds.polygons, input, 1);
        if (stats.ThroughputMps() > best.ThroughputMps()) best = stats;
      }
      table.AddRow(
          {ds.name, "SI" + std::to_string(max_edges), Mib(si.MemoryBytes()),
           util::TablePrinter::Fmt(best.ThroughputMps(), 2),
           util::TablePrinter::Fmt(
               static_cast<double>(best.pip_tests) / input.size(), 3),
           util::TablePrinter::Fmt(best.SthPercent(), 1)});
    }

    baselines::RTree rtree = baselines::BuildPolygonRTree(ds.polygons);
    act::JoinStats best;
    for (int r = 0; r < env.reps; ++r) {
      act::JoinStats stats =
          baselines::RTreeJoin(rtree, ds.polygons, input, 1);
      if (stats.ThroughputMps() > best.ThroughputMps()) best = stats;
    }
    table.AddRow(
        {ds.name, "RT", Mib(rtree.MemoryBytes()),
         util::TablePrinter::Fmt(best.ThroughputMps(), 2),
         util::TablePrinter::Fmt(
             static_cast<double>(best.pip_tests) / input.size(), 3),
         util::TablePrinter::Fmt(best.SthPercent(), 1)});
  }
  Emit(env, table);
  std::printf(
      "Paper shape: ACT4 wins everywhere (6.96x over SI1 on neighborhoods,\n"
      "5.79x on census); RT collapses on boroughs (complex polygons make\n"
      "every PIP test expensive; ACT refines only ~0.1%% of points there).\n");
  return 0;
}

}  // namespace
}  // namespace actjoin::bench

int main(int argc, char** argv) {
  return actjoin::bench::BenchMain(argc, argv, "fig10_accurate",
                                   actjoin::bench::Run);
}
