// Polygon×polygon crossmatch A/B: the dual-trie synchronized descent
// (src/join2/) versus the classic R-tree spatial join on the paper's
// containment-rich NYC pairing — boroughs (few, very complex boundaries)
// × census blocks (many, simple). Both engines refine with the shared
// predicates in geometry/poly_poly.h, so their outputs are byte-identical
// by construction; every rep asserts that before its timing counts.
//
// The comparable number is effective cross-product throughput: both arms
// answer the same |A|·|B| question, so (|A|·|B| / seconds) ratios equal
// speed ratios — candidate counts do not (an engine with worse filter
// recall "processes" more candidate pairs while being slower).
//
// Extra flags: --shards (dual-trie shard count per side, default 4).
// --smoke alternates the arms rep by rep (both see the same ambient
// contention under parallel ctest) and *gates* the best per-rep ratio of
// combined both-modes wall time, rtree/dual >= 1: the dual-trie
// crossmatch must not lose to the baseline it exists to beat. Per-mode
// series land in the smoke report for the perf trajectory.

#include <cstdio>
#include <string>
#include <vector>

#include "baselines/rtree.h"
#include "bench/bench_common.h"
#include "join2/cross_match.h"
#include "service/sharded_index.h"
#include "util/timer.h"
#include "util/work_stealing_pool.h"

namespace actjoin::bench {
namespace {

int Run(int argc, char** argv) {
  util::Flags flags;
  flags.AddInt("shards", 4, "dual-trie shard count per side");
  BenchEnv env = ParseEnv(argc, argv, &flags);
  if (env.smoke) {
    env.threads = 4;
    env.reps = 3;
  }
  const int shards = std::max(1, static_cast<int>(flags.GetInt("shards")));

  // Boroughs stay at the paper's five complex polygons (they are the
  // expensive-refinement side); census scales.
  wl::PolygonDataset ds_a = wl::Boroughs(1.0);
  wl::PolygonDataset ds_b = wl::Census(env.scale);
  const double cross_product =
      static_cast<double>(ds_a.polygons.size()) *
      static_cast<double>(ds_b.polygons.size());

  service::ShardingOptions sharding;
  sharding.num_shards = shards;
  sharding.build.precision_bound_m = 60.0;
  sharding.build.threads = env.threads;

  util::WallTimer build_timer;
  service::ShardedIndex index_a =
      service::ShardedIndex::Build(ds_a.polygons, env.grid, sharding);
  service::ShardedIndex index_b =
      service::ShardedIndex::Build(ds_b.polygons, env.grid, sharding);
  join2::IntervalView view_a = join2::IntervalView::FromIndex(index_a);
  join2::IntervalView view_b = join2::IntervalView::FromIndex(index_b);
  double trie_build_s = build_timer.ElapsedSeconds();

  build_timer = util::WallTimer();
  baselines::RTree rtree_a = baselines::BuildPolygonRTree(ds_a.polygons);
  baselines::RTree rtree_b = baselines::BuildPolygonRTree(ds_b.polygons);
  double rtree_build_s = build_timer.ElapsedSeconds();

  std::printf(
      "Crossmatch %s (%zu polys, avg %.0f vertices) x %s (%zu polys, "
      "avg %.0f vertices): %d shards/side, %d threads, scale=%.3g\n"
      "  probe surfaces: %zu + %zu intervals (coarsened); build: "
      "dual-trie %.3f s, r-tree %.3f s\n\n",
      ds_a.name.c_str(), ds_a.polygons.size(), ds_a.AvgVertices(),
      ds_b.name.c_str(), ds_b.polygons.size(), ds_b.AvgVertices(), shards,
      env.threads, env.scale, view_a.size(), view_b.size(), trie_build_s,
      rtree_build_s);

  util::TablePrinter table({"mode", "engine", "candidates", "result pairs",
                            "wall [ms]", "x-product [Mpairs/s]"});

  const join2::CrossMatchMode kModes[2] = {join2::CrossMatchMode::kIntersects,
                                           join2::CrossMatchMode::kContains};
  util::WorkStealingPool pool(std::max(0, env.threads - 1));
  double dual_best_s[2] = {-1, -1}, rtree_best_s[2] = {-1, -1};
  join2::CrossMatchStats dual_stats[2];
  baselines::RTreeCrossMatchStats rtree_stats[2];
  double best_pair_ratio = 0;  // best per-rep combined rtree/dual ratio
  // Arms and modes interleave within each rep and each keeps its own best
  // time, so the gated ratio compares temporally adjacent runs under the
  // same ambient load.
  for (int r = 0; r < env.reps; ++r) {
    double dual_rep_s = 0, rtree_rep_s = 0;
    for (int m = 0; m < 2; ++m) {
      const bool contains = kModes[m] == join2::CrossMatchMode::kContains;
      join2::CrossMatchOptions opts;
      opts.mode = kModes[m];
      opts.threads = env.threads;
      join2::CrossMatchStats dstats;
      std::vector<std::pair<uint32_t, uint32_t>> dual =
          join2::CrossMatch(view_a, view_b, opts, &pool, &dstats);
      baselines::RTreeCrossMatchStats rstats;
      std::vector<std::pair<uint32_t, uint32_t>> base =
          baselines::RTreeCrossMatch(rtree_a, ds_a.polygons, rtree_b,
                                     ds_b.polygons, contains, &rstats);
      if (dual != base) {
        std::fprintf(stderr,
                     "FAIL: %s crossmatch disagrees with the r-tree "
                     "baseline (%zu vs %zu pairs)\n",
                     join2::ToString(kModes[m]), dual.size(), base.size());
        return 1;
      }
      if (dual_best_s[m] < 0 || dstats.seconds < dual_best_s[m]) {
        dual_best_s[m] = dstats.seconds;
        dual_stats[m] = dstats;
      }
      if (rtree_best_s[m] < 0 || rstats.seconds < rtree_best_s[m]) {
        rtree_best_s[m] = rstats.seconds;
        rtree_stats[m] = rstats;
      }
      dual_rep_s += dstats.seconds;
      rtree_rep_s += rstats.seconds;
    }
    if (dual_rep_s > 0 && rtree_rep_s > 0) {
      best_pair_ratio = std::max(best_pair_ratio, rtree_rep_s / dual_rep_s);
    }
  }

  double dual_mpairs_s[2], rtree_mpairs_s[2];
  for (int m = 0; m < 2; ++m) {
    dual_mpairs_s[m] =
        dual_best_s[m] > 0 ? cross_product / dual_best_s[m] / 1e6 : 0;
    rtree_mpairs_s[m] =
        rtree_best_s[m] > 0 ? cross_product / rtree_best_s[m] / 1e6 : 0;
    table.AddRow({join2::ToString(kModes[m]), "dual-trie",
                  std::to_string(dual_stats[m].candidate_pairs),
                  std::to_string(dual_stats[m].result_pairs),
                  util::TablePrinter::Fmt(dual_best_s[m] * 1e3, 2),
                  util::TablePrinter::Fmt(dual_mpairs_s[m], 2)});
    table.AddRow({join2::ToString(kModes[m]), "r-tree x r-tree",
                  std::to_string(rtree_stats[m].candidate_pairs),
                  std::to_string(rtree_stats[m].result_pairs),
                  util::TablePrinter::Fmt(rtree_best_s[m] * 1e3, 2),
                  util::TablePrinter::Fmt(rtree_mpairs_s[m], 2)});
  }

  Emit(env, table);
  std::printf("best same-rep combined speed ratio (dual-trie over "
              "r-tree): %.2fx\n",
              best_pair_ratio);
  NoteThroughput(std::max(dual_mpairs_s[0], dual_mpairs_s[1]));
  if (!SmokeReportPath().empty()) {
    AppendSmokeReport(SmokeReportPath(), "spatial_join/dual_trie_intersects",
                      dual_mpairs_s[0], dual_best_s[0] * 1e3);
    AppendSmokeReport(SmokeReportPath(), "spatial_join/dual_trie_contains",
                      dual_mpairs_s[1], dual_best_s[1] * 1e3);
    AppendSmokeReport(SmokeReportPath(), "spatial_join/rtree_intersects",
                      rtree_mpairs_s[0], rtree_best_s[0] * 1e3);
    AppendSmokeReport(SmokeReportPath(), "spatial_join/rtree_contains",
                      rtree_mpairs_s[1], rtree_best_s[1] * 1e3);
  }
  if (env.smoke && best_pair_ratio < 1.0) {
    std::fprintf(stderr,
                 "FAIL: dual-trie crossmatch lost to the r-tree baseline "
                 "in every rep (best combined ratio %.3f)\n",
                 best_pair_ratio);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace actjoin::bench

int main(int argc, char** argv) {
  return actjoin::bench::BenchMain(argc, argv, "spatial_join",
                                   actjoin::bench::Run);
}
