// Reproduces paper Figure 7 (all three panels) for the approximate join on
// taxi-analog points:
//   left:   single-threaded throughput per data structure per NYC polygon
//           dataset at 4 m precision
//   middle: single-threaded throughput vs precision (60/15/4 m) on the
//           neighborhoods dataset
//   right:  multi-threaded speedup over single-threaded execution
//           (neighborhoods, 4 m)

#include <cstdio>

#include "bench/bench_common.h"

namespace actjoin::bench {
namespace {

int Run(int argc, char** argv) {
  util::Flags flags;
  BenchEnv env = ParseEnv(argc, argv, &flags);
  act::JoinOptions join_opts{act::JoinMode::kApproximate, 1};

  // ----- Left panel ---------------------------------------------------------
  std::printf(
      "Figure 7 (left): single-threaded approximate-join throughput, 4 m "
      "(scale=%.3g)\n\n",
      env.scale);
  util::TablePrinter left({"polygons", "index", "throughput [M points/s]"});
  for (const wl::PolygonDataset& ds : NycDatasets(env)) {
    act::PolygonClassifier classifier(ds.polygons, env.grid, env.threads);
    act::SuperCovering sc = BuildCovering(ds, env, classifier, 4.0, nullptr);
    act::EncodedCovering enc = act::Encode(sc);
    wl::PointSet pts = Taxi(env, ds.mbr);
    for (const StructureRun& run :
         RunAllStructures(enc, ds.polygons, pts.AsJoinInput(), join_opts,
                          env.reps)) {
      left.AddRow({ds.name, run.name,
                   util::TablePrinter::Fmt(run.mpoints_s, 2)});
    }
  }
  Emit(env, left);

  // ----- Middle panel -------------------------------------------------------
  std::printf(
      "Figure 7 (middle): throughput vs precision, neighborhoods\n\n");
  util::TablePrinter middle(
      {"precision [m]", "index", "throughput [M points/s]"});
  wl::PolygonDataset nbh = wl::Neighborhoods(env.scale);
  act::PolygonClassifier nbh_classifier(nbh.polygons, env.grid, env.threads);
  wl::PointSet nbh_pts = Taxi(env, nbh.mbr);
  for (double precision : {60.0, 15.0, 4.0}) {
    act::SuperCovering sc =
        BuildCovering(nbh, env, nbh_classifier, precision, nullptr);
    act::EncodedCovering enc = act::Encode(sc);
    for (const StructureRun& run :
         RunAllStructures(enc, nbh.polygons, nbh_pts.AsJoinInput(), join_opts,
                          env.reps)) {
      middle.AddRow({util::TablePrinter::Fmt(precision, 0), run.name,
                     util::TablePrinter::Fmt(run.mpoints_s, 2)});
    }
  }
  Emit(env, middle);

  // ----- Right panel --------------------------------------------------------
  std::printf(
      "Figure 7 (right): multi-threaded speedup over 1 thread "
      "(neighborhoods, 4 m)\n"
      "NOTE: flat speedups are expected on machines with few cores.\n\n");
  util::TablePrinter right({"threads", "index", "throughput [M points/s]",
                            "speedup"});
  act::SuperCovering sc = BuildCovering(nbh, env, nbh_classifier, 4.0,
                                        nullptr);
  act::EncodedCovering enc = act::Encode(sc);
  std::vector<double> base;
  for (int threads : {1, 2, 4, 8, 16, 28}) {
    act::JoinOptions opts{act::JoinMode::kApproximate, threads};
    auto runs = RunAllStructures(enc, nbh.polygons, nbh_pts.AsJoinInput(),
                                 opts, env.reps);
    for (size_t k = 0; k < runs.size(); ++k) {
      if (threads == 1) base.push_back(runs[k].mpoints_s);
      right.AddRow({util::TablePrinter::FmtInt(threads), runs[k].name,
                    util::TablePrinter::Fmt(runs[k].mpoints_s, 2),
                    util::TablePrinter::Fmt(runs[k].mpoints_s / base[k], 2)});
    }
  }
  Emit(env, right);
  std::printf(
      "Paper shape: ACT4 > ACT2 > ACT1 > GBT > LB everywhere; ACT4 reaches\n"
      ">50 M points/s per core on neighborhoods; near-linear scaling to 8\n"
      "threads on the paper's 14-core machine.\n");
  return 0;
}

}  // namespace
}  // namespace actjoin::bench

int main(int argc, char** argv) {
  return actjoin::bench::BenchMain(argc, argv, "fig7_throughput",
                                   actjoin::bench::Run);
}
