// Serving-layer throughput (src/service/): sharded executors vs a single
// index over the same polygon set, plus the end-to-end JoinService path
// (bounded queue + worker pool + snapshot registry).
//
//   direct 1-shard:   ShardedIndex with num_shards=1 — the unsharded
//                     baseline behind the same routing interface
//   direct N-shards:  Hilbert-range sharding; points bucket-sorted by
//                     shard, probed shard-by-shard
//   service N-shards: Submit()-ed in fixed-size batches through the
//                     worker pool, measured end to end (queue included)
//
// Extra flags: --shards (default 8), --batch (points per service request),
// --workers (service worker threads; default = --threads).
// At --smoke the run pins --threads=8 so the sharded-vs-single comparison
// matches the acceptance configuration.

#include <cstdio>
#include <future>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "service/join_service.h"
#include "service/sharded_index.h"
#include "util/timer.h"

namespace actjoin::bench {
namespace {

int Run(int argc, char** argv) {
  util::Flags flags;
  flags.AddInt("shards", 8,
               "shard count for the sharded configurations (floored to 2; "
               "the 1-shard baseline always runs)");
  flags.AddInt("batch", 65536, "points per JoinService request");
  flags.AddInt("workers", 0,
               "JoinService worker threads (0 => same as --threads)");
  BenchEnv env = ParseEnv(argc, argv, &flags);
  if (env.smoke) {
    // The acceptance comparison is "N shards vs 1 shard at 8 threads";
    // repetitions keep the tiny smoke workload out of timer noise.
    env.threads = 8;
    env.reps = 5;
  }
  const int shards = std::max(2, static_cast<int>(flags.GetInt("shards")));
  const uint64_t batch_points =
      std::max<int64_t>(1, flags.GetInt("batch"));
  int workers = static_cast<int>(flags.GetInt("workers"));
  if (workers <= 0) workers = env.threads;

  wl::PolygonDataset ds = wl::Neighborhoods(env.scale);
  wl::PointSet pts = Taxi(env, ds.mbr);
  act::JoinInput input = pts.AsJoinInput();
  act::JoinOptions join_opts{act::JoinMode::kApproximate, env.threads};

  service::ShardingOptions base;
  base.build.precision_bound_m = 60.0;  // the paper's serving-grade bound
  base.build.threads = env.threads;

  std::printf(
      "Serving-layer throughput: %zu polygons, %llu points, %d threads "
      "(scale=%.3g)\n\n",
      ds.polygons.size(), static_cast<unsigned long long>(input.size()),
      env.threads, env.scale);
  util::TablePrinter table({"config", "build [s]", "index [MiB]",
                            "throughput [M points/s]"});

  // Direct joins: identical routing code path, only the shard count
  // differs, so the delta is the sharding effect itself. Measurement
  // rounds interleave the two configurations so load drift hits both.
  std::vector<int> shard_counts{1, shards};
  std::vector<service::ShardedIndex> indexes;
  for (int num_shards : shard_counts) {
    service::ShardingOptions opts = base;
    opts.num_shards = num_shards;
    indexes.push_back(
        service::ShardedIndex::Build(ds.polygons, env.grid, opts));
  }
  // At smoke size one join lasts ~1 ms — too short a window against
  // scheduler jitter from 8 oversubscribed threads. Several joins per
  // timed measurement keep the comparison out of the noise floor.
  const int iters_per_rep = input.size() < 200'000 ? 4 : 1;
  std::vector<double> best(indexes.size(), 0);
  for (int r = 0; r < env.reps; ++r) {
    for (size_t k = 0; k < indexes.size(); ++k) {
      util::WallTimer timer;
      for (int it = 0; it < iters_per_rep; ++it) {
        indexes[k].Join(input, join_opts);
      }
      double seconds = timer.ElapsedSeconds();
      if (seconds > 0) {
        best[k] = std::max(best[k], static_cast<double>(input.size()) *
                                        iters_per_rep / seconds / 1e6);
      }
    }
  }
  for (size_t k = 0; k < indexes.size(); ++k) {
    NoteThroughput(best[k]);
    char name[64];
    std::snprintf(name, sizeof(name), "direct %d-shard", shard_counts[k]);
    table.AddRow({name,
                  util::TablePrinter::Fmt(indexes[k].build_seconds(), 2),
                  Mib(indexes[k].MemoryBytes()),
                  util::TablePrinter::Fmt(best[k], 2)});
  }
  double single_mps = best[0];
  double multi_mps = best[1];

  // End-to-end service path: same sharded index behind the queue + pool.
  {
    service::ShardingOptions opts = base;
    opts.num_shards = shards;
    auto index = std::make_shared<const service::ShardedIndex>(
        service::ShardedIndex::Build(ds.polygons, env.grid, opts));
    service::ServiceOptions sopts;
    sopts.worker_threads = workers;
    sopts.queue_capacity = 256;
    double best = 0;
    service::ServiceStats sstats;
    for (int r = 0; r < env.reps; ++r) {
      service::JoinService server(index, sopts);
      std::vector<std::future<service::JoinResult>> futures;
      util::WallTimer timer;
      for (uint64_t begin = 0; begin < input.size(); begin += batch_points) {
        uint64_t end = std::min(begin + batch_points, input.size());
        service::QueryBatch batch;
        batch.cell_ids.assign(input.cell_ids.begin() + begin,
                              input.cell_ids.begin() + end);
        batch.points.assign(input.points.begin() + begin,
                            input.points.begin() + end);
        batch.mode = act::JoinMode::kApproximate;
        futures.push_back(server.Submit(std::move(batch)));
      }
      uint64_t served = 0;
      for (auto& f : futures) served += f.get().stats.num_points;
      double seconds = timer.ElapsedSeconds();
      if (seconds > 0) {
        best = std::max(best, static_cast<double>(served) / seconds / 1e6);
      }
      sstats = server.Stats();
      server.Shutdown();
    }
    NoteThroughput(best);
    char name[64];
    std::snprintf(name, sizeof(name), "service %d-shard", shards);
    table.AddRow({name, "-", Mib(index->MemoryBytes()),
                  util::TablePrinter::Fmt(best, 2)});
    std::printf(
        "service stats: %llu requests, queue-wait p50/p99 %.2f/%.2f ms, "
        "service p50/p99 %.2f/%.2f ms\n\n",
        static_cast<unsigned long long>(sstats.completed_requests),
        sstats.queue_wait_p50_ms, sstats.queue_wait_p99_ms,
        sstats.service_p50_ms, sstats.service_p99_ms);
  }

  Emit(env, table);
  std::printf("%d-shard vs 1-shard direct throughput at %d threads: %.2fx\n",
              shards, env.threads,
              single_mps > 0 ? multi_mps / single_mps : 0.0);
  return 0;
}

}  // namespace
}  // namespace actjoin::bench

int main(int argc, char** argv) {
  return actjoin::bench::BenchMain(argc, argv, "service_throughput",
                                   actjoin::bench::Run);
}
