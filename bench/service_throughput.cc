// Serving-layer throughput (src/service/): sharded executors vs a single
// index over the same polygon set, the work-stealing executor vs its
// retired static-split baseline on uniform and skewed batches, plus the
// end-to-end JoinService path (bounded queue + worker pool + snapshot
// registry).
//
//   direct 1-shard:   ShardedIndex with num_shards=1 — the unsharded
//                     baseline behind the same routing interface
//   direct N-shards:  Hilbert-range sharding; points bucket-sorted by
//                     shard, (shard, sub-range) tasks drained by the
//                     work-stealing pool
//   steal/static:     the same N-shard index joined by Join (stealing)
//                     and JoinStaticSplit, on the taxi batch and on a
//                     >= 90%-one-shard skewed batch — the configuration
//                     where the static split under-widths the hot shard
//   service N-shards: Submit()-ed in fixed-size batches through the
//                     worker pool, measured end to end (queue included)
//
// Extra flags: --shards (default 8), --batch (points per service request),
// --workers (service worker threads; default = --threads).
// At --smoke the run pins --threads=8 so the comparisons match the
// acceptance configuration, verifies steal == static results byte for
// byte (and == the unsharded index, both modes), asserts the stealing
// executor has not regressed against the static split, and appends the
// skew A/B pair to bench_smoke.json so the BENCH_* trajectory tracks it.

#include <algorithm>
#include <cstdio>
#include <future>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "service/join_service.h"
#include "service/sharded_index.h"
#include "util/parallel_for.h"
#include "util/timer.h"

namespace actjoin::bench {
namespace {

int Run(int argc, char** argv) {
  util::Flags flags;
  flags.AddInt("shards", 8,
               "shard count for the sharded configurations (floored to 2; "
               "the 1-shard baseline always runs)");
  flags.AddInt("batch", 65536, "points per JoinService request");
  flags.AddInt("workers", 0,
               "JoinService worker threads (0 => same as --threads)");
  BenchEnv env = ParseEnv(argc, argv, &flags);
  if (env.smoke) {
    // The acceptance comparison is "N shards vs 1 shard at 8 threads";
    // repetitions keep the tiny smoke workload out of timer noise.
    env.threads = 8;
    env.reps = 5;
  }
  const int shards = std::max(2, static_cast<int>(flags.GetInt("shards")));
  const uint64_t batch_points =
      std::max<int64_t>(1, flags.GetInt("batch"));
  int workers = static_cast<int>(flags.GetInt("workers"));
  if (workers <= 0) workers = env.threads;

  wl::PolygonDataset ds = wl::Neighborhoods(env.scale);
  wl::PointSet pts = Taxi(env, ds.mbr);
  act::JoinInput input = pts.AsJoinInput();
  act::JoinOptions join_opts{act::JoinMode::kApproximate, env.threads};

  service::ShardingOptions base;
  base.build.precision_bound_m = 60.0;  // the paper's serving-grade bound
  base.build.threads = env.threads;

  std::printf(
      "Serving-layer throughput: %zu polygons, %llu points, %d threads "
      "(scale=%.3g)\n\n",
      ds.polygons.size(), static_cast<unsigned long long>(input.size()),
      env.threads, env.scale);
  util::TablePrinter table({"config", "build [s]", "index [MiB]",
                            "throughput [M points/s]"});

  // Direct joins: identical routing code path, only the shard count
  // differs, so the delta is the sharding effect itself. Measurement
  // rounds interleave the two configurations so load drift hits both.
  std::vector<int> shard_counts{1, shards};
  std::vector<service::ShardedIndex> indexes;
  for (int num_shards : shard_counts) {
    service::ShardingOptions opts = base;
    opts.num_shards = num_shards;
    indexes.push_back(
        service::ShardedIndex::Build(ds.polygons, env.grid, opts));
  }
  // At smoke size one join lasts ~1 ms — too short a window against
  // scheduler jitter from 8 oversubscribed threads. Several joins per
  // timed measurement keep the comparison out of the noise floor.
  const int iters_per_rep = input.size() < 200'000 ? 4 : 1;
  std::vector<double> best(indexes.size(), 0);
  for (int r = 0; r < env.reps; ++r) {
    for (size_t k = 0; k < indexes.size(); ++k) {
      util::WallTimer timer;
      for (int it = 0; it < iters_per_rep; ++it) {
        indexes[k].Join(input, join_opts);
      }
      double seconds = timer.ElapsedSeconds();
      if (seconds > 0) {
        best[k] = std::max(best[k], static_cast<double>(input.size()) *
                                        iters_per_rep / seconds / 1e6);
      }
    }
  }
  for (size_t k = 0; k < indexes.size(); ++k) {
    NoteThroughput(best[k]);
    char name[64];
    std::snprintf(name, sizeof(name), "direct %d-shard", shard_counts[k]);
    table.AddRow({name,
                  util::TablePrinter::Fmt(indexes[k].build_seconds(), 2),
                  Mib(indexes[k].MemoryBytes()),
                  util::TablePrinter::Fmt(best[k], 2)});
  }
  double single_mps = best[0];
  double multi_mps = best[1];

  // Executor A/B: work-stealing Join vs the static-split baseline on the
  // same N-shard index, over the taxi batch and over a batch with >= 90%
  // of its points routed to the hottest shard (the static split gives
  // that shard budget/shards threads; stealing gives it all of them).
  const service::ShardedIndex& single = indexes[0];
  const service::ShardedIndex& multi = indexes[1];
  const uint64_t n = input.size();
  std::vector<uint64_t> skew_cells;
  std::vector<geom::Point> skew_points;
  skew_cells.reserve(n);
  skew_points.reserve(n);
  {
    std::vector<uint64_t> per_shard(multi.num_shards(), 0);
    for (uint64_t i = 0; i < n; ++i) {
      ++per_shard[multi.ShardOf(input.cell_ids[i])];
    }
    const int hot = static_cast<int>(
        std::max_element(per_shard.begin(), per_shard.end()) -
        per_shard.begin());
    std::vector<uint64_t> hot_idx, cold_idx;
    for (uint64_t i = 0; i < n; ++i) {
      (multi.ShardOf(input.cell_ids[i]) == hot ? hot_idx : cold_idx)
          .push_back(i);
    }
    if (cold_idx.empty()) cold_idx = hot_idx;
    const uint64_t hot_target = n * 9 / 10;
    for (uint64_t k = 0; k < n; ++k) {
      const std::vector<uint64_t>& from =
          k < hot_target ? hot_idx : cold_idx;
      uint64_t i = from[k % from.size()];
      skew_cells.push_back(input.cell_ids[i]);
      skew_points.push_back(input.points[i]);
    }
  }
  act::JoinInput skew_input{skew_cells, skew_points};

  // Acceptance guard, cheap enough to always run: the two executors must
  // agree with each other byte for byte in both modes (same index, same
  // per-point probes — only the schedule differs), and exact mode must
  // also match the unsharded index. Approximate mode is *not* held to the
  // unsharded index: shard-local coverings may legally emit fewer false
  // positives (see sharded_index.h).
  for (act::JoinMode mode :
       {act::JoinMode::kExact, act::JoinMode::kApproximate}) {
    act::JoinOptions check{mode, env.threads};
    act::JoinStats steal = multi.Join(skew_input, check);
    act::JoinStats split = multi.JoinStaticSplit(skew_input, check);
    if (steal.counts != split.counts ||
        steal.result_pairs != split.result_pairs ||
        steal.matched_points != split.matched_points) {
      std::fprintf(stderr,
                   "stealing and static-split executors diverged (mode "
                   "%d)\n",
                   static_cast<int>(mode));
      return 1;
    }
    if (mode == act::JoinMode::kExact) {
      act::JoinStats want = single.Join(skew_input, check);
      if (steal.counts != want.counts ||
          steal.result_pairs != want.result_pairs ||
          steal.matched_points != want.matched_points) {
        std::fprintf(stderr,
                     "exact sharded results diverged from the unsharded "
                     "index\n");
        return 1;
      }
    }
  }

  util::WallTimer skew_timer;
  double steal_uni = 0, static_uni = 0, steal_skew = 0, static_skew = 0;
  auto measure_ab = [&] {
    steal_uni = static_uni = steal_skew = static_skew = 0;
    for (int r = 0; r < env.reps; ++r) {
      // Interleaved so load drift hits all four configurations equally.
      struct Probe {
        double* best;
        const act::JoinInput* in;
        bool stealing;
      };
      for (const Probe& p :
           {Probe{&steal_uni, &input, true},
            Probe{&static_uni, &input, false},
            Probe{&steal_skew, &skew_input, true},
            Probe{&static_skew, &skew_input, false}}) {
        util::WallTimer timer;
        for (int it = 0; it < iters_per_rep; ++it) {
          if (p.stealing) {
            multi.Join(*p.in, join_opts);
          } else {
            multi.JoinStaticSplit(*p.in, join_opts);
          }
        }
        double seconds = timer.ElapsedSeconds();
        if (seconds > 0) {
          *p.best = std::max(*p.best, static_cast<double>(p.in->size()) *
                                          iters_per_rep / seconds / 1e6);
        }
      }
    }
  };
  // At smoke the comparison is also a pass/fail gate; losing runs get
  // re-measured before the verdict (parallel ctest neighbors can steal
  // the CPU for longer than one measurement window, and a genuine
  // regression loses every attempt anyway).
  const int max_attempts = env.smoke ? 3 : 1;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    measure_ab();
    if (steal_skew >= 0.9 * static_skew && steal_uni >= 0.9 * static_uni) {
      break;
    }
  }
  const double skew_wall_ms = skew_timer.ElapsedMillis();
  NoteThroughput(steal_uni);
  NoteThroughput(steal_skew);
  table.AddRow({"steal uniform", "-", "-",
                util::TablePrinter::Fmt(steal_uni, 2)});
  table.AddRow({"static uniform", "-", "-",
                util::TablePrinter::Fmt(static_uni, 2)});
  table.AddRow({"steal 90%-skew", "-", "-",
                util::TablePrinter::Fmt(steal_skew, 2)});
  table.AddRow({"static 90%-skew", "-", "-",
                util::TablePrinter::Fmt(static_skew, 2)});

  // End-to-end service path: same sharded index behind the queue + pool.
  {
    service::ShardingOptions opts = base;
    opts.num_shards = shards;
    auto index = std::make_shared<const service::ShardedIndex>(
        service::ShardedIndex::Build(ds.polygons, env.grid, opts));
    service::ServiceOptions sopts;
    sopts.worker_threads = workers;
    sopts.queue_capacity = 256;
    double best = 0;
    service::ServiceStats sstats;
    for (int r = 0; r < env.reps; ++r) {
      service::JoinService server(index, sopts);
      std::vector<std::future<service::JoinResult>> futures;
      util::WallTimer timer;
      for (uint64_t begin = 0; begin < input.size(); begin += batch_points) {
        uint64_t end = std::min(begin + batch_points, input.size());
        service::QueryBatch batch;
        batch.cell_ids.assign(input.cell_ids.begin() + begin,
                              input.cell_ids.begin() + end);
        batch.points.assign(input.points.begin() + begin,
                            input.points.begin() + end);
        batch.mode = act::JoinMode::kApproximate;
        futures.push_back(server.Submit(std::move(batch)));
      }
      uint64_t served = 0;
      for (auto& f : futures) served += f.get().stats.num_points;
      double seconds = timer.ElapsedSeconds();
      if (seconds > 0) {
        best = std::max(best, static_cast<double>(served) / seconds / 1e6);
      }
      sstats = server.Stats();
      server.Shutdown();
    }
    NoteThroughput(best);
    char name[64];
    std::snprintf(name, sizeof(name), "service %d-shard", shards);
    table.AddRow({name, "-", Mib(index->MemoryBytes()),
                  util::TablePrinter::Fmt(best, 2)});
    std::printf(
        "service stats: %llu requests, queue-wait p50/p99 %.2f/%.2f ms, "
        "service p50/p99 %.2f/%.2f ms\n\n",
        static_cast<unsigned long long>(sstats.completed_requests),
        sstats.queue_wait_p50_ms, sstats.queue_wait_p99_ms,
        sstats.service_p50_ms, sstats.service_p99_ms);
  }

  Emit(env, table);
  std::printf("%d-shard vs 1-shard direct throughput at %d threads: %.2fx\n",
              shards, env.threads,
              single_mps > 0 ? multi_mps / single_mps : 0.0);
  std::printf(
      "work-stealing vs static split at %d threads: uniform %.2fx, "
      "90%%-skew %.2fx\n",
      env.threads, static_uni > 0 ? steal_uni / static_uni : 0.0,
      static_skew > 0 ? steal_skew / static_skew : 0.0);

  if (env.smoke) {
    // Both skew numbers land in bench_smoke.json so the BENCH_* trajectory
    // captures the stealing win, not just the winner's throughput.
    if (!SmokeReportPath().empty()) {
      AppendSmokeReport(SmokeReportPath(), "service_throughput_skew_steal",
                        steal_skew, skew_wall_ms);
      AppendSmokeReport(SmokeReportPath(), "service_throughput_skew_static",
                        static_skew, skew_wall_ms);
    }
    // The stealing executor must never lose to the static split it
    // replaced — on the skewed batch it should win outright (hot shard
    // gets budget/shards threads vs all of them), on the uniform batch it
    // must at least break even. The 0.9 factor absorbs best-of-reps
    // timer wobble; a real under-width regression costs far more than
    // 10%. On a machine with a single hardware thread the ratio measures
    // only scheduler noise (both executors do identical work on one
    // core), so the gate reports instead of failing there.
    const bool losing =
        steal_skew < 0.9 * static_skew || steal_uni < 0.9 * static_uni;
    if (losing && util::DefaultThreadCount() < 2) {
      std::printf(
          "note: steal-vs-static gate skipped (1 hardware thread; the "
          "comparison needs real parallelism)\n");
    } else if (steal_skew < 0.9 * static_skew) {
      std::fprintf(stderr,
                   "FAIL: stealing executor lost to the static split on "
                   "the 90%%-skew batch (%.2f vs %.2f M points/s)\n",
                   steal_skew, static_skew);
      return 1;
    } else if (steal_uni < 0.9 * static_uni) {
      std::fprintf(stderr,
                   "FAIL: stealing executor regressed the uniform batch "
                   "(%.2f vs %.2f M points/s)\n",
                   steal_uni, static_uni);
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace actjoin::bench

int main(int argc, char** argv) {
  return actjoin::bench::BenchMain(argc, argv, "service_throughput",
                                   actjoin::bench::Run);
}
