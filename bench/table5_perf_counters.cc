// Reproduces paper Table 5: performance counters per probed point
// (neighborhoods, 4 m) for uniform vs taxi-analog points across the five
// data structures. Counters come from perf_event_open when the kernel
// permits; otherwise cycles fall back to the TSC and the other counters are
// reported as n/a (the *relative ordering* across structures, which is the
// table's point, survives the substitution).

#include <cstdio>

#include "act/act.h"
#include "bench/bench_common.h"
#include "util/perf_counters.h"

namespace actjoin::bench {
namespace {

struct CounterRow {
  double cycles = -1, instructions = -1, branch_misses = -1,
         cache_misses = -1;
};

template <typename Index>
CounterRow MeasureCounters(const Index& index, const act::LookupTable& table,
                           const act::JoinInput& input,
                           const std::vector<geom::Polygon>& polys) {
  util::PerfCounterGroup group;
  group.Start();
  act::JoinStats stats = act::ExecuteJoin(
      index, table, input, polys, {act::JoinMode::kApproximate, 1});
  util::PerfSample sample = group.Stop();
  NoteThroughput(stats.ThroughputMps());
  CounterRow row;
  double n = static_cast<double>(input.size());
  if (sample.cycles.valid) row.cycles = sample.cycles.value / n;
  if (sample.instructions.valid) {
    row.instructions = sample.instructions.value / n;
  }
  if (sample.branch_misses.valid) {
    row.branch_misses = sample.branch_misses.value / n;
  }
  if (sample.cache_misses.valid) {
    row.cache_misses = sample.cache_misses.value / n;
  }
  return row;
}

std::string FmtCounter(double v, int precision) {
  if (v < 0) return "n/a";
  return util::TablePrinter::Fmt(v, precision);
}

int Run(int argc, char** argv) {
  util::Flags flags;
  BenchEnv env = ParseEnv(argc, argv, &flags, 0.1, 1'000'000);

  util::PerfCounterGroup probe_group;
  std::printf("Table 5: counters per point (neighborhoods, 4 m, scale=%.3g)"
              " — %s\n\n",
              env.scale,
              probe_group.UsingHardwareEvents()
                  ? "hardware perf events"
                  : "TSC fallback (perf_event_open unavailable)");

  wl::PolygonDataset ds = wl::Neighborhoods(env.scale);
  act::PolygonClassifier classifier(ds.polygons, env.grid, env.threads);
  act::SuperCovering sc = BuildCovering(ds, env, classifier, 4.0, nullptr);
  act::EncodedCovering enc = act::Encode(sc);

  util::TablePrinter table({"points", "index", "cycles", "instructions",
                            "branch misses", "cache misses"});
  for (bool uniform : {true, false}) {
    wl::PointSet pts = uniform ? Uniform(env, ds.mbr) : Taxi(env, ds.mbr);
    act::JoinInput input = pts.AsJoinInput();
    const char* kind = uniform ? "uniform" : "taxi";

    for (int bits : {2, 4, 8}) {
      act::AdaptiveCellTrie trie(enc, {.bits_per_level = bits});
      CounterRow row = MeasureCounters(trie, enc.table, input, ds.polygons);
      table.AddRow({kind, "ACT" + std::to_string(bits / 2),
                    FmtCounter(row.cycles, 1), FmtCounter(row.instructions, 1),
                    FmtCounter(row.branch_misses, 2),
                    FmtCounter(row.cache_misses, 2)});
    }
    baselines::BTreeCellIndex gbt(enc);
    CounterRow gbt_row = MeasureCounters(gbt, enc.table, input, ds.polygons);
    table.AddRow({kind, "GBT", FmtCounter(gbt_row.cycles, 1),
                  FmtCounter(gbt_row.instructions, 1),
                  FmtCounter(gbt_row.branch_misses, 2),
                  FmtCounter(gbt_row.cache_misses, 2)});
    baselines::SortedVectorIndex lb(enc);
    CounterRow lb_row = MeasureCounters(lb, enc.table, input, ds.polygons);
    table.AddRow({kind, "LB", FmtCounter(lb_row.cycles, 1),
                  FmtCounter(lb_row.instructions, 1),
                  FmtCounter(lb_row.branch_misses, 2),
                  FmtCounter(lb_row.cache_misses, 2)});
  }
  Emit(env, table);
  std::printf(
      "Paper shape (taxi): ACT4 56 cycles/point vs GBT 416 and LB 817;\n"
      "branch and cache misses follow the same ordering.\n");
  return 0;
}

}  // namespace
}  // namespace actjoin::bench

int main(int argc, char** argv) {
  return actjoin::bench::BenchMain(argc, argv, "table5_perf_counters",
                                   actjoin::bench::Run);
}
