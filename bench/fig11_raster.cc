// Reproduces paper Figure 11: ACT4 (multi-threaded) against the GPU raster
// join, simulated on the CPU: Bounded Raster Join for 15 m / 4 m precision
// and Accurate Raster Join for exact results, across the three NYC polygon
// datasets. The simulation keeps the two effects Fig. 11 hinges on — the
// uniform grid's insensitivity to polygon count, and the multi-pass
// slowdown once the precision-mandated resolution exceeds the native
// limit. Absolute GPU numbers are out of scope (documented in DESIGN.md).

#include <cstdio>

#include "act/act.h"
#include "baselines/raster_join.h"
#include "bench/bench_common.h"

namespace actjoin::bench {
namespace {

int Run(int argc, char** argv) {
  util::Flags flags;
  flags.AddInt("native", 4096,
               "simulated native raster resolution per pass");
  BenchEnv env = ParseEnv(argc, argv, &flags);
  int native = static_cast<int>(flags.GetInt("native"));

  std::printf("Figure 11: ACT4 vs raster join (CPU-simulated GPU), "
              "threads=%d, scale=%.3g, native=%d\n\n",
              env.threads, env.scale, native);

  util::TablePrinter table({"polygons", "mode", "system",
                            "throughput [M points/s]", "passes"});
  for (const wl::PolygonDataset& ds : NycDatasets(env)) {
    act::PolygonClassifier classifier(ds.polygons, env.grid, env.threads);
    wl::PointSet pts = Taxi(env, ds.mbr);
    act::JoinInput input = pts.AsJoinInput();

    struct Mode {
      const char* label;
      std::optional<double> bound;
    };
    for (Mode mode : {Mode{"15m", 15.0}, Mode{"4m", 4.0},
                      Mode{"exact", std::nullopt}}) {
      // ACT side: approximate index at the precision bound, or the coarse
      // covering + exact join.
      act::SuperCovering sc =
          BuildCovering(ds, env, classifier, mode.bound, nullptr);
      act::EncodedCovering enc = act::Encode(sc);
      act::AdaptiveCellTrie trie(enc, {.bits_per_level = 8});
      act::JoinOptions jopts{mode.bound.has_value()
                                 ? act::JoinMode::kApproximate
                                 : act::JoinMode::kExact,
                             env.threads};
      double act_best = 0;
      for (int r = 0; r < env.reps; ++r) {
        act::JoinStats stats =
            act::ExecuteJoin(trie, enc.table, input, ds.polygons, jopts);
        act_best = std::max(act_best, stats.ThroughputMps());
      }
      NoteThroughput(act_best);
      table.AddRow({ds.name, mode.label, "ACT4",
                    util::TablePrinter::Fmt(act_best, 2), "-"});

      // Raster side: BRJ at the bound, ARJ for exact.
      baselines::RasterJoinOptions ropts;
      ropts.native_resolution = native;
      if (mode.bound.has_value()) {
        ropts.precision_bound_m = *mode.bound;
        ropts.accurate = false;
      } else {
        ropts.precision_bound_m = 15.0;  // ARJ rasterizes at base resolution
        ropts.accurate = true;
      }
      baselines::RasterJoin raster(ds.polygons, ds.mbr, ropts);
      double raster_best = 0;
      for (int r = 0; r < env.reps; ++r) {
        act::JoinStats stats = raster.Execute(input, env.threads);
        raster_best = std::max(raster_best, stats.ThroughputMps());
      }
      NoteThroughput(raster_best);
      table.AddRow({ds.name, mode.label,
                    ropts.accurate ? "ARJ" : "BRJ",
                    util::TablePrinter::Fmt(raster_best, 2),
                    util::TablePrinter::FmtInt(raster.passes())});
    }
  }
  Emit(env, table);
  std::printf(
      "Paper shape: BRJ barely cares about the polygon dataset but drops\n"
      "sharply from 15 m to 4 m (scene splitting / more passes); ACT is the\n"
      "mirror image. Exact: ACT beats ARJ on boroughs, ARJ wins on\n"
      "neighborhoods/census.\n");
  return 0;
}

}  // namespace
}  // namespace actjoin::bench

int main(int argc, char** argv) {
  return actjoin::bench::BenchMain(argc, argv, "fig11_raster",
                                   actjoin::bench::Run);
}
