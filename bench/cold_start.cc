// Cold-start benchmark (src/store/): loading a served index from the
// snapshot store versus rebuilding it from raw polygons.
//
// The store's reason to exist is the restart path: a rebuild re-runs the
// whole covering pipeline (per-polygon coverings, super-covering merge,
// routing coverings per shard), while a load is a sequential file read
// plus the classifier/encoding/trie re-derivation both paths share. This
// bench measures exactly that delta, per NYC dataset and in total, and
// verifies the loaded index answers joins byte-identically to the rebuilt
// one before trusting any timing.
//
// --smoke appends `cold_start_load` / `cold_start_rebuild` lines to
// bench_smoke.json (wall_ms carries the signal; throughput_mps is
// polygons restored per second, in millions) and *fails* unless the load
// beats the rebuild — the store's acceptance criterion.
//
// Extra flags: --shards (served index shard count), --store_dir.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "service/sharded_index.h"
#include "store/snapshot_store.h"
#include "util/timer.h"

namespace actjoin::bench {
namespace {

int Run(int argc, char** argv) {
  util::Flags flags;
  flags.AddInt("shards", 4, "shard count of the served/persisted index");
  flags.AddString("store_dir", "cold_start_store",
                  "snapshot store directory (created if missing)");
  BenchEnv env = ParseEnv(argc, argv, &flags);
  const int shards = std::max(1, static_cast<int>(flags.GetInt("shards")));

  store::SnapshotStore store;
  std::string error;
  if (!store.Open({.dir = flags.GetString("store_dir")}, &error)) {
    std::fprintf(stderr, "cold_start: cannot open store: %s\n", error.c_str());
    return 1;
  }

  std::vector<wl::PolygonDataset> datasets = NycDatasets(env);
  std::printf(
      "Cold start: store load vs full rebuild, %d shards, %d rep(s) "
      "(scale=%.3g)\n\n",
      shards, env.reps, env.scale);
  util::TablePrinter table({"dataset", "polygons", "rebuild [ms]",
                            "load [ms]", "speedup"});

  service::ShardingOptions sharding;
  sharding.num_shards = shards;
  sharding.build.threads = env.threads;

  double total_rebuild_s = 0, total_load_s = 0;
  uint64_t total_polygons = 0;
  double load_polygons_mps = 0;
  for (const wl::PolygonDataset& ds : datasets) {
    const std::string name = "cold-" + ds.name;

    // Rebuild path: what a storeless restart pays. Best-of-reps, like
    // every throughput number in this suite.
    double rebuild_s = 0;
    std::shared_ptr<const service::ShardedIndex> built;
    for (int r = 0; r < env.reps; ++r) {
      util::WallTimer timer;
      auto index = std::make_shared<const service::ShardedIndex>(
          service::ShardedIndex::Build(ds.polygons, env.grid, sharding));
      double seconds = timer.ElapsedSeconds();
      if (built == nullptr || seconds < rebuild_s) rebuild_s = seconds;
      built = std::move(index);
    }

    // Persist once (a checkpoint is off the restart path), then measure
    // the load path a restart actually runs.
    if (!store.Put(name, *built, nullptr, &error)) {
      std::fprintf(stderr, "cold_start: put failed: %s\n", error.c_str());
      return 1;
    }
    double load_s = 0;
    std::shared_ptr<const service::ShardedIndex> loaded;
    for (int r = 0; r < env.reps; ++r) {
      util::WallTimer timer;
      store::LoadReport report;
      auto index = store.Load(name, &report);
      double seconds = timer.ElapsedSeconds();
      if (index == nullptr) {
        std::fprintf(stderr, "cold_start: load failed: %s\n",
                     report.detail.c_str());
        return 1;
      }
      if (loaded == nullptr || seconds < load_s) load_s = seconds;
      loaded = std::move(index);
    }

    // Timings mean nothing unless the loaded index is the built index:
    // exact-mode joins must agree byte for byte.
    wl::PointSet pts = wl::TaxiPoints(
        ds.mbr, std::min<uint64_t>(env.points, 50'000), env.grid, 91);
    act::JoinStats want =
        built->Join(pts.AsJoinInput(), {act::JoinMode::kExact, 1});
    act::JoinStats got =
        loaded->Join(pts.AsJoinInput(), {act::JoinMode::kExact, 1});
    if (got.counts != want.counts || got.result_pairs != want.result_pairs ||
        got.matched_points != want.matched_points) {
      std::fprintf(stderr,
                   "cold_start: loaded index diverged from rebuilt index "
                   "(%s)\n",
                   ds.name.c_str());
      return 1;
    }

    total_rebuild_s += rebuild_s;
    total_load_s += load_s;
    total_polygons += ds.polygons.size();
    if (load_s > 0) {
      load_polygons_mps = std::max(
          load_polygons_mps,
          static_cast<double>(ds.polygons.size()) / load_s / 1e6);
    }
    table.AddRow({ds.name, std::to_string(ds.polygons.size()),
                  util::TablePrinter::Fmt(rebuild_s * 1e3, 2),
                  util::TablePrinter::Fmt(load_s * 1e3, 2),
                  util::TablePrinter::Fmt(
                      load_s > 0 ? rebuild_s / load_s : 0, 1)});
  }
  table.AddRow({"TOTAL", std::to_string(total_polygons),
                util::TablePrinter::Fmt(total_rebuild_s * 1e3, 2),
                util::TablePrinter::Fmt(total_load_s * 1e3, 2),
                util::TablePrinter::Fmt(
                    total_load_s > 0 ? total_rebuild_s / total_load_s : 0,
                    1)});
  Emit(env, table);
  store.GarbageCollect();

  // The restore rate drives this binary's summary line.
  if (total_load_s > 0) {
    NoteThroughput(static_cast<double>(total_polygons) / total_load_s / 1e6);
  }
  if (!SmokeReportPath().empty()) {
    AppendSmokeReport(SmokeReportPath(), "cold_start_rebuild",
                      total_rebuild_s > 0
                          ? static_cast<double>(total_polygons) /
                                total_rebuild_s / 1e6
                          : 0,
                      total_rebuild_s * 1e3);
    AppendSmokeReport(SmokeReportPath(), "cold_start_load",
                      total_load_s > 0
                          ? static_cast<double>(total_polygons) /
                                total_load_s / 1e6
                          : 0,
                      total_load_s * 1e3);
  }

  if (env.smoke && total_load_s >= total_rebuild_s) {
    // The acceptance gate: if loading the store is not faster than
    // rebuilding from polygons, the store lost its reason to exist.
    std::fprintf(stderr,
                 "cold_start: store load (%.2f ms) did not beat rebuild "
                 "(%.2f ms)\n",
                 total_load_s * 1e3, total_rebuild_s * 1e3);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace actjoin::bench

int main(int argc, char** argv) {
  return actjoin::bench::BenchMain(argc, argv, "cold_start",
                                   actjoin::bench::Run);
}
