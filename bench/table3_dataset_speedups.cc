// Reproduces paper Table 3: per-structure lookup speedups when joining
// against smaller (coarser-grained) polygon datasets — boroughs over
// neighborhoods, boroughs over census, neighborhoods over census.
// ACT gains the most because larger cells sit higher in the radix tree.

#include <cstdio>
#include <map>

#include "bench/bench_common.h"

namespace actjoin::bench {
namespace {

int Run(int argc, char** argv) {
  util::Flags flags;
  BenchEnv env = ParseEnv(argc, argv, &flags);
  act::JoinOptions join_opts{act::JoinMode::kApproximate, 1};

  std::printf("Table 3: speedups of lookups, coarse over fine datasets "
              "(4 m, scale=%.3g)\n\n", env.scale);

  // throughput[structure][dataset index 0=b, 1=n, 2=c]
  std::map<std::string, std::array<double, 3>> tput;
  int d = 0;
  for (const wl::PolygonDataset& ds : NycDatasets(env)) {
    act::PolygonClassifier classifier(ds.polygons, env.grid, env.threads);
    act::SuperCovering sc = BuildCovering(ds, env, classifier, 4.0, nullptr);
    act::EncodedCovering enc = act::Encode(sc);
    wl::PointSet pts = Taxi(env, ds.mbr);
    for (const StructureRun& run :
         RunAllStructures(enc, ds.polygons, pts.AsJoinInput(), join_opts,
                          env.reps)) {
      tput[run.name][d] = run.mpoints_s;
    }
    ++d;
  }

  util::TablePrinter table({"index", "b over n", "b over c", "n over c"});
  for (const char* name : {"ACT1", "ACT2", "ACT4", "GBT", "LB"}) {
    const auto& t = tput[name];
    table.AddRow({name, util::TablePrinter::Fmt(t[0] / t[1], 2) + "x",
                  util::TablePrinter::Fmt(t[0] / t[2], 2) + "x",
                  util::TablePrinter::Fmt(t[1] / t[2], 2) + "x"});
  }
  Emit(env, table);
  std::printf(
      "Paper: ACT1 2.63x/8.63x/3.28x, GBT 2.05x/3.51x/1.71x, LB\n"
      "1.83x/2.63x/1.44x — ACT benefits most from coarse datasets.\n");
  return 0;
}

}  // namespace
}  // namespace actjoin::bench

int main(int argc, char** argv) {
  return actjoin::bench::BenchMain(argc, argv, "table3_dataset_speedups",
                                   actjoin::bench::Run);
}
