// Reproduces paper Table 7: the effect of training on true-hit filtering.
// STH (solely true hits) is the percentage of points that skip the
// expensive refinement phase entirely; training with historical points
// should raise it markedly for the finer polygon datasets.

#include <cstdio>

#include "bench/bench_common.h"

namespace actjoin::bench {
namespace {

int Run(int argc, char** argv) {
  util::Flags flags;
  BenchEnv env = ParseEnv(argc, argv, &flags, 0.1, 1'000'000);

  std::printf("Table 7: solely-true-hits %% before -> after training "
              "(scale=%.3g)\n\n", env.scale);

  const uint64_t n_train = static_cast<uint64_t>(1'000'000 * env.scale * 10);

  util::TablePrinter table(
      {"metric", "boroughs", "neighborhoods", "census"});
  std::vector<std::string> row{"STH (%)"};
  for (const wl::PolygonDataset& ds : NycDatasets(env)) {
    wl::PointSet history =
        wl::TaxiPoints(ds.mbr, n_train, env.grid, /*seed=*/2009);
    wl::PointSet query = Taxi(env, ds.mbr, /*seed=*/2010);

    act::BuildOptions build_opts;
    build_opts.threads = env.threads;
    act::PolygonIndex index =
        act::PolygonIndex::Build(ds.polygons, env.grid, build_opts);

    act::JoinStats before =
        index.Join(query.AsJoinInput(), {act::JoinMode::kExact, 1});
    index.Train(history.AsJoinInput());
    act::JoinStats after =
        index.Join(query.AsJoinInput(), {act::JoinMode::kExact, 1});
    NoteThroughput(after.ThroughputMps());
    row.push_back(util::TablePrinter::Fmt(before.SthPercent(), 1) + " -> " +
                  util::TablePrinter::Fmt(after.SthPercent(), 1));
  }
  table.AddRow(row);
  Emit(env, table);
  std::printf(
      "Paper: boroughs 99.9 -> 99.9, neighborhoods 87.2 -> 97.7, census\n"
      "72.2 -> 88.7 — above 70%% everywhere even untrained.\n");
  return 0;
}

}  // namespace
}  // namespace actjoin::bench

int main(int argc, char** argv) {
  return actjoin::bench::BenchMain(argc, argv, "table7_sth",
                                   actjoin::bench::Run);
}
