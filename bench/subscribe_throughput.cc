// Continuous-query push throughput (wire v6 SUBSCRIBE) versus the
// poll-equivalent a client had to run before subscriptions existed.
//
// The scenario is the ROADMAP's fleet tracker: a fleet of moving points
// (one track per device) and S consumers who each want ENTER/LEAVE
// transitions against a fixed geofence set. Every tick the fleet's
// positions reach the server as one JOIN_BATCH — that ingestion join is
// common to both worlds and is *not* what this bench compares. What
// differs is the marginal cost per consumer:
//
//   push:  each consumer holds one standing SUBSCRIBE; the matcher folds
//          the ingestion batch once per subscription against its (small)
//          coverage intervals and the server pushes delta-only EVENT
//          frames. Marginal server work per consumer per tick: a
//          coverage-filtered probe plus a few hundred bytes of events.
//
//   poll:  each consumer re-sends the full fleet as its own JOIN_BATCH
//          every tick (the wire's only primitive for "where is everyone
//          now") and would diff memberships client-side. Marginal server
//          work per consumer per tick: a full *exact-mode* join of the
//          fleet — exact because ENTER/LEAVE is a membership diff, and
//          a diff of approximate results invents crossings that never
//          happened (the matcher's own contract is exact: candidate
//          cells refine through ContainsPoint). The baseline still
//          omits the client-side diff and the membership payload poll
//          would also need, so it remains a *lower bound* on poll's
//          true cost — push must beat even that.
//
// Server capacity is pinned (--workers, default 2) and consumers exceed
// it (--subscribers, default 8): with idle cores a wall-clock race hides
// the O(S) vs O(1) work difference; at fixed capacity it is exactly what
// the wall clock shows. Both arms deliver the same information (the same
// transition stream to every consumer), so events/second is comparable.
//
// --smoke gates the push arm: events/s > 0, zero outbox drops, and push
// beats the poll-equivalent baseline.
//
// Extra flags: --shards (default 4), --fleet (tracked points), --ticks
// (position updates), --subscribers, --geofences (watched polygon ids
// per subscription), --workers (service workers), --io_threads.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "geometry/pip.h"
#include "net/async_join_client.h"
#include "net/join_client.h"
#include "net/join_server.h"
#include "service/join_service.h"
#include "service/sharded_index.h"
#include "service/subscription_matcher.h"
#include "util/timer.h"

namespace actjoin::bench {
namespace {

int Run(int argc, char** argv) {
  util::Flags flags;
  flags.AddInt("shards", 4, "shard count for the served index");
  flags.AddInt("fleet", 20000, "tracked devices (points per tick)");
  flags.AddInt("ticks", 40, "position updates driven through the server");
  flags.AddInt("subscribers", 8, "consumer connections");
  flags.AddInt("geofences", 8, "watched polygon ids per subscription");
  flags.AddInt("workers", 2, "JoinService worker threads (fixed capacity)");
  flags.AddInt("io_threads", 2, "JoinServer event-loop threads");
  BenchEnv env = ParseEnv(argc, argv, &flags);
  uint64_t fleet = std::max<int64_t>(1, flags.GetInt("fleet"));
  int ticks = std::max(2, static_cast<int>(flags.GetInt("ticks")));
  if (env.smoke) {
    env.reps = 2;
    fleet = std::min<uint64_t>(fleet, 6000);
    ticks = std::min(ticks, 12);
    // Smoke's default scale leaves a handful of polygons — a join so cheap
    // that nothing can beat it. The comparison needs a dataset where a
    // full re-join costs something; 0.2 keeps the smoke run in seconds.
    env.scale = std::max(env.scale, 0.2);
  }
  const int shards = std::max(1, static_cast<int>(flags.GetInt("shards")));
  const int subscribers =
      std::max(1, static_cast<int>(flags.GetInt("subscribers")));
  const int workers = std::max(1, static_cast<int>(flags.GetInt("workers")));
  const int io_threads =
      std::max(1, static_cast<int>(flags.GetInt("io_threads")));

  wl::PolygonDataset ds = wl::Neighborhoods(env.scale);
  service::ShardingOptions sharding;
  sharding.num_shards = shards;
  sharding.build.precision_bound_m = 60.0;
  sharding.build.threads = env.threads;
  auto index = std::make_shared<const service::ShardedIndex>(
      service::ShardedIndex::Build(ds.polygons, env.grid, sharding));

  // Fleet motion: track i has a "home" position and an "away" position
  // (two clustered draws over the same extent). Each tick toggles one of
  // kSlices interleaved slices of the fleet between the two — a steady
  // ~1/kSlices of the devices move per tick, the rest hold position, so
  // the event stream is a realistic trickle of crossings rather than the
  // whole fleet teleporting every tick.
  constexpr int kSlices = 8;
  wl::PointSet pos_a = wl::TaxiPoints(ds.mbr, fleet, env.grid, 21);
  wl::PointSet pos_b = wl::TaxiPoints(ds.mbr, fleet, env.grid, 22);
  const act::JoinInput in_a = pos_a.AsJoinInput();
  const act::JoinInput in_b = pos_b.AsJoinInput();
  std::vector<service::QueryBatch> tick_batches(
      static_cast<size_t>(ticks));
  {
    std::vector<uint64_t> cells(in_a.cell_ids.begin(), in_a.cell_ids.end());
    std::vector<geom::Point> points(in_a.points.begin(), in_a.points.end());
    std::vector<bool> away(kSlices, false);
    for (int t = 0; t < ticks; ++t) {
      const int slice = t % kSlices;
      away[slice] = !away[slice];
      const act::JoinInput& src = away[slice] ? in_b : in_a;
      for (uint64_t i = static_cast<uint64_t>(slice); i < fleet;
           i += kSlices) {
        cells[i] = src.cell_ids[i];
        points[i] = src.points[i];
      }
      tick_batches[static_cast<size_t>(t)].cell_ids = cells;
      tick_batches[static_cast<size_t>(t)].points = points;
      tick_batches[static_cast<size_t>(t)].mode = act::JoinMode::kApproximate;
    }
  }

  // Watch a small geofence set — but one the fleet actually visits:
  // scan a sample of positions and keep the first polygons that contain
  // any, so the smoke gate's "events flowed" assertion cannot be starved
  // by an unlucky id range.
  service::SubscriptionSpec spec;
  spec.selector = service::SubscriptionSpec::Selector::kPolygonIds;
  const uint32_t geofences = static_cast<uint32_t>(std::max<int64_t>(
      1, std::min<int64_t>(flags.GetInt("geofences"),
                           static_cast<int64_t>(ds.polygons.size()))));
  {
    std::vector<bool> chosen(ds.polygons.size(), false);
    const uint64_t sample = std::min<uint64_t>(fleet, 256);
    for (uint64_t i = 0; i < sample && spec.polygon_ids.size() < geofences;
         ++i) {
      for (const act::JoinInput* in : {&in_a, &in_b}) {
        for (size_t j = 0; j < ds.polygons.size(); ++j) {
          if (chosen[j]) continue;
          if (geom::ContainsPoint(ds.polygons[j], in->points[i])) {
            chosen[j] = true;
            spec.polygon_ids.push_back(static_cast<uint32_t>(j));
            break;
          }
        }
        if (spec.polygon_ids.size() >= geofences) break;
      }
    }
    for (uint32_t id = 0;
         spec.polygon_ids.size() < geofences &&
         id < ds.polygons.size();
         ++id) {
      if (!chosen[id]) spec.polygon_ids.push_back(id);
    }
  }
  spec.mode = service::SubscriptionMode::kBoth;

  std::printf(
      "Continuous queries: %zu polygons (%zu geofenced), fleet of %llu, "
      "%d ticks, %d consumers, %d workers (scale=%.3g)\n\n",
      ds.polygons.size(), spec.polygon_ids.size(),
      static_cast<unsigned long long>(fleet), ticks, subscribers, workers,
      env.scale);

  service::ServiceOptions sopts;
  sopts.worker_threads = workers;
  net::ServerOptions nopts;
  nopts.io_threads = io_threads;

  // --- Push arm, one rep: S standing subscriptions, one ingestion join
  // per tick, all ticks pipelined through the AsyncJoinClient — the
  // ingestion pipeline never waits for a reply before reporting the next
  // cycle, so scheduler delays under ambient load overlap instead of
  // stacking tick by tick (a serial round-trip chain degrades ~10x under
  // a parallel ctest; pipelined ingestion degrades like any
  // throughput-bound workload). Returns events/s (< 0 on failure) and
  // leaves the rep's delivered count in credit_events for the paired
  // poll rep (workers may fold pipelined ticks out of order, so the
  // count can differ slightly between reps — each pair settles on its
  // own).
  double push_eps = 0;
  double push_wall_ms = 0;
  uint64_t push_events = 0;
  uint64_t push_dropped = 0;
  uint64_t credit_events = 0;
  auto run_push = [&]() -> double {
    service::JoinService service(index, sopts);
    net::JoinServer server(&service, nopts);
    std::string error;
    if (!server.Start(&error)) {
      std::fprintf(stderr, "JoinServer start failed: %s\n", error.c_str());
      return -1;
    }
    std::atomic<uint64_t> received{0};
    std::vector<std::unique_ptr<net::JoinClient>> subs;
    for (int s = 0; s < subscribers; ++s) {
      auto client = std::make_unique<net::JoinClient>();
      if (!client->Connect(server.host(), server.port(), &error)) {
        std::fprintf(stderr, "subscriber connect failed: %s\n", error.c_str());
        return -1;
      }
      auto reply = client->Subscribe(
          0, spec, [&received](const service::EventBatch& batch) {
            received.fetch_add(batch.events.size(),
                               std::memory_order_relaxed);
          });
      if (!reply.ok) {
        std::fprintf(stderr, "SUBSCRIBE failed: %s\n", reply.message.c_str());
        return -1;
      }
      subs.push_back(std::move(client));
    }
    net::AsyncJoinClient driver;
    if (!driver.Connect(server.host(), server.port(), &error)) {
      std::fprintf(stderr, "driver connect failed: %s\n", error.c_str());
      return -1;
    }
    util::WallTimer timer;
    std::vector<std::future<net::AsyncJoinClient::RawReply>> inflight;
    inflight.reserve(static_cast<size_t>(ticks));
    for (int t = 0; t < ticks; ++t) {
      const uint64_t id = driver.NextRequestId();
      inflight.push_back(driver.Call(
          net::EncodeJoinBatchFrame(id, tick_batches[static_cast<size_t>(t)]),
          id, net::MessageType::kJoinResult));
    }
    for (auto& f : inflight) {
      net::AsyncJoinClient::RawReply reply = f.get();
      if (!reply.ok) {
        std::fprintf(stderr, "tick join failed: %s\n", reply.message.c_str());
        return -1;
      }
    }
    // Emission is synchronous with the ticks (OnPointBatch runs before the
    // join reply), delivery is not: drain the outboxes before stopping the
    // clock. events_emitted() is exact, so this is equality, not a guess.
    const uint64_t expected =
        service.subscription_matcher()->events_emitted();
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (received.load(std::memory_order_relaxed) < expected &&
           server.counters().events_dropped == 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const double seconds = timer.ElapsedSeconds();
    const uint64_t delivered = received.load(std::memory_order_relaxed);
    push_dropped += server.counters().events_dropped;
    if (delivered < expected && push_dropped == 0) {
      std::fprintf(stderr, "push arm stalled: %llu of %llu events in 20s\n",
                   static_cast<unsigned long long>(delivered),
                   static_cast<unsigned long long>(expected));
      return -1;
    }
    credit_events = delivered;
    double eps = -1;
    if (seconds > 0) {
      eps = static_cast<double>(delivered) / seconds;
      if (eps > push_eps) {
        push_eps = eps;
        push_wall_ms = seconds * 1e3;
        push_events = delivered;
      }
    }
    server.Stop();
    return eps;
  };

  // --- Poll arm, one rep: no subscriptions; every consumer re-joins the
  // whole fleet every tick on its own connection, in exact mode (see the
  // header comment: a membership diff over approximate results is
  // wrong, so exact is the cheapest join poll can legally use). The
  // information delivered is the same transition stream per consumer,
  // so credit it the same event count and let the wall clock price the
  // extra work. Returns events/s (< 0 on failure).
  std::vector<service::QueryBatch> poll_batches = tick_batches;
  for (service::QueryBatch& b : poll_batches) b.mode = act::JoinMode::kExact;
  double poll_eps = 0;
  double poll_wall_ms = 0;
  auto run_poll = [&]() -> double {
    service::JoinService service(index, sopts);
    net::JoinServer server(&service, nopts);
    std::string error;
    if (!server.Start(&error)) {
      std::fprintf(stderr, "JoinServer start failed: %s\n", error.c_str());
      return -1;
    }
    std::atomic<bool> failed{false};
    std::vector<std::thread> pool;
    util::WallTimer timer;
    for (int s = 0; s < subscribers; ++s) {
      pool.emplace_back([&] {
        net::JoinClient client;
        if (!client.Connect(server.host(), server.port())) {
          failed.store(true, std::memory_order_relaxed);
          return;
        }
        for (int t = 0; t < ticks; ++t) {
          if (!client.Join(poll_batches[static_cast<size_t>(t)]).ok) {
            failed.store(true, std::memory_order_relaxed);
            return;
          }
        }
      });
    }
    for (auto& t : pool) t.join();
    const double seconds = timer.ElapsedSeconds();
    if (failed.load(std::memory_order_relaxed)) {
      std::fprintf(stderr, "poll arm join failed\n");
      return -1;
    }
    double eps = -1;
    if (seconds > 0) {
      eps = static_cast<double>(credit_events) / seconds;
      if (eps > poll_eps) {
        poll_eps = eps;
        poll_wall_ms = seconds * 1e3;
      }
    }
    server.Stop();
    return eps;
  };

  // The arms alternate rep by rep, and the smoke gate judges the best
  // *same-pair* ratio: under a parallel ctest both arms of one pair see
  // the same ambient contention, so a pair ratio > 1 is real even when
  // one arm's absolute best landed on a quiet stretch the other's never
  // got (the same contention-robustness argument as net_throughput's
  // observability A/B).
  double best_pair_ratio = 0;
  const int pairs = std::max(env.reps, env.smoke ? 3 : env.reps);
  for (int pair = 0; pair < pairs; ++pair) {
    const double push = run_push();
    if (push < 0) return 1;
    const double poll = run_poll();
    if (poll < 0) return 1;
    if (poll > 0) best_pair_ratio = std::max(best_pair_ratio, push / poll);
  }

  util::TablePrinter table(
      {"config", "events [K/s]", "wall [ms]", "consumer cost / tick"});
  table.AddRow({"SUBSCRIBE push", util::TablePrinter::Fmt(push_eps / 1e3, 1),
                util::TablePrinter::Fmt(push_wall_ms, 1),
                "coverage probe + EVENT frames"});
  table.AddRow({"poll re-join", util::TablePrinter::Fmt(poll_eps / 1e3, 1),
                util::TablePrinter::Fmt(poll_wall_ms, 1),
                "full fleet join"});
  Emit(env, table);
  std::printf("%llu transition events per run; push advantage: %.2fx "
              "best-pair at %d consumers over %d workers\n",
              static_cast<unsigned long long>(push_events),
              best_pair_ratio, subscribers, workers);

  NoteThroughput(push_eps / 1e6);
  if (!SmokeReportPath().empty()) {
    AppendSmokeReport(SmokeReportPath(), "subscribe_throughput/push",
                      push_eps / 1e6, push_wall_ms);
    AppendSmokeReport(SmokeReportPath(), "subscribe_throughput/poll_equiv",
                      poll_eps / 1e6, poll_wall_ms);
  }

  if (env.smoke) {
    if (push_events == 0 || push_eps <= 0) {
      std::fprintf(stderr, "FAIL: push arm delivered no events\n");
      return 1;
    }
    if (push_dropped != 0) {
      std::fprintf(stderr,
                   "FAIL: %llu events dropped at bench scale (outbox "
                   "should never overflow here)\n",
                   static_cast<unsigned long long>(push_dropped));
      return 1;
    }
    if (best_pair_ratio <= 1.0) {
      std::fprintf(stderr,
                   "FAIL: push did not beat the poll-equivalent lower "
                   "bound in any pair (best ratio %.3f; max push %.0f "
                   "events/s, max poll %.0f events/s)\n",
                   best_pair_ratio, push_eps, poll_eps);
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace actjoin::bench

int main(int argc, char** argv) {
  return actjoin::bench::BenchMain(argc, argv, "subscribe_throughput",
                                   actjoin::bench::Run);
}
