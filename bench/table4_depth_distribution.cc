// Reproduces paper Table 4: distribution of the ACT4 tree-traversal depth
// (number of node accesses per probe) at 4 m precision, for uniform vs
// taxi-analog points across the three NYC polygon datasets. Clustered real
// data resolves higher in the tree (larger cells cover popular interiors);
// finer polygon datasets push probes deeper.

#include <cstdio>
#include <vector>

#include "act/act.h"
#include "bench/bench_common.h"

namespace actjoin::bench {
namespace {

std::vector<double> DepthHistogram(const act::AdaptiveCellTrie& trie,
                                   const wl::PointSet& pts) {
  std::vector<uint64_t> histo(16, 0);
  int max_depth = 0;
  for (uint64_t id : pts.cell_ids()) {
    int depth = 0;
    trie.ProbeCounting(id, &depth);
    ++histo[depth];
    max_depth = std::max(max_depth, depth);
  }
  std::vector<double> out(max_depth + 1);
  for (int d = 0; d <= max_depth; ++d) {
    out[d] = static_cast<double>(histo[d]) / pts.size();
  }
  return out;
}

int Run(int argc, char** argv) {
  util::Flags flags;
  BenchEnv env = ParseEnv(argc, argv, &flags, 0.1, 500'000);

  std::printf("Table 4: ACT4 traversal depth distribution, 4 m "
              "(scale=%.3g)\n\n", env.scale);

  util::TablePrinter table({"points", "polygons", "depth", "fraction"});
  for (const wl::PolygonDataset& ds : NycDatasets(env)) {
    act::PolygonClassifier classifier(ds.polygons, env.grid, env.threads);
    act::SuperCovering sc = BuildCovering(ds, env, classifier, 4.0, nullptr);
    act::EncodedCovering enc = act::Encode(sc);
    act::AdaptiveCellTrie trie(enc, {.bits_per_level = 8});

    for (bool uniform : {true, false}) {
      wl::PointSet pts = uniform ? Uniform(env, ds.mbr) : Taxi(env, ds.mbr);
      std::vector<double> histo = DepthHistogram(trie, pts);
      for (size_t d = 0; d < histo.size(); ++d) {
        table.AddRow({uniform ? "uniform" : "taxi", ds.name,
                      util::TablePrinter::FmtInt(d),
                      util::TablePrinter::Fmt(histo[d], 3)});
      }
    }
  }
  Emit(env, table);
  std::printf(
      "Paper shape: uniform skews toward the root (large cells hit more\n"
      "often); taxi data on census mostly ends at depth 3; boroughs at 1.\n");
  return 0;
}

}  // namespace
}  // namespace actjoin::bench

int main(int argc, char** argv) {
  return actjoin::bench::BenchMain(argc, argv, "table4_depth_distribution",
                                   actjoin::bench::Run);
}
