// Tests for the observability layer (util/metrics.h, service/trace.h,
// service/slow_query_log.h): the registry's owned and callback instruments
// must collect exact values, the atomic Histogram must stay
// sample-for-sample identical to its LatencyHistogram twin, the Prometheus
// rendering must parse as text exposition format, the event ring and
// slow-query log must evict correctly — and all of the lock-free recording
// must hold up under ThreadSanitizer. Suites are named Metrics* / Trace* /
// Observability* so the TSan CI filter runs the concurrent ones.
//
// Threading discipline: gtest assertions run only on the main thread;
// worker threads record into the instruments and are joined before any
// assertion reads them.

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exposition_test_util.h"
#include "geo/grid.h"
#include "service/join_service.h"
#include "service/slow_query_log.h"
#include "service/trace.h"
#include "util/latency_histogram.h"
#include "util/metrics.h"
#include "workloads/datasets.h"

namespace actjoin::util {
namespace {

// --- Registry instruments --------------------------------------------------

TEST(Metrics, OwnedAndCallbackInstrumentsCollectExactValues) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("requests_total", "help text");
  c->Inc();
  c->Inc(41);
  Gauge* g = registry.GetGauge("depth", "", "");
  g->Set(2.5);
  std::atomic<uint64_t> external{7};
  registry.RegisterCounterFn("external_total", "", "kind=\"x\"",
                             [&] { return external.load(); });
  registry.RegisterGaugeFamilyFn("per_thing", "one series per thing", [] {
    return MetricsRegistry::FamilySeries{{"thing=\"a\"", 1.0},
                                         {"thing=\"b\"", 2.0}};
  });

  // Create-or-get: the same (name, labels) pair is the same instrument.
  EXPECT_EQ(registry.GetCounter("requests_total"), c);

  std::vector<CollectedMetric> metrics = registry.Collect();
  ASSERT_EQ(metrics.size(), 4u);  // registration order
  EXPECT_EQ(metrics[0].name, "requests_total");
  EXPECT_EQ(metrics[0].kind, MetricKind::kCounter);
  ASSERT_EQ(metrics[0].series.size(), 1u);
  EXPECT_EQ(metrics[0].series[0].value, 42.0);
  EXPECT_EQ(metrics[1].series[0].value, 2.5);
  EXPECT_EQ(metrics[2].series[0].labels, "kind=\"x\"");
  EXPECT_EQ(metrics[2].series[0].value, 7.0);
  ASSERT_EQ(metrics[3].series.size(), 2u);
  EXPECT_EQ(metrics[3].series[0].labels, "thing=\"a\"");
  EXPECT_EQ(metrics[3].series[1].value, 2.0);
}

TEST(Metrics, HistogramMatchesLatencyHistogramGeometry) {
  // The atomic Histogram shares LatencyHistogram's bucket geometry and
  // sanitation; recording the same samples must produce the same counts,
  // quantile edges, and max. Sums use values exact in integer nanoseconds
  // (the atomic twin stores nanos) so they compare exactly.
  Histogram atomic_h;
  LatencyHistogram plain;
  const double samples[] = {0.0,  0.5,    1.0,     12.5,          901.25,
                            4096, 7777.5, 123456.0, 1e9 /* clamps */, -3.0};
  for (double s : samples) {
    atomic_h.Record(s);
    plain.Record(s);
  }
  LatencyHistogram snap = atomic_h.Snapshot();
  EXPECT_EQ(snap.count(), plain.count());
  EXPECT_EQ(snap.MaxMicros(), plain.MaxMicros());
  EXPECT_NEAR(snap.sum_micros(), plain.sum_micros(), 1e-3);
  EXPECT_EQ(snap.P50Micros(), plain.P50Micros());
  EXPECT_EQ(snap.P99Micros(), plain.P99Micros());
  EXPECT_EQ(snap.P999Micros(), plain.P999Micros());
  for (int b = 0; b < LatencyHistogram::kNumBuckets; ++b) {
    ASSERT_EQ(snap.bucket_count(b), plain.bucket_count(b)) << "bucket " << b;
  }
}

// The exposition-format grammar check lives in exposition_test_util.h so
// the admin endpoint's /metrics test validates scrapes with the same
// parser.
using actjoin::testutil::ExpectParsesAsExposition;

TEST(Metrics, RenderPrometheusIsValidExposition) {
  MetricsRegistry registry;
  registry.GetCounter("requests_total", "Requests served")->Inc(3);
  registry.GetGauge("queue_depth", "Queue depth", "shard=\"0\"")->Set(1.5);
  Histogram* h = registry.GetHistogram("service_seconds", "Service time");
  for (int i = 1; i <= 1000; ++i) h->Record(static_cast<double>(i));

  std::string text = registry.RenderPrometheus();
  ExpectParsesAsExposition(text);
  EXPECT_NE(text.find("# TYPE actjoin_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("actjoin_requests_total 3"), std::string::npos);
  EXPECT_NE(text.find("actjoin_queue_depth{shard=\"0\"} 1.5"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE actjoin_service_seconds histogram"),
            std::string::npos);
  // Histogram series: cumulative le buckets ending at +Inf == _count, with
  // the sum converted to seconds.
  EXPECT_NE(text.find("actjoin_service_seconds_bucket{le=\"+Inf\"} 1000"),
            std::string::npos);
  EXPECT_NE(text.find("actjoin_service_seconds_count 1000"),
            std::string::npos);
  // Sum of 1..1000 us = 500500 us = 0.5005 s.
  EXPECT_NE(text.find("actjoin_service_seconds_sum 0.5005"),
            std::string::npos);

  // Cumulative le buckets never decrease.
  uint64_t prev = 0;
  size_t pos = 0;
  int buckets_seen = 0;
  while ((pos = text.find("actjoin_service_seconds_bucket{le=", pos)) !=
         std::string::npos) {
    size_t sp = text.rfind(' ', text.find('\n', pos));
    uint64_t v = std::strtoull(text.c_str() + sp + 1, nullptr, 10);
    EXPECT_GE(v, prev);
    prev = v;
    ++buckets_seen;
    pos = text.find('\n', pos);
  }
  EXPECT_EQ(buckets_seen, LatencyHistogram::kOctaves + 1);
}

TEST(Metrics, EventLogRingEvictsOldestAndKeepsSeq) {
  EventLog log(4);
  EXPECT_EQ(log.capacity(), 4u);
  for (int i = 1; i <= 10; ++i) {
    log.Append("kind" + std::to_string(i), "subject", "detail");
  }
  EXPECT_EQ(log.total_appended(), 10u);
  std::vector<MetricEvent> events = log.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest first, the last four appended, seq contiguous 1-based.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 7 + i);
    EXPECT_EQ(events[i].kind, "kind" + std::to_string(7 + i));
    EXPECT_GE(events[i].uptime_s, 0.0);
    if (i > 0) {
      EXPECT_GE(events[i].uptime_s, events[i - 1].uptime_s);
    }
  }
}

TEST(Metrics, ConcurrentRecordingAndCollectionIsExact) {
  // The TSan target: threads hammer one counter, one gauge, and one
  // histogram through their lock-free paths while a collector snapshots
  // and renders concurrently. Totals must come out exact once joined.
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("hits_total");
  Gauge* g = registry.GetGauge("level");
  Histogram* h = registry.GetHistogram("lat_seconds");
  registry.GetCounter("hits_total");  // concurrent create-or-get below too

  constexpr int kThreads = 4;
  constexpr int kOps = 20000;
  std::atomic<bool> stop{false};
  std::thread collector([&] {
    while (!stop.load(std::memory_order_acquire)) {
      registry.Collect();
      registry.RenderPrometheus();
      registry.events().Append("tick", "", "");
    }
  });
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kOps; ++i) {
        c->Inc();
        g->Set(static_cast<double>(t));
        h->Record(static_cast<double>(i % 1024));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  stop.store(true, std::memory_order_release);
  collector.join();

  EXPECT_EQ(c->value(), static_cast<uint64_t>(kThreads) * kOps);
  LatencyHistogram snap = h->Snapshot();
  EXPECT_EQ(snap.count(), static_cast<uint64_t>(kThreads) * kOps);
  double gv = g->value();
  EXPECT_GE(gv, 0.0);
  EXPECT_LT(gv, static_cast<double>(kThreads));
}

}  // namespace
}  // namespace actjoin::util

namespace actjoin::service {
namespace {

// --- Trace context and slow-query log --------------------------------------

TEST(Trace, ContextStageAccessorsAndTotal) {
  TraceContext trace;
  EXPECT_FALSE(trace.enabled);
  for (int s = 0; s < kNumTraceStages; ++s) {
    EXPECT_EQ(trace.stage_us[static_cast<size_t>(s)], 0.0);
    EXPECT_NE(std::string(TraceStageName(static_cast<TraceStage>(s))), "");
  }
  trace.at(TraceStage::kAdmission) = 1.0;
  trace.at(TraceStage::kProbe) = 40.0;
  trace.at(TraceStage::kRespond) = 2.0;
  EXPECT_EQ(trace.TotalMicros(), 43.0);
  EXPECT_EQ(std::string(TraceStageName(TraceStage::kQueue)), "queue");
  EXPECT_EQ(std::string(TraceStageName(TraceStage::kRespond)), "respond");
}

TEST(Trace, SlowQueryLogKeepsTopKByServiceTime) {
  SlowQueryLog log(3);
  EXPECT_EQ(log.capacity(), 3u);
  EXPECT_EQ(SlowQueryLog(0).capacity(), 1u);  // clamp

  auto rec = [&](uint64_t id, double service_us) {
    SlowQuery q;
    q.request_id = id;
    q.service_us = service_us;
    log.Record(q);
  };
  rec(1, 10);
  rec(2, 30);
  rec(3, 20);
  // Full: the floor is the current minimum (10); at-or-below is rejected
  // on the lock-free fast path.
  rec(4, 5);
  rec(5, 10);
  std::vector<SlowQuery> top = log.TopK();
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].request_id, 2u);
  EXPECT_EQ(top[1].request_id, 3u);
  EXPECT_EQ(top[2].request_id, 1u);

  // A slower query displaces the minimum.
  rec(6, 40);
  top = log.TopK();
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].request_id, 6u);
  EXPECT_EQ(top[0].service_us, 40.0);
  EXPECT_EQ(top[2].request_id, 3u);
}

TEST(Trace, SlowQueryLogConcurrentRecordKeepsInvariants) {
  // TSan target for the floor fast path racing qualifying inserts.
  SlowQueryLog log(8);
  constexpr int kThreads = 4;
  constexpr int kOps = 5000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kOps; ++i) {
        SlowQuery q;
        q.request_id = static_cast<uint64_t>(t) * kOps + i;
        // Deterministic spread; the global max is (kThreads*kOps - 1) * 7.
        q.service_us = static_cast<double>(q.request_id) * 7.0;
        log.Record(q);
        if (i % 512 == 0) log.TopK();
      }
    });
  }
  for (std::thread& w : workers) w.join();

  std::vector<SlowQuery> top = log.TopK();
  ASSERT_EQ(top.size(), 8u);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].service_us, top[i].service_us);
  }
  // The slowest query ever recorded must have survived.
  EXPECT_EQ(top[0].service_us,
            static_cast<double>(kThreads * kOps - 1) * 7.0);
}

// --- Service-level integration ---------------------------------------------

std::shared_ptr<const ShardedIndex> BuildIndex(
    const std::vector<geom::Polygon>& polygons, int num_shards) {
  geo::Grid grid;
  act::BuildOptions bopts;
  bopts.threads = 1;
  return std::make_shared<const ShardedIndex>(ShardedIndex::Build(
      polygons, grid, {.num_shards = num_shards, .build = bopts}));
}

TEST(Observability, ServiceRegistersCoreSeriesTracksDatasetsAndEvents) {
  geo::Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  auto index = BuildIndex(ds.polygons, 2);

  ServiceOptions opts;
  opts.worker_threads = 2;
  JoinService service(index, opts);  // dataset 0 = "default"
  ASSERT_NE(service.metrics(), nullptr);
  ASSERT_TRUE(service.catalog().Add("census", index).has_value());

  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 400, grid, 91);
  QueryBatch batch{pts.cell_ids(), pts.points(), act::JoinMode::kExact};
  batch.trace_id = 77;
  service.Submit(batch).get();
  batch.dataset_id = 1;
  service.Submit(batch).get();
  service.SwapIndex(0, index);  // publishes epoch 2 for "default"

  // Per-dataset splits in ServiceStats (the epoch fix: dataset 1 keeps its
  // own epoch instead of reporting dataset 0's).
  ServiceStats stats = service.Stats();
  ASSERT_EQ(stats.dataset_splits.size(), 2u);
  EXPECT_EQ(stats.dataset_splits[0].name, "default");
  EXPECT_EQ(stats.dataset_splits[0].epoch, 2u);
  EXPECT_EQ(stats.dataset_splits[0].points_served, pts.size());
  EXPECT_EQ(stats.dataset_splits[0].completed_requests, 1u);
  EXPECT_EQ(stats.dataset_splits[1].name, "census");
  EXPECT_EQ(stats.dataset_splits[1].epoch, 1u);
  EXPECT_EQ(stats.dataset_splits[1].points_served, pts.size());

  // The registry collects the whole stack with per-dataset families.
  std::string text = service.metrics()->RenderPrometheus();
  for (const char* needle :
       {"actjoin_requests_completed_total 2", "actjoin_points_served_total",
        "actjoin_dataset_epoch{dataset=\"default\"} 2",
        "actjoin_dataset_epoch{dataset=\"census\"} 1",
        "actjoin_dataset_points_served_total{dataset=\"census\"}",
        "# TYPE actjoin_service_seconds histogram",
        "# TYPE actjoin_queue_wait_seconds histogram"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }

  // The swap landed in the event log, and both joins in the slow-query
  // ring (its floor starts at zero, so every completed request qualifies
  // until the ring fills).
  std::vector<util::MetricEvent> events =
      service.metrics()->events().Snapshot();
  bool saw_swap = false;
  for (const util::MetricEvent& e : events) {
    if (e.kind == "swap" && e.subject == "default") saw_swap = true;
  }
  EXPECT_TRUE(saw_swap);
  std::vector<SlowQuery> slow = service.slow_queries().TopK();
  ASSERT_EQ(slow.size(), 2u);
  EXPECT_EQ(slow[0].num_points, pts.size());
  EXPECT_EQ(slow[0].request_id, 77u);
}

TEST(Observability, DisabledMetricsStillServesAndTraces) {
  // enable_metrics=false: no registry, no events — but tracing and the
  // slow-query log are independent of the registry and still work.
  geo::Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  auto index = BuildIndex(ds.polygons, 2);
  ServiceOptions opts;
  opts.worker_threads = 1;
  opts.enable_metrics = false;
  JoinService service(index, opts);
  EXPECT_EQ(service.metrics(), nullptr);

  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 300, grid, 92);
  QueryBatch batch{pts.cell_ids(), pts.points(), act::JoinMode::kExact};
  batch.trace = true;
  batch.trace_id = 5;
  JoinResult result = service.Submit(batch).get();
  EXPECT_TRUE(result.trace.enabled);
  EXPECT_EQ(result.trace.request_id, 5u);
  EXPECT_GT(result.trace.at(TraceStage::kProbe) +
                result.trace.at(TraceStage::kDecompose) +
                result.trace.at(TraceStage::kMerge),
            0.0);
  EXPECT_EQ(service.slow_queries().TopK().size(), 1u);
}

TEST(Observability, TracedSubmitStagesTileServiceTime) {
  // The service-side contract behind the wire acceptance test: queue /
  // decompose / probe / merge are filled, non-negative, and decompose +
  // probe + merge sums exactly to the reported service time (the merge
  // stage absorbs untimed leftover so the stages tile it).
  geo::Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  auto index = BuildIndex(ds.polygons, 4);
  ServiceOptions opts;
  opts.worker_threads = 2;
  JoinService service(index, opts);

  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 3000, grid, 93);
  QueryBatch batch{pts.cell_ids(), pts.points(), act::JoinMode::kExact};
  batch.trace = true;
  JoinResult result = service.Submit(batch).get();
  ASSERT_TRUE(result.trace.enabled);
  for (int s = 0; s < kNumTraceStages; ++s) {
    EXPECT_GE(result.trace.stage_us[static_cast<size_t>(s)], 0.0)
        << TraceStageName(static_cast<TraceStage>(s));
  }
  // Admission / decode / respond belong to the network layer: zero here.
  EXPECT_EQ(result.trace.at(TraceStage::kAdmission), 0.0);
  EXPECT_EQ(result.trace.at(TraceStage::kDecode), 0.0);
  EXPECT_EQ(result.trace.at(TraceStage::kRespond), 0.0);
  const double service_us = result.trace.at(TraceStage::kDecompose) +
                            result.trace.at(TraceStage::kProbe) +
                            result.trace.at(TraceStage::kMerge);
  EXPECT_NEAR(service_us, result.service_ms * 1e3,
              1e-6 * std::max(1.0, result.service_ms * 1e3));
  EXPECT_NEAR(result.trace.at(TraceStage::kQueue),
              result.queue_wait_ms * 1e3, 1e-9);
  // An untraced submit carries a disabled, all-zero context.
  batch.trace = false;
  JoinResult untraced = service.Submit(batch).get();
  EXPECT_FALSE(untraced.trace.enabled);
  EXPECT_EQ(untraced.trace.TotalMicros(), 0.0);
}

}  // namespace
}  // namespace actjoin::service
