// Tests for index persistence: save/load round trips (plain, refined,
// trained, updated indexes), probe/join equivalence, and typed rejection
// of corrupt or alien files. Format v2 frames every section with a CRC32C
// trailer, so the corruption sweep asserts not just *that* a mangled file
// is refused but that the LoadError says *why* (truncation vs checksum vs
// bad data) — the distinction operators need to tell bit-rot from absence.

//
// Seeding convention (full rationale in util_test.cc): random data comes
// only from util::Rng with explicit literal seeds or from the workload
// factories, whose default seeds are fixed compile-time constants -- never
// time- or address-derived -- so every ctest run is bit-reproducible.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "act/serialization.h"
#include "geo/grid.h"
#include "util/crc32c.h"
#include "util/random.h"
#include "workloads/datasets.h"

namespace actjoin::act {
namespace {

using geo::Grid;

std::string TmpPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  auto size = static_cast<size_t>(in.tellg());
  in.seekg(0);
  std::string bytes(size, '\0');
  in.read(bytes.data(), static_cast<std::streamsize>(size));
  return bytes;
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// A small but fully featured index (multiple polygons, options, covering)
// serialized to bytes, for corruption experiments.
std::string SerializedIndexBytes(const std::string& path) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.03);
  BuildOptions opts;
  opts.threads = 1;
  PolygonIndex index = PolygonIndex::Build(ds.polygons, grid, opts);
  EXPECT_TRUE(SaveIndex(index, path));
  return ReadFile(path);
}

// --- v2 section map helpers ------------------------------------------------
// file := u32 magic | u32 version | 3 x [u32 tag | u64 len | payload | u32
// crc32c(payload)], all little-endian.

struct SectionLoc {
  uint32_t tag = 0;
  size_t payload_off = 0;
  size_t payload_len = 0;
  size_t crc_off = 0;
};

uint64_t ReadLe(const std::string& bytes, size_t off, int width) {
  uint64_t v = 0;
  for (int i = 0; i < width; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes[off + i]))
         << (8 * i);
  }
  return v;
}

std::vector<SectionLoc> LocateSections(const std::string& bytes) {
  std::vector<SectionLoc> out;
  size_t off = 8;
  while (off + 16 <= bytes.size()) {
    SectionLoc s;
    s.tag = static_cast<uint32_t>(ReadLe(bytes, off, 4));
    s.payload_len = ReadLe(bytes, off + 4, 8);
    s.payload_off = off + 12;
    s.crc_off = s.payload_off + s.payload_len;
    out.push_back(s);
    off = s.crc_off + 4;
  }
  EXPECT_EQ(off, bytes.size());
  return out;
}

// Recomputes a section's CRC trailer after the test patched its payload,
// so the loader's *semantic* validation (not the checksum) is exercised.
void FixCrc(std::string* bytes, const SectionLoc& s) {
  uint32_t crc = util::Crc32c(bytes->data() + s.payload_off, s.payload_len);
  for (int i = 0; i < 4; ++i) {
    (*bytes)[s.crc_off + static_cast<size_t>(i)] =
        static_cast<char>(crc >> (8 * i));
  }
}

LoadError LoadErrorOf(const std::string& path) {
  LoadError error = LoadError::kNone;
  EXPECT_FALSE(LoadIndex(path, &error).has_value());
  return error;
}

void ExpectIndexesEquivalent(const PolygonIndex& a, const PolygonIndex& b,
                             const geom::Rect& mbr) {
  ASSERT_EQ(a.covering().size(), b.covering().size());
  ASSERT_EQ(a.polygons().size(), b.polygons().size());
  Grid grid(a.grid().curve());
  util::Rng rng(4711);
  for (int s = 0; s < 5000; ++s) {
    geo::LatLng p{rng.Uniform(mbr.lo.y, mbr.hi.y),
                  rng.Uniform(mbr.lo.x, mbr.hi.x)};
    uint64_t leaf = grid.CellAt(p).id();
    // Decoded references must match; raw entries can differ only in
    // lookup-table offsets, so compare via the covering's reference probe.
    int64_t ia = a.covering().FindContaining(geo::CellId(leaf));
    int64_t ib = b.covering().FindContaining(geo::CellId(leaf));
    ASSERT_EQ(ia >= 0, ib >= 0);
    if (ia >= 0) {
      ASSERT_TRUE(a.covering().refs(ia) == b.covering().refs(ib));
    }
  }
}

TEST(Serialization, RoundTripPlainIndex) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  BuildOptions opts;
  opts.threads = 1;
  PolygonIndex index = PolygonIndex::Build(ds.polygons, grid, opts);

  std::string path = TmpPath("plain.actj");
  ASSERT_TRUE(SaveIndex(index, path));
  LoadError error = LoadError::kBadData;
  std::optional<PolygonIndex> loaded = LoadIndex(path, &error);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(error, LoadError::kNone);
  ExpectIndexesEquivalent(index, *loaded, ds.mbr);

  // Joins agree pair for pair.
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 2000, grid, 41);
  EXPECT_EQ(index.JoinPairs(pts.AsJoinInput(), JoinMode::kExact),
            loaded->JoinPairs(pts.AsJoinInput(), JoinMode::kExact));
  std::remove(path.c_str());
}

TEST(Serialization, RoundTripRefinedAndTrained) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  BuildOptions opts;
  opts.threads = 1;
  PolygonIndex index = PolygonIndex::Build(ds.polygons, grid, opts);
  wl::PointSet history = wl::TaxiPoints(ds.mbr, 10000, grid, 42);
  index.Train(history.AsJoinInput());

  std::string path = TmpPath("trained.actj");
  ASSERT_TRUE(SaveIndex(index, path));
  std::optional<PolygonIndex> loaded = LoadIndex(path);
  ASSERT_TRUE(loaded.has_value());
  // Training effort is preserved: same covering size, same refinement.
  EXPECT_EQ(loaded->covering().size(), index.covering().size());
  ExpectIndexesEquivalent(index, *loaded, ds.mbr);
  std::remove(path.c_str());
}

TEST(Serialization, RoundTripPrecisionBoundAndOptions) {
  Grid grid(geo::CurveType::kMorton);
  wl::PolygonDataset ds = wl::Neighborhoods(0.04);
  BuildOptions opts;
  opts.threads = 1;
  opts.precision_bound_m = 90.0;
  opts.act.bits_per_level = 4;
  PolygonIndex index = PolygonIndex::Build(ds.polygons, grid, opts);

  std::string path = TmpPath("options.actj");
  ASSERT_TRUE(SaveIndex(index, path));
  std::optional<PolygonIndex> loaded = LoadIndex(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->grid().curve(), geo::CurveType::kMorton);
  ASSERT_TRUE(loaded->options().precision_bound_m.has_value());
  EXPECT_DOUBLE_EQ(*loaded->options().precision_bound_m, 90.0);
  EXPECT_EQ(loaded->options().act.bits_per_level, 4);
  ExpectIndexesEquivalent(index, *loaded, ds.mbr);
  std::remove(path.c_str());
}

TEST(Serialization, LoadedIndexSupportsUpdatesAndTraining) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  const size_t half = ds.polygons.size() / 2;
  std::vector<geom::Polygon> first_half(ds.polygons.begin(),
                                        ds.polygons.begin() + half);
  BuildOptions opts;
  opts.threads = 1;
  PolygonIndex index = PolygonIndex::Build(first_half, grid, opts);

  std::string path = TmpPath("updatable.actj");
  ASSERT_TRUE(SaveIndex(index, path));
  std::optional<PolygonIndex> loaded = LoadIndex(path);
  ASSERT_TRUE(loaded.has_value());

  std::vector<geom::Polygon> second_half(ds.polygons.begin() + half,
                                         ds.polygons.end());
  loaded->AddPolygons(second_half);
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 2000, grid, 43);
  EXPECT_EQ(loaded->JoinPairs(pts.AsJoinInput(), JoinMode::kExact),
            BruteForceJoinPairs(pts.AsJoinInput(), ds.polygons));
  std::remove(path.c_str());
}

TEST(Serialization, MissingFileIsTypedMissing) {
  LoadError error = LoadError::kNone;
  EXPECT_FALSE(LoadIndex("/nonexistent/path/x.actj", &error).has_value());
  EXPECT_EQ(error, LoadError::kMissing);
  // The error out-param stays optional.
  EXPECT_FALSE(LoadIndex("/nonexistent/path/x.actj").has_value());
}

TEST(Serialization, RejectsBadMagicTyped) {
  std::string path = TmpPath("garbage.actj");
  WriteFile(path, "this is not an index file");
  EXPECT_EQ(LoadErrorOf(path), LoadError::kBadMagic);
  std::remove(path.c_str());
}

TEST(Serialization, RejectsVersionMismatchTyped) {
  // A file from another format version — including v1, which had no
  // section checksums — must be refused up front as kBadVersion, not
  // half-parsed into a broken index.
  std::string path = TmpPath("version.actj");
  std::string bytes = SerializedIndexBytes(path);
  ASSERT_GE(bytes.size(), 8u);  // [magic u32][version u32]...
  for (uint32_t version : {0u, 1u, 3u, 0xffffffffu}) {
    std::string patched = bytes;
    std::memcpy(patched.data() + 4, &version, sizeof(version));
    WriteFile(path, patched);
    EXPECT_EQ(LoadErrorOf(path), LoadError::kBadVersion)
        << "version " << version;
  }
  // Unpatched control: the original bytes still load.
  WriteFile(path, bytes);
  EXPECT_TRUE(LoadIndex(path).has_value());
  std::remove(path.c_str());
}

TEST(Serialization, RejectsTruncationAtEveryPrefixTyped) {
  // Cutting the stream at *any* byte boundary must yield a clean typed
  // kTruncated — never UB, a crash, or a partially populated index. Every
  // prefix of the header region is tried byte by byte; the (large)
  // polygon/covering tail is strided. Run under ASan/UBSan in CI, this is
  // the harness's proof that the loader validates lengths before it
  // trusts them.
  std::string path = TmpPath("prefix.actj");
  std::string bytes = SerializedIndexBytes(path);
  ASSERT_GT(bytes.size(), 64u);
  size_t checked = 0;
  for (size_t len = 0; len < bytes.size(); len += (len < 128 ? 1 : 997)) {
    WriteFile(path, bytes.substr(0, len));
    EXPECT_EQ(LoadErrorOf(path), LoadError::kTruncated)
        << "prefix length " << len;
    ++checked;
  }
  EXPECT_GT(checked, 128u);
  std::remove(path.c_str());
}

TEST(Serialization, FileHasThreeCrcFramedSections) {
  std::string path = TmpPath("sections.actj");
  std::string bytes = SerializedIndexBytes(path);
  std::vector<SectionLoc> sections = LocateSections(bytes);
  ASSERT_EQ(sections.size(), 3u);
  EXPECT_EQ(sections[0].tag, 1u);  // options
  EXPECT_EQ(sections[1].tag, 2u);  // polygons
  EXPECT_EQ(sections[2].tag, 3u);  // covering
  for (const SectionLoc& s : sections) {
    EXPECT_EQ(ReadLe(bytes, s.crc_off, 4),
              util::Crc32c(bytes.data() + s.payload_off, s.payload_len));
  }
  std::remove(path.c_str());
}

TEST(Serialization, FlippingOneByteInEachSectionFailsChecksumTyped) {
  // One flipped bit anywhere inside any CRC-covered payload must surface
  // as kBadChecksum at load — this is the bit-rot detection the format
  // exists for. Restoring the byte restores loadability (control).
  std::string path = TmpPath("bitrot.actj");
  std::string bytes = SerializedIndexBytes(path);
  std::vector<SectionLoc> sections = LocateSections(bytes);
  ASSERT_EQ(sections.size(), 3u);
  for (const SectionLoc& s : sections) {
    ASSERT_GT(s.payload_len, 0u);
    for (size_t pos : {size_t{0}, s.payload_len / 2, s.payload_len - 1}) {
      std::string patched = bytes;
      patched[s.payload_off + pos] ^= 0x40;
      WriteFile(path, patched);
      EXPECT_EQ(LoadErrorOf(path), LoadError::kBadChecksum)
          << "section " << s.tag << " byte " << pos;
    }
  }
  // A corrupted CRC trailer itself also reads as a checksum mismatch.
  std::string patched = bytes;
  patched[sections[1].crc_off] ^= 0x01;
  WriteFile(path, patched);
  EXPECT_EQ(LoadErrorOf(path), LoadError::kBadChecksum);

  WriteFile(path, bytes);
  EXPECT_TRUE(LoadIndex(path).has_value());
  std::remove(path.c_str());
}

TEST(Serialization, RejectsBadBitsPerLevelAsBadData) {
  // Semantic validation fires only after the checksum passes: patch the
  // bits_per_level field *and* recompute the section CRC, so the loader
  // sees intact-but-invalid bytes. Options payload layout:
  //   curve u8 | 4 x u32 | has_bound u8 | bound f64 | bits u32 | root u8
  std::string path = TmpPath("bits.actj");
  std::string bytes = SerializedIndexBytes(path);
  std::vector<SectionLoc> sections = LocateSections(bytes);
  ASSERT_EQ(sections.size(), 3u);
  const size_t bits_off = sections[0].payload_off + 1 + 16 + 1 + 8;
  ASSERT_LE(bits_off + 4, sections[0].crc_off);
  for (uint32_t bad : {0u, 9u, 0x80000000u, 1u << 20}) {
    std::string patched = bytes;
    std::memcpy(patched.data() + bits_off, &bad, sizeof(bad));
    FixCrc(&patched, sections[0]);
    WriteFile(path, patched);
    EXPECT_EQ(LoadErrorOf(path), LoadError::kBadData)
        << "bits_per_level " << bad;
  }
  std::remove(path.c_str());
}

TEST(Serialization, RejectsCorruptCellIdsAsBadData) {
  // Re-CRC'd covering bytes with mangled cell ids: the validity /
  // sortedness / disjointness checks must catch what the checksum cannot.
  std::string path = TmpPath("corrupt.actj");
  std::string bytes = SerializedIndexBytes(path);
  std::vector<SectionLoc> sections = LocateSections(bytes);
  ASSERT_EQ(sections.size(), 3u);
  const SectionLoc& covering = sections[2];
  ASSERT_GT(covering.payload_len, 64u);
  std::string patched = bytes;
  for (size_t k = covering.payload_len - 64; k < covering.payload_len; ++k) {
    patched[covering.payload_off + k] = static_cast<char>(0xFF);
  }
  FixCrc(&patched, covering);
  WriteFile(path, patched);
  EXPECT_EQ(LoadErrorOf(path), LoadError::kBadData);
  std::remove(path.c_str());
}

TEST(Serialization, RejectsTrailingGarbageAsBadData) {
  std::string path = TmpPath("trailing.actj");
  std::string bytes = SerializedIndexBytes(path);
  WriteFile(path, bytes + std::string(1, '\0'));
  EXPECT_EQ(LoadErrorOf(path), LoadError::kBadData);
  std::remove(path.c_str());
}

TEST(SerializationCrc32c, KnownVectorsAndChaining) {
  // RFC 3720 test vectors for CRC32C.
  EXPECT_EQ(util::Crc32c("", 0), 0u);
  EXPECT_EQ(util::Crc32c("123456789", 9), 0xE3069283u);
  std::vector<uint8_t> zeros(32, 0);
  EXPECT_EQ(util::Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
  std::vector<uint8_t> ones(32, 0xFF);
  EXPECT_EQ(util::Crc32c(ones.data(), ones.size()), 0x62A8AB43u);

  // Chaining across an arbitrary split equals one pass (every split point
  // exercises both the sliced and the byte-tail paths).
  const char* msg = "The quick brown fox jumps over the lazy dog";
  const size_t n = std::strlen(msg);
  uint32_t whole = util::Crc32c(msg, n);
  for (size_t cut = 0; cut <= n; ++cut) {
    EXPECT_EQ(util::Crc32c(msg + cut, n - cut, util::Crc32c(msg, cut)), whole)
        << "cut=" << cut;
  }
}

}  // namespace
}  // namespace actjoin::act
