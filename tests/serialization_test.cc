// Tests for index persistence: save/load round trips (plain, refined,
// trained, updated indexes), probe/join equivalence, and rejection of
// corrupt or alien files.

//
// Seeding convention (full rationale in util_test.cc): random data comes
// only from util::Rng with explicit literal seeds or from the workload
// factories, whose default seeds are fixed compile-time constants -- never
// time- or address-derived -- so every ctest run is bit-reproducible.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "act/serialization.h"
#include "geo/grid.h"
#include "util/random.h"
#include "workloads/datasets.h"

namespace actjoin::act {
namespace {

using geo::Grid;

std::string TmpPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  auto size = static_cast<size_t>(in.tellg());
  in.seekg(0);
  std::string bytes(size, '\0');
  in.read(bytes.data(), static_cast<std::streamsize>(size));
  return bytes;
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// A small but fully featured index (multiple polygons, options, covering)
// serialized to bytes, for corruption experiments.
std::string SerializedIndexBytes(const std::string& path) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.03);
  BuildOptions opts;
  opts.threads = 1;
  PolygonIndex index = PolygonIndex::Build(ds.polygons, grid, opts);
  EXPECT_TRUE(SaveIndex(index, path));
  return ReadFile(path);
}

void ExpectIndexesEquivalent(const PolygonIndex& a, const PolygonIndex& b,
                             const geom::Rect& mbr) {
  ASSERT_EQ(a.covering().size(), b.covering().size());
  ASSERT_EQ(a.polygons().size(), b.polygons().size());
  Grid grid(a.grid().curve());
  util::Rng rng(4711);
  for (int s = 0; s < 5000; ++s) {
    geo::LatLng p{rng.Uniform(mbr.lo.y, mbr.hi.y),
                  rng.Uniform(mbr.lo.x, mbr.hi.x)};
    uint64_t leaf = grid.CellAt(p).id();
    // Decoded references must match; raw entries can differ only in
    // lookup-table offsets, so compare via the covering's reference probe.
    int64_t ia = a.covering().FindContaining(geo::CellId(leaf));
    int64_t ib = b.covering().FindContaining(geo::CellId(leaf));
    ASSERT_EQ(ia >= 0, ib >= 0);
    if (ia >= 0) {
      ASSERT_TRUE(a.covering().refs(ia) == b.covering().refs(ib));
    }
  }
}

TEST(Serialization, RoundTripPlainIndex) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  BuildOptions opts;
  opts.threads = 1;
  PolygonIndex index = PolygonIndex::Build(ds.polygons, grid, opts);

  std::string path = TmpPath("plain.actj");
  ASSERT_TRUE(SaveIndex(index, path));
  std::optional<PolygonIndex> loaded = LoadIndex(path);
  ASSERT_TRUE(loaded.has_value());
  ExpectIndexesEquivalent(index, *loaded, ds.mbr);

  // Joins agree pair for pair.
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 2000, grid, 41);
  EXPECT_EQ(index.JoinPairs(pts.AsJoinInput(), JoinMode::kExact),
            loaded->JoinPairs(pts.AsJoinInput(), JoinMode::kExact));
  std::remove(path.c_str());
}

TEST(Serialization, RoundTripRefinedAndTrained) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  BuildOptions opts;
  opts.threads = 1;
  PolygonIndex index = PolygonIndex::Build(ds.polygons, grid, opts);
  wl::PointSet history = wl::TaxiPoints(ds.mbr, 10000, grid, 42);
  index.Train(history.AsJoinInput());

  std::string path = TmpPath("trained.actj");
  ASSERT_TRUE(SaveIndex(index, path));
  std::optional<PolygonIndex> loaded = LoadIndex(path);
  ASSERT_TRUE(loaded.has_value());
  // Training effort is preserved: same covering size, same refinement.
  EXPECT_EQ(loaded->covering().size(), index.covering().size());
  ExpectIndexesEquivalent(index, *loaded, ds.mbr);
  std::remove(path.c_str());
}

TEST(Serialization, RoundTripPrecisionBoundAndOptions) {
  Grid grid(geo::CurveType::kMorton);
  wl::PolygonDataset ds = wl::Neighborhoods(0.04);
  BuildOptions opts;
  opts.threads = 1;
  opts.precision_bound_m = 90.0;
  opts.act.bits_per_level = 4;
  PolygonIndex index = PolygonIndex::Build(ds.polygons, grid, opts);

  std::string path = TmpPath("options.actj");
  ASSERT_TRUE(SaveIndex(index, path));
  std::optional<PolygonIndex> loaded = LoadIndex(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->grid().curve(), geo::CurveType::kMorton);
  ASSERT_TRUE(loaded->options().precision_bound_m.has_value());
  EXPECT_DOUBLE_EQ(*loaded->options().precision_bound_m, 90.0);
  EXPECT_EQ(loaded->options().act.bits_per_level, 4);
  ExpectIndexesEquivalent(index, *loaded, ds.mbr);
  std::remove(path.c_str());
}

TEST(Serialization, LoadedIndexSupportsUpdatesAndTraining) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  const size_t half = ds.polygons.size() / 2;
  std::vector<geom::Polygon> first_half(ds.polygons.begin(),
                                        ds.polygons.begin() + half);
  BuildOptions opts;
  opts.threads = 1;
  PolygonIndex index = PolygonIndex::Build(first_half, grid, opts);

  std::string path = TmpPath("updatable.actj");
  ASSERT_TRUE(SaveIndex(index, path));
  std::optional<PolygonIndex> loaded = LoadIndex(path);
  ASSERT_TRUE(loaded.has_value());

  std::vector<geom::Polygon> second_half(ds.polygons.begin() + half,
                                         ds.polygons.end());
  loaded->AddPolygons(second_half);
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 2000, grid, 43);
  EXPECT_EQ(loaded->JoinPairs(pts.AsJoinInput(), JoinMode::kExact),
            BruteForceJoinPairs(pts.AsJoinInput(), ds.polygons));
  std::remove(path.c_str());
}

TEST(Serialization, RejectsMissingFile) {
  EXPECT_FALSE(LoadIndex("/nonexistent/path/x.actj").has_value());
}

TEST(Serialization, RejectsBadMagicAndTruncation) {
  std::string path = TmpPath("garbage.actj");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not an index file";
  }
  EXPECT_FALSE(LoadIndex(path).has_value());

  // A valid file cut short must be rejected, not mis-loaded.
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.03);
  BuildOptions opts;
  opts.threads = 1;
  PolygonIndex index = PolygonIndex::Build(ds.polygons, grid, opts);
  ASSERT_TRUE(SaveIndex(index, path));
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  auto size = static_cast<size_t>(in.tellg());
  in.seekg(0);
  std::string bytes(size, '\0');
  in.read(bytes.data(), size);
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), size / 2);
  }
  EXPECT_FALSE(LoadIndex(path).has_value());
  std::remove(path.c_str());
}

TEST(Serialization, RejectsVersionMismatch) {
  // A file from a future (or garbage) format version must be refused up
  // front, not half-parsed into a broken index.
  std::string path = TmpPath("version.actj");
  std::string bytes = SerializedIndexBytes(path);
  ASSERT_GE(bytes.size(), 8u);  // [magic u32][version u32]...
  for (uint32_t version : {0u, 2u, 0xffffffffu}) {
    std::string patched = bytes;
    std::memcpy(patched.data() + 4, &version, sizeof(version));
    WriteFile(path, patched);
    EXPECT_FALSE(LoadIndex(path).has_value()) << "version " << version;
  }
  // Unpatched control: the original bytes still load.
  WriteFile(path, bytes);
  EXPECT_TRUE(LoadIndex(path).has_value());
  std::remove(path.c_str());
}

TEST(Serialization, RejectsTruncationAtEveryPrefix) {
  // Cutting the stream at *any* byte boundary must yield a clean nullopt —
  // never UB, a crash, or a partially populated index. Every prefix of the
  // header region is tried byte by byte; the (large) polygon/covering tail
  // is strided. Run under ASan/UBSan in CI, this is the harness's proof
  // that the loader validates before it trusts any length field.
  std::string path = TmpPath("prefix.actj");
  std::string bytes = SerializedIndexBytes(path);
  ASSERT_GT(bytes.size(), 64u);
  size_t checked = 0;
  for (size_t len = 0; len < bytes.size(); len += (len < 128 ? 1 : 997)) {
    WriteFile(path, bytes.substr(0, len));
    EXPECT_FALSE(LoadIndex(path).has_value()) << "prefix length " << len;
    ++checked;
  }
  EXPECT_GT(checked, 128u);
  std::remove(path.c_str());
}

TEST(Serialization, RejectsBadBitsPerLevel) {
  // bits_per_level lives at a fixed header offset:
  //   magic u32 | version u32 | curve u8 | 4x i32 | has_bound u8 |
  //   bound f64 | bits_per_level i32
  std::string path = TmpPath("bits.actj");
  std::string bytes = SerializedIndexBytes(path);
  const size_t offset = 4 + 4 + 1 + 4 * 4 + 1 + 8;
  ASSERT_GE(bytes.size(), offset + 4);
  for (int32_t bad : {0, -1, 9, 1 << 20}) {
    std::string patched = bytes;
    std::memcpy(patched.data() + offset, &bad, sizeof(bad));
    WriteFile(path, patched);
    EXPECT_FALSE(LoadIndex(path).has_value()) << "bits_per_level " << bad;
  }
  std::remove(path.c_str());
}

TEST(Serialization, RejectsCorruptCellIds) {
  // Flip bytes inside the covering section: the loader's validity and
  // sortedness checks must catch it (or the disjointness check at the end).
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.03);
  BuildOptions opts;
  opts.threads = 1;
  PolygonIndex index = PolygonIndex::Build(ds.polygons, grid, opts);
  std::string path = TmpPath("corrupt.actj");
  ASSERT_TRUE(SaveIndex(index, path));

  std::ifstream in(path, std::ios::binary | std::ios::ate);
  auto size = static_cast<size_t>(in.tellg());
  in.seekg(0);
  std::string bytes(size, '\0');
  in.read(bytes.data(), size);
  in.close();
  // Corrupt the last 64 bytes (inside cell data).
  for (size_t k = size - 64; k < size; ++k) bytes[k] = static_cast<char>(0xFF);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), size);
  }
  EXPECT_FALSE(LoadIndex(path).has_value());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace actjoin::act
