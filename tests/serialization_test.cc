// Tests for index persistence: save/load round trips (plain, refined,
// trained, updated indexes), probe/join equivalence, and rejection of
// corrupt or alien files.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "act/serialization.h"
#include "geo/grid.h"
#include "util/random.h"
#include "workloads/datasets.h"

namespace actjoin::act {
namespace {

using geo::Grid;

std::string TmpPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

void ExpectIndexesEquivalent(const PolygonIndex& a, const PolygonIndex& b,
                             const geom::Rect& mbr) {
  ASSERT_EQ(a.covering().size(), b.covering().size());
  ASSERT_EQ(a.polygons().size(), b.polygons().size());
  Grid grid(a.grid().curve());
  util::Rng rng(4711);
  for (int s = 0; s < 5000; ++s) {
    geo::LatLng p{rng.Uniform(mbr.lo.y, mbr.hi.y),
                  rng.Uniform(mbr.lo.x, mbr.hi.x)};
    uint64_t leaf = grid.CellAt(p).id();
    // Decoded references must match; raw entries can differ only in
    // lookup-table offsets, so compare via the covering's reference probe.
    int64_t ia = a.covering().FindContaining(geo::CellId(leaf));
    int64_t ib = b.covering().FindContaining(geo::CellId(leaf));
    ASSERT_EQ(ia >= 0, ib >= 0);
    if (ia >= 0) {
      ASSERT_TRUE(a.covering().refs(ia) == b.covering().refs(ib));
    }
  }
}

TEST(Serialization, RoundTripPlainIndex) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  BuildOptions opts;
  opts.threads = 1;
  PolygonIndex index = PolygonIndex::Build(ds.polygons, grid, opts);

  std::string path = TmpPath("plain.actj");
  ASSERT_TRUE(SaveIndex(index, path));
  std::optional<PolygonIndex> loaded = LoadIndex(path);
  ASSERT_TRUE(loaded.has_value());
  ExpectIndexesEquivalent(index, *loaded, ds.mbr);

  // Joins agree pair for pair.
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 2000, grid, 41);
  EXPECT_EQ(index.JoinPairs(pts.AsJoinInput(), JoinMode::kExact),
            loaded->JoinPairs(pts.AsJoinInput(), JoinMode::kExact));
  std::remove(path.c_str());
}

TEST(Serialization, RoundTripRefinedAndTrained) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  BuildOptions opts;
  opts.threads = 1;
  PolygonIndex index = PolygonIndex::Build(ds.polygons, grid, opts);
  wl::PointSet history = wl::TaxiPoints(ds.mbr, 10000, grid, 42);
  index.Train(history.AsJoinInput());

  std::string path = TmpPath("trained.actj");
  ASSERT_TRUE(SaveIndex(index, path));
  std::optional<PolygonIndex> loaded = LoadIndex(path);
  ASSERT_TRUE(loaded.has_value());
  // Training effort is preserved: same covering size, same refinement.
  EXPECT_EQ(loaded->covering().size(), index.covering().size());
  ExpectIndexesEquivalent(index, *loaded, ds.mbr);
  std::remove(path.c_str());
}

TEST(Serialization, RoundTripPrecisionBoundAndOptions) {
  Grid grid(geo::CurveType::kMorton);
  wl::PolygonDataset ds = wl::Neighborhoods(0.04);
  BuildOptions opts;
  opts.threads = 1;
  opts.precision_bound_m = 90.0;
  opts.act.bits_per_level = 4;
  PolygonIndex index = PolygonIndex::Build(ds.polygons, grid, opts);

  std::string path = TmpPath("options.actj");
  ASSERT_TRUE(SaveIndex(index, path));
  std::optional<PolygonIndex> loaded = LoadIndex(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->grid().curve(), geo::CurveType::kMorton);
  ASSERT_TRUE(loaded->options().precision_bound_m.has_value());
  EXPECT_DOUBLE_EQ(*loaded->options().precision_bound_m, 90.0);
  EXPECT_EQ(loaded->options().act.bits_per_level, 4);
  ExpectIndexesEquivalent(index, *loaded, ds.mbr);
  std::remove(path.c_str());
}

TEST(Serialization, LoadedIndexSupportsUpdatesAndTraining) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  const size_t half = ds.polygons.size() / 2;
  std::vector<geom::Polygon> first_half(ds.polygons.begin(),
                                        ds.polygons.begin() + half);
  BuildOptions opts;
  opts.threads = 1;
  PolygonIndex index = PolygonIndex::Build(first_half, grid, opts);

  std::string path = TmpPath("updatable.actj");
  ASSERT_TRUE(SaveIndex(index, path));
  std::optional<PolygonIndex> loaded = LoadIndex(path);
  ASSERT_TRUE(loaded.has_value());

  std::vector<geom::Polygon> second_half(ds.polygons.begin() + half,
                                         ds.polygons.end());
  loaded->AddPolygons(second_half);
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 2000, grid, 43);
  EXPECT_EQ(loaded->JoinPairs(pts.AsJoinInput(), JoinMode::kExact),
            BruteForceJoinPairs(pts.AsJoinInput(), ds.polygons));
  std::remove(path.c_str());
}

TEST(Serialization, RejectsMissingFile) {
  EXPECT_FALSE(LoadIndex("/nonexistent/path/x.actj").has_value());
}

TEST(Serialization, RejectsBadMagicAndTruncation) {
  std::string path = TmpPath("garbage.actj");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not an index file";
  }
  EXPECT_FALSE(LoadIndex(path).has_value());

  // A valid file cut short must be rejected, not mis-loaded.
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.03);
  BuildOptions opts;
  opts.threads = 1;
  PolygonIndex index = PolygonIndex::Build(ds.polygons, grid, opts);
  ASSERT_TRUE(SaveIndex(index, path));
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  auto size = static_cast<size_t>(in.tellg());
  in.seekg(0);
  std::string bytes(size, '\0');
  in.read(bytes.data(), size);
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), size / 2);
  }
  EXPECT_FALSE(LoadIndex(path).has_value());
  std::remove(path.c_str());
}

TEST(Serialization, RejectsCorruptCellIds) {
  // Flip bytes inside the covering section: the loader's validity and
  // sortedness checks must catch it (or the disjointness check at the end).
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.03);
  BuildOptions opts;
  opts.threads = 1;
  PolygonIndex index = PolygonIndex::Build(ds.polygons, grid, opts);
  std::string path = TmpPath("corrupt.actj");
  ASSERT_TRUE(SaveIndex(index, path));

  std::ifstream in(path, std::ios::binary | std::ios::ate);
  auto size = static_cast<size_t>(in.tellg());
  in.seekg(0);
  std::string bytes(size, '\0');
  in.read(bytes.data(), size);
  in.close();
  // Corrupt the last 64 bytes (inside cell data).
  for (size_t k = size - 64; k < size; ++k) bytes[k] = static_cast<char>(0xFF);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), size);
  }
  EXPECT_FALSE(LoadIndex(path).has_value());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace actjoin::act
