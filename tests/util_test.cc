// Unit tests for the util subsystem.
//
// Seeding convention for the whole tests/ tree: any test that draws random
// data constructs util::Rng with an explicit literal seed (or one derived
// deterministically from the test parameter) — never the default
// constructor, never anything time- or address-derived. Rng is a fixed
// xoshiro256** implementation precisely so that seeded runs are
// bit-identical across platforms and standard libraries, which makes every
// ctest run reproducible and every failure replayable from the seed in the
// test source.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "util/bitops.h"
#include "util/flags.h"
#include "util/parallel_for.h"
#include "util/random.h"
#include "util/small_vector.h"
#include "util/table_printer.h"
#include "util/work_stealing_pool.h"

namespace actjoin::util {
namespace {

TEST(BitOps, TrailingZeros) {
  EXPECT_EQ(CountTrailingZeros(1), 0);
  EXPECT_EQ(CountTrailingZeros(8), 3);
  EXPECT_EQ(CountTrailingZeros(uint64_t{1} << 60), 60);
  EXPECT_EQ(CountTrailingZeros(0), 64);
}

TEST(BitOps, LeadingZeros) {
  EXPECT_EQ(CountLeadingZeros(uint64_t{1} << 63), 0);
  EXPECT_EQ(CountLeadingZeros(1), 63);
  EXPECT_EQ(CountLeadingZeros(0), 64);
}

TEST(BitOps, LowestSetBit) {
  EXPECT_EQ(LowestSetBit(0b1011000), uint64_t{0b1000});
  EXPECT_EQ(LowestSetBit(0), uint64_t{0});
  EXPECT_EQ(LowestSetBit(uint64_t{1} << 63), uint64_t{1} << 63);
}

TEST(BitOps, ExtractBits) {
  EXPECT_EQ(ExtractBits(0xABCD, 4, 8), uint64_t{0xBC});
  EXPECT_EQ(ExtractBits(~uint64_t{0}, 0, 64), ~uint64_t{0});
}

TEST(BitOps, CommonPrefixLength) {
  EXPECT_EQ(CommonPrefixLength(0, 0), 64);
  EXPECT_EQ(CommonPrefixLength(uint64_t{1} << 63, 0), 0);
  uint64_t a = 0xFF00000000000000ULL;
  uint64_t b = 0xFF80000000000000ULL;
  EXPECT_EQ(CommonPrefixLength(a, b), 8);
}

TEST(Rng, DeterministicBySeed) {
  Rng a(42), b(42), c(43);
  bool all_equal = true;
  bool any_diff_seed_diff = false;
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Next(), vb = b.Next(), vc = c.Next();
    all_equal &= (va == vb);
    any_diff_seed_diff |= (va != vc);
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff_seed_diff);
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(-2.5, 3.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 3.5);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(9);
  double sum = 0, sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(SmallVector, InlineBasics) {
  SmallVector<int, 2> v;
  EXPECT_TRUE(v.empty());
  v.push_back(1);
  v.push_back(2);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[1], 2);
  EXPECT_EQ(v.capacity(), 2u);
}

TEST(SmallVector, SpillsToHeap) {
  SmallVector<int, 2> v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(v[i], i);
  EXPECT_GT(v.capacity(), 2u);
}

TEST(SmallVector, CopyAndMove) {
  SmallVector<int, 2> v{1, 2, 3, 4};
  SmallVector<int, 2> copy(v);
  EXPECT_EQ(copy.size(), 4u);
  EXPECT_TRUE(copy == v);

  SmallVector<int, 2> moved(std::move(v));
  EXPECT_EQ(moved.size(), 4u);
  EXPECT_EQ(moved[3], 4);
  EXPECT_EQ(v.size(), 0u);  // NOLINT: moved-from is empty by contract

  SmallVector<int, 2> assigned;
  assigned = copy;
  EXPECT_TRUE(assigned == copy);
  SmallVector<int, 2> move_assigned;
  move_assigned = std::move(copy);
  EXPECT_EQ(move_assigned.size(), 4u);
}

TEST(SmallVector, InlineCopyIndependence) {
  SmallVector<int, 4> a{1, 2};
  SmallVector<int, 4> b(a);
  b[0] = 99;
  EXPECT_EQ(a[0], 1);
}

TEST(SmallVector, PopAndClear) {
  SmallVector<int, 2> v{5, 6, 7};
  v.pop_back();
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.back(), 6);
  v.clear();
  EXPECT_TRUE(v.empty());
}

TEST(SmallVector, ResizeZeroFills) {
  SmallVector<uint64_t, 2> v{1};
  v.resize(5);
  EXPECT_EQ(v.size(), 5u);
  EXPECT_EQ(v[0], 1u);
  for (int i = 1; i < 5; ++i) EXPECT_EQ(v[i], 0u);
}

TEST(ParallelFor, CoversAllIndicesOnce) {
  for (int threads : {1, 2, 4}) {
    const uint64_t n = 10007;
    std::vector<std::atomic<int>> seen(n);
    ParallelFor(n, threads, [&](uint64_t b, uint64_t e, int) {
      for (uint64_t i = b; i < e; ++i) seen[i].fetch_add(1);
    });
    for (uint64_t i = 0; i < n; ++i) {
      ASSERT_EQ(seen[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ParallelFor, EmptyRange) {
  bool called = false;
  ParallelFor(0, 4, [&](uint64_t, uint64_t, int) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, BatchBoundsRespected) {
  ParallelFor(100, 2, 16, [&](uint64_t b, uint64_t e, int) {
    EXPECT_LE(e - b, 16u);
    EXPECT_LT(b, e);
  });
}

TEST(ParallelFor, ThreadIdsInRange) {
  std::atomic<bool> ok{true};
  ParallelFor(1000, 3, [&](uint64_t, uint64_t, int tid) {
    if (tid < 0 || tid >= 3) ok = false;
  });
  EXPECT_TRUE(ok);
}

TEST(TablePrinter, FormatsNumbers) {
  EXPECT_EQ(TablePrinter::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::FmtInt(42), "42");
  EXPECT_EQ(TablePrinter::FmtM(13960000), "13.96");
}

TEST(SplitMix, Avalanche) {
  // Neighboring inputs should produce very different outputs.
  std::set<uint64_t> outs;
  for (uint64_t i = 0; i < 1000; ++i) outs.insert(SplitMix64(i));
  EXPECT_EQ(outs.size(), 1000u);
}

// ---- Flags ----------------------------------------------------------------
// Happy paths plus every TryParse error path; the exit-ing Parse() wrapper
// and the duplicate-registration ACT_CHECK are covered with death tests.

std::vector<char*> Argv(std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (std::string& a : args) argv.push_back(a.data());
  return argv;
}

Flags BenchLikeFlags() {
  Flags flags;
  flags.AddDouble("scale", 0.1, "scale factor");
  flags.AddInt("points", 1000, "point count");
  flags.AddBool("csv", false, "csv output");
  flags.AddString("out", "table.txt", "output path");
  return flags;
}

TEST(Flags, ParsesAllTypesAndBothSyntaxes) {
  Flags flags = BenchLikeFlags();
  std::vector<std::string> args = {"bin",    "--scale=0.5", "--points",
                                   "42",     "--csv",       "--out=x.csv"};
  std::vector<char*> argv = Argv(args);
  std::string error;
  ASSERT_TRUE(flags.TryParse(static_cast<int>(argv.size()), argv.data(),
                             &error))
      << error;
  EXPECT_DOUBLE_EQ(flags.GetDouble("scale"), 0.5);
  EXPECT_EQ(flags.GetInt("points"), 42);
  EXPECT_TRUE(flags.GetBool("csv"));
  EXPECT_EQ(flags.GetString("out"), "x.csv");
}

TEST(Flags, DefaultsSurviveEmptyArgv) {
  Flags flags = BenchLikeFlags();
  std::vector<std::string> args = {"bin"};
  std::vector<char*> argv = Argv(args);
  std::string error;
  ASSERT_TRUE(flags.TryParse(1, argv.data(), &error));
  EXPECT_DOUBLE_EQ(flags.GetDouble("scale"), 0.1);
  EXPECT_EQ(flags.GetInt("points"), 1000);
  EXPECT_FALSE(flags.GetBool("csv"));
  EXPECT_EQ(flags.GetString("out"), "table.txt");
}

TEST(Flags, ExplicitBoolValues) {
  Flags flags = BenchLikeFlags();
  std::vector<std::string> args = {"bin", "--csv=false"};
  std::vector<char*> argv = Argv(args);
  std::string error;
  ASSERT_TRUE(flags.TryParse(2, argv.data(), &error));
  EXPECT_FALSE(flags.GetBool("csv"));

  Flags flags2 = BenchLikeFlags();
  std::vector<std::string> args2 = {"bin", "--csv=1"};
  std::vector<char*> argv2 = Argv(args2);
  ASSERT_TRUE(flags2.TryParse(2, argv2.data(), &error));
  EXPECT_TRUE(flags2.GetBool("csv"));
}

TEST(Flags, RejectsUnknownFlag) {
  Flags flags = BenchLikeFlags();
  std::vector<std::string> args = {"bin", "--bogus=1"};
  std::vector<char*> argv = Argv(args);
  std::string error;
  EXPECT_FALSE(flags.TryParse(2, argv.data(), &error));
  EXPECT_NE(error.find("unknown flag: --bogus"), std::string::npos) << error;
}

TEST(Flags, RejectsPositionalArgument) {
  Flags flags = BenchLikeFlags();
  std::vector<std::string> args = {"bin", "census"};
  std::vector<char*> argv = Argv(args);
  std::string error;
  EXPECT_FALSE(flags.TryParse(2, argv.data(), &error));
  EXPECT_NE(error.find("unexpected argument"), std::string::npos) << error;
}

TEST(Flags, RejectsMissingValue) {
  Flags flags = BenchLikeFlags();
  std::vector<std::string> args = {"bin", "--points"};
  std::vector<char*> argv = Argv(args);
  std::string error;
  EXPECT_FALSE(flags.TryParse(2, argv.data(), &error));
  EXPECT_NE(error.find("requires a value"), std::string::npos) << error;
}

TEST(Flags, RejectsMalformedValues) {
  // Trailing junk, wholly non-numeric, and empty values must all fail the
  // parse rather than silently becoming 0 (the pre-harness behavior).
  for (const char* bad : {"--points=12x", "--points=abc", "--points=",
                          "--scale=1.5.2", "--scale=fast", "--scale=",
                          "--csv=yes"}) {
    Flags flags = BenchLikeFlags();
    std::vector<std::string> args = {"bin", bad};
    std::vector<char*> argv = Argv(args);
    std::string error;
    EXPECT_FALSE(flags.TryParse(2, argv.data(), &error)) << bad;
    EXPECT_NE(error.find("malformed value"), std::string::npos) << error;
  }
}

TEST(FlagsDeathTest, ParseExitsOnUnknownFlag) {
  Flags flags = BenchLikeFlags();
  std::vector<std::string> args = {"bin", "--bogus=1"};
  std::vector<char*> argv = Argv(args);
  EXPECT_EXIT(flags.Parse(2, argv.data()), ::testing::ExitedWithCode(2),
              "unknown flag: --bogus");
}

TEST(FlagsDeathTest, ParseExitsOnMalformedValue) {
  Flags flags = BenchLikeFlags();
  std::vector<std::string> args = {"bin", "--points=12x"};
  std::vector<char*> argv = Argv(args);
  EXPECT_EXIT(flags.Parse(2, argv.data()), ::testing::ExitedWithCode(2),
              "malformed value for --points");
}

TEST(FlagsDeathTest, HelpExitsCleanlyWithUsage) {
  Flags flags = BenchLikeFlags();
  std::vector<std::string> args = {"bin", "--help"};
  std::vector<char*> argv = Argv(args);
  EXPECT_EXIT(flags.Parse(2, argv.data()), ::testing::ExitedWithCode(0),
              "usage: bin");
}

TEST(FlagsDeathTest, DuplicateRegistrationIsFatal) {
  Flags flags;
  flags.AddInt("points", 1, "first");
  EXPECT_DEATH(flags.AddInt("points", 2, "second"),
               "duplicate flag registration");
  EXPECT_DEATH(flags.AddDouble("points", 2.0, "different type"),
               "duplicate flag registration");
}

// --- WorkStealingPool ------------------------------------------------------

TEST(WorkStealingPool, EveryTaskRunsExactlyOnce) {
  for (int workers : {0, 1, 3}) {
    WorkStealingPool pool(workers);
    EXPECT_EQ(pool.num_workers(), workers);
    constexpr uint64_t kTasks = 500;
    std::vector<std::atomic<uint32_t>> runs(kTasks);
    pool.Run(kTasks, [&](uint64_t t) {
      runs[t].fetch_add(1, std::memory_order_relaxed);
    });
    for (uint64_t t = 0; t < kTasks; ++t) {
      EXPECT_EQ(runs[t].load(), 1u) << "task " << t << ", " << workers
                                    << " workers";
    }
  }
}

TEST(WorkStealingPool, ZeroTasksAndZeroWorkersAreNoOps) {
  WorkStealingPool pool(2);
  pool.Run(0, [](uint64_t) { FAIL() << "no task should run"; });

  // 0 workers: everything runs inline on the caller, in index order (the
  // "width 1 means no spawn" convention).
  WorkStealingPool inline_pool(0);
  std::vector<uint64_t> order;
  inline_pool.Run(5, [&](uint64_t t) { order.push_back(t); });
  EXPECT_EQ(order, (std::vector<uint64_t>{0, 1, 2, 3, 4}));
}

TEST(WorkStealingPool, TaskEffectsVisibleAfterRun) {
  // Run() is a synchronization point: worker-side writes must be visible
  // to the caller without extra fences (the executor's per-task stats
  // slots depend on it). TSan validates the happens-before claim.
  WorkStealingPool pool(3);
  std::vector<uint64_t> slots(256, 0);
  for (int round = 1; round <= 4; ++round) {
    pool.Run(slots.size(), [&](uint64_t t) { slots[t] = t + round; });
    for (uint64_t t = 0; t < slots.size(); ++t) {
      ASSERT_EQ(slots[t], t + round);
    }
  }
}

TEST(WorkStealingPool, ConcurrentSubmittersShareOneWorkerSet) {
  // Several threads Run() on the same pool at once — the JoinService
  // shared-pool configuration. Every submitter's tasks must all run
  // exactly once and each Run must only return after its own tasks
  // finished (asserted via the per-submitter sum).
  WorkStealingPool pool(2);
  constexpr int kSubmitters = 4;
  constexpr uint64_t kTasks = 200;
  struct Report {
    uint64_t sum = 0;
    bool ok = false;
  };
  std::vector<Report> reports(kSubmitters);
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (int round = 0; round < 5; ++round) {
        std::vector<std::atomic<uint64_t>> got(kTasks);
        pool.Run(kTasks, [&](uint64_t t) {
          got[t].fetch_add(t, std::memory_order_relaxed);
        });
        uint64_t sum = 0;
        for (auto& g : got) sum += g.load(std::memory_order_relaxed);
        reports[s].sum += sum;
      }
      reports[s].ok =
          reports[s].sum == 5 * (kTasks * (kTasks - 1) / 2);
    });
  }
  for (auto& t : submitters) t.join();
  for (const Report& r : reports) {
    EXPECT_TRUE(r.ok) << "sum=" << r.sum;
  }
}

TEST(WorkStealingPool, SkewedTaskCostsStillComplete) {
  // One task is far heavier than the rest (the hot-shard shape): the
  // light tasks must not wait behind it, and everything still finishes.
  WorkStealingPool pool(3);
  std::atomic<uint64_t> done{0};
  pool.Run(64, [&](uint64_t t) {
    volatile uint64_t sink = 0;
    const uint64_t spin = t == 0 ? 2'000'000 : 1'000;
    for (uint64_t i = 0; i < spin; ++i) sink += i;
    done.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(done.load(), 64u);
}

}  // namespace
}  // namespace actjoin::util
