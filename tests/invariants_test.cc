// Failure-injection tests: the always-on ACT_CHECK invariants must abort on
// contract violations (overlapping trie cells, unsorted bulk loads,
// malformed polygons, out-of-range ids), and the batch probe must be
// bit-identical to the scalar probe.

//
// Seeding convention (full rationale in util_test.cc): random data comes
// only from util::Rng with explicit literal seeds or from the workload
// factories, whose default seeds are fixed compile-time constants -- never
// time- or address-derived -- so every ctest run is bit-reproducible.

#include <gtest/gtest.h>

#include <vector>

#include "act/act.h"
#include "act/pipeline.h"
#include "act/super_covering.h"
#include "baselines/btree.h"
#include "geo/grid.h"
#include "util/flags.h"
#include "util/perf_counters.h"
#include "util/random.h"
#include "workloads/datasets.h"

namespace actjoin {
namespace {

using actjoin::util::Rng;
using geo::CellId;
using geo::Grid;

act::RefList OneRef(uint32_t pid, bool interior) {
  act::RefList l;
  l.push_back({pid, interior});
  return l;
}

using InvariantsDeathTest = ::testing::Test;

TEST(InvariantsDeathTest, TrieRejectsOverlappingCells) {
  // Building a trie over a hand-made *non-disjoint* covering must abort:
  // disjointness is what licenses the single-result probe (paper Sec. 3.1).
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Grid grid;
  CellId big = grid.CellAt({40.7, -74.0}, 8);
  CellId small = grid.CellAt({40.7, -74.0}, 12);
  act::EncodedCovering enc;
  enc.cells.emplace_back(std::min(big, small), act::MakeOneRef({0, true}));
  enc.cells.emplace_back(std::max(big, small), act::MakeOneRef({1, true}));
  ASSERT_DEATH(
      { act::AdaptiveCellTrie trie(enc, {.bits_per_level = 8}); },
      "conflict|disjoint");
}

TEST(InvariantsDeathTest, BTreeRejectsUnsortedBulkLoad) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  baselines::BTree tree;
  std::vector<std::pair<uint64_t, uint64_t>> pairs{{5, 0}, {3, 0}};
  ASSERT_DEATH(tree.BulkLoad(pairs), "sorted");
}

TEST(InvariantsDeathTest, PolygonRejectsDegenerateRing) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ASSERT_DEATH(geom::Polygon({{0, 0}, {1, 1}}), "at least 3");
}

TEST(InvariantsDeathTest, PolygonRefRejectsOversizedId) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  act::PolygonRef ref{act::kMaxPolygonId + 1, false};
  ASSERT_DEATH(ref.Encode(), "polygon_id");
}

TEST(InvariantsDeathTest, CellIdParentBelowLevelRejected) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Grid grid;
  CellId c = grid.CellAt({40.7, -74.0}, 5);
  ASSERT_DEATH(c.parent(9), "level");
}

TEST(BatchProbe, MatchesScalarProbeExactly) {
  Grid grid;
  Rng rng(90);
  act::SuperCoveringBuilder b;
  for (int k = 0; k < 800; ++k) {
    geo::LatLng p{rng.Uniform(40.4, 41.0), rng.Uniform(-74.3, -73.7)};
    b.Insert(grid.CellAt(p, 6 + static_cast<int>(rng.UniformInt(20))),
             OneRef(static_cast<uint32_t>(k % 13), k % 2 == 0));
  }
  act::SuperCovering sc = b.Build();
  act::EncodedCovering enc = act::Encode(sc);

  std::vector<uint64_t> queries;
  for (int s = 0; s < 10000; ++s) {
    geo::LatLng p{rng.Uniform(40.3, 41.1), rng.Uniform(-74.4, -73.6)};
    queries.push_back(grid.CellAt(p).id());
  }

  for (int bits : {2, 4, 8}) {
    act::AdaptiveCellTrie trie(enc, {.bits_per_level = bits});
    std::vector<act::TaggedEntry> batched(queries.size());
    trie.ProbeBatch(queries.data(), queries.size(), batched.data());
    for (size_t k = 0; k < queries.size(); ++k) {
      ASSERT_EQ(batched[k], trie.Probe(queries[k]))
          << "bits " << bits << " query " << k;
    }
  }
}

TEST(BatchProbe, HandlesPartialGroups) {
  Grid grid;
  act::SuperCoveringBuilder b;
  b.Insert(grid.CellAt({40.7, -74.0}, 10), OneRef(1, true));
  act::SuperCovering sc = b.Build();
  act::EncodedCovering enc = act::Encode(sc);
  act::AdaptiveCellTrie trie(enc, {.bits_per_level = 8});

  // n smaller than, equal to, and not a multiple of the group size.
  for (uint64_t n : {1, 3, 8, 9, 17}) {
    std::vector<uint64_t> queries(n, grid.CellAt({40.7, -74.0}).id());
    std::vector<act::TaggedEntry> out(n, ~uint64_t{0});
    trie.ProbeBatch(queries.data(), n, out.data());
    for (uint64_t k = 0; k < n; ++k) {
      ASSERT_EQ(out[k], trie.Probe(queries[k]));
    }
  }
  // Empty batch is a no-op.
  trie.ProbeBatch(nullptr, 0, nullptr);
}

TEST(PerfCounters, StartStopProducesCycles) {
  util::PerfCounterGroup group;
  group.Start();
  volatile uint64_t sink = 0;
  for (int k = 0; k < 100000; ++k) sink = sink + k;
  util::PerfSample sample = group.Stop();
  // Cycles are always available (hardware event or TSC fallback) and the
  // busy loop above must have consumed a visible amount.
  ASSERT_TRUE(sample.cycles.valid);
  EXPECT_GT(sample.cycles.value, 10000u);
}

TEST(Flags, ParseFormsAndDefaults) {
  util::Flags flags;
  flags.AddDouble("scale", 0.5, "s");
  flags.AddInt("points", 100, "p");
  flags.AddBool("full", false, "f");
  flags.AddString("name", "x", "n");
  const char* argv[] = {"bin", "--scale=2.5", "--points", "42", "--full",
                        "--name=abc"};
  flags.Parse(6, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(flags.GetDouble("scale"), 2.5);
  EXPECT_EQ(flags.GetInt("points"), 42);
  EXPECT_TRUE(flags.GetBool("full"));
  EXPECT_EQ(flags.GetString("name"), "abc");
}

TEST(Flags, DefaultsSurviveNoArgs) {
  util::Flags flags;
  flags.AddInt("points", 123, "p");
  const char* argv[] = {"bin"};
  flags.Parse(1, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("points"), 123);
}

}  // namespace
}  // namespace actjoin
