// Tests for the persistence layer (src/store/): snapshot round trips that
// keep joins byte-identical, the manifest's temp+fsync+rename atomicity
// under simulated crashes and corruption (truncations at every offset,
// flipped bits per CRC section), generation fallback, garbage collection,
// the background checkpointer, and the subsystem's acceptance contract —
// a warm restart from the store serves every dataset over the wire with
// results byte-identical to the pre-restart in-process service, for both
// join modes. Suites are named Store* so the TSan CI job's
// ^(Service|Net|Store) filter runs the concurrent ones under
// ThreadSanitizer.
//
// Seeding convention (full rationale in util_test.cc): random data comes
// only from the workload factories with explicit literal seeds.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "act/join.h"
#include "act/serialization.h"
#include "geo/grid.h"
#include "net/join_client.h"
#include "net/join_server.h"
#include "service/join_service.h"
#include "service/service_catalog.h"
#include "service/sharded_index.h"
#include "store/checkpointer.h"
#include "store/snapshot_store.h"
#include "workloads/datasets.h"

namespace actjoin::store {
namespace {

using act::JoinMode;
using act::LoadError;
using geo::Grid;
using service::JoinService;
using service::QueryBatch;
using service::ServiceCatalog;
using service::ServiceOptions;
using service::ShardedIndex;
using service::ShardingOptions;

/// Fresh, empty store directory per test (removes leftovers from a
/// previous run of the same test binary).
std::string FreshDir(const char* name) {
  std::string dir = std::string(::testing::TempDir()) + "/store_" + name;
  std::string cmd = "rm -rf '" + dir + "'";
  [[maybe_unused]] int rc = std::system(cmd.c_str());
  return dir;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  EXPECT_TRUE(in.good()) << path;
  auto size = static_cast<size_t>(in.tellg());
  in.seekg(0);
  std::string bytes(size, '\0');
  in.read(bytes.data(), static_cast<std::streamsize>(size));
  return bytes;
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

bool FileExists(const std::string& path) {
  std::ifstream in(path);
  return in.good();
}

std::shared_ptr<const ShardedIndex> BuildIndex(
    const std::vector<geom::Polygon>& polygons, const Grid& grid,
    int num_shards) {
  act::BuildOptions bopts;
  bopts.threads = 1;
  return std::make_shared<const ShardedIndex>(ShardedIndex::Build(
      polygons, grid, {.num_shards = num_shards, .build = bopts}));
}

/// Everything in JoinStats is deterministic for a fixed input and index
/// except the wall-clock `seconds`.
void ExpectStatsEqual(const act::JoinStats& got, const act::JoinStats& want) {
  EXPECT_EQ(got.num_points, want.num_points);
  EXPECT_EQ(got.matched_points, want.matched_points);
  EXPECT_EQ(got.result_pairs, want.result_pairs);
  EXPECT_EQ(got.true_hit_refs, want.true_hit_refs);
  EXPECT_EQ(got.candidate_refs, want.candidate_refs);
  EXPECT_EQ(got.pip_tests, want.pip_tests);
  EXPECT_EQ(got.pip_hits, want.pip_hits);
  EXPECT_EQ(got.sth_points, want.sth_points);
  EXPECT_EQ(got.counts, want.counts);
}

// --- Round trips -----------------------------------------------------------

TEST(StoreSnapshot, PutLoadRoundTripIsByteIdenticalBothModes) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  auto index = BuildIndex(ds.polygons, grid, 4);
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 3000, grid, 71);

  SnapshotStore store;
  std::string error;
  ASSERT_TRUE(store.Open({.dir = FreshDir("roundtrip")}, &error)) << error;
  uint64_t generation = 0;
  ASSERT_TRUE(store.Put("zones", *index, &generation, &error)) << error;
  EXPECT_EQ(generation, 1u);

  LoadReport report;
  std::shared_ptr<const ShardedIndex> loaded = store.Load("zones", &report);
  ASSERT_NE(loaded, nullptr) << report.detail;
  EXPECT_EQ(report.error, LoadError::kNone);
  EXPECT_EQ(report.generation, 1u);
  EXPECT_FALSE(report.fell_back);

  EXPECT_EQ(loaded->num_shards(), index->num_shards());
  EXPECT_EQ(loaded->num_polygons(), index->num_polygons());
  for (JoinMode mode : {JoinMode::kExact, JoinMode::kApproximate}) {
    act::JoinStats want = index->Join(pts.AsJoinInput(), {mode, 1});
    act::JoinStats got = loaded->Join(pts.AsJoinInput(), {mode, 1});
    ExpectStatsEqual(got, want);
    EXPECT_GT(got.result_pairs, 0u);
    EXPECT_EQ(loaded->JoinPairs(pts.AsJoinInput(), mode),
              index->JoinPairs(pts.AsJoinInput(), mode));
  }
}

TEST(StoreSnapshot, MultipleDatasetsAndGenerations) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.04);
  const size_t half = ds.polygons.size() / 2;
  std::vector<geom::Polygon> first(ds.polygons.begin(),
                                   ds.polygons.begin() + half);
  auto index_a = BuildIndex(first, grid, 2);
  auto index_b = BuildIndex(ds.polygons, grid, 3);

  SnapshotStore store;
  std::string error;
  ASSERT_TRUE(store.Open({.dir = FreshDir("multi")}, &error)) << error;
  uint64_t gen = 0;
  ASSERT_TRUE(store.Put("alpha", *index_a, &gen, &error)) << error;
  EXPECT_EQ(gen, 1u);
  ASSERT_TRUE(store.Put("beta", *index_b, &gen, &error)) << error;
  EXPECT_EQ(gen, 2u);  // one monotonic counter across datasets
  ASSERT_TRUE(store.Put("alpha", *index_b, &gen, &error)) << error;
  EXPECT_EQ(gen, 3u);

  // Manifest order is first-Put order; generations are current.
  std::vector<DatasetRecord> records = store.Datasets();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], (DatasetRecord{"alpha", 3, 3, {}}));
  EXPECT_EQ(records[1], (DatasetRecord{"beta", 2, 2, {}}));

  // alpha serves its *new* snapshot (the full polygon set).
  std::shared_ptr<const ShardedIndex> alpha = store.Load("alpha");
  ASSERT_NE(alpha, nullptr);
  EXPECT_EQ(alpha->num_polygons(), ds.polygons.size());

  // Unknown dataset: typed missing, no crash.
  LoadReport report;
  EXPECT_EQ(store.Load("gamma", &report), nullptr);
  EXPECT_EQ(report.error, LoadError::kMissing);
}

TEST(StoreSnapshot, RejectsInvalidDatasetNames) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.03);
  auto index = BuildIndex(ds.polygons, grid, 1);
  SnapshotStore store;
  std::string error;
  ASSERT_TRUE(store.Open({.dir = FreshDir("names")}, &error)) << error;
  for (const char* bad : {"", "UPPER", "sp ace", "dot.dot", "a/b",
                          "0123456789012345678901234567890123456789"
                          "0123456789012345678901234567"}) {
    EXPECT_FALSE(store.Put(bad, *index, nullptr, &error)) << bad;
  }
  EXPECT_TRUE(store.Put("ok-name_2", *index, nullptr, &error)) << error;
}

TEST(StoreSnapshot, ReopenServesWhatWasPut) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.04);
  auto index = BuildIndex(ds.polygons, grid, 2);
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 1500, grid, 72);
  act::JoinStats want = index->Join(pts.AsJoinInput(), {JoinMode::kExact, 1});

  std::string dir = FreshDir("reopen");
  {
    SnapshotStore store;
    std::string error;
    ASSERT_TRUE(store.Open({.dir = dir}, &error)) << error;
    ASSERT_TRUE(store.Put("zones", *index, nullptr, &error)) << error;
  }  // destroyed: everything must come back from disk

  SnapshotStore reopened;
  std::string error;
  ASSERT_TRUE(reopened.Open({.dir = dir}, &error)) << error;
  ASSERT_EQ(reopened.Datasets().size(), 1u);
  std::shared_ptr<const ShardedIndex> loaded = reopened.Load("zones");
  ASSERT_NE(loaded, nullptr);
  ExpectStatsEqual(loaded->Join(pts.AsJoinInput(), {JoinMode::kExact, 1}),
                   want);
  // The next generation continues, never reuses.
  uint64_t gen = 0;
  ASSERT_TRUE(reopened.Put("zones", *index, &gen, &error)) << error;
  EXPECT_EQ(gen, 2u);
}

// --- Crash safety ----------------------------------------------------------

TEST(StoreCrash, OrphanSnapshotFromCrashBeforeManifestCommitIsInvisible) {
  // Simulated crash between snapshot write and manifest rename: a
  // generation-5 file exists, the manifest still says generation 1. The
  // orphan must be invisible to Load, survive nothing past GC, and its
  // generation number must be safely reissued by the next Put.
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.04);
  const size_t half = ds.polygons.size() / 2;
  std::vector<geom::Polygon> first(ds.polygons.begin(),
                                   ds.polygons.begin() + half);
  auto committed = BuildIndex(first, grid, 2);

  std::string dir = FreshDir("orphan");
  SnapshotStore store;
  std::string error;
  ASSERT_TRUE(store.Open({.dir = dir}, &error)) << error;
  ASSERT_TRUE(store.Put("zones", *committed, nullptr, &error)) << error;

  // The "crash": a snapshot file for a generation the manifest never
  // committed (contents arbitrary but valid-shaped — copy of gen 1).
  WriteFile(store.SnapshotPath("zones", 5),
            ReadFile(store.SnapshotPath("zones", 1)));

  // Invisible to Load (fresh open, like a restart).
  SnapshotStore reopened;
  ASSERT_TRUE(reopened.Open({.dir = dir}, &error)) << error;
  LoadReport report;
  std::shared_ptr<const ShardedIndex> loaded =
      reopened.Load("zones", &report);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(report.generation, 1u);
  EXPECT_EQ(loaded->num_polygons(), first.size());

  // GC removes the orphan; the committed generation stays.
  EXPECT_GE(reopened.GarbageCollect(&error), 1) << error;
  EXPECT_FALSE(FileExists(reopened.SnapshotPath("zones", 5)));
  EXPECT_TRUE(FileExists(reopened.SnapshotPath("zones", 1)));
}

TEST(StoreCrash, ManifestTruncationAtEveryOffsetRecoversLastGeneration) {
  // Two committed generations, then the primary MANIFEST is truncated at
  // every byte offset. Every truncation must recover through MANIFEST.bak
  // to the *previous* complete catalog (generation 1) and serve it.
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.04);
  const size_t half = ds.polygons.size() / 2;
  std::vector<geom::Polygon> first(ds.polygons.begin(),
                                   ds.polygons.begin() + half);
  auto gen1 = BuildIndex(first, grid, 2);
  auto gen2 = BuildIndex(ds.polygons, grid, 2);

  std::string dir = FreshDir("manifest_trunc");
  {
    SnapshotStore store;
    std::string error;
    ASSERT_TRUE(store.Open({.dir = dir}, &error)) << error;
    ASSERT_TRUE(store.Put("zones", *gen1, nullptr, &error)) << error;
    ASSERT_TRUE(store.Put("zones", *gen2, nullptr, &error)) << error;
  }
  const std::string manifest_path = dir + "/MANIFEST";
  const std::string pristine = ReadFile(manifest_path);
  ASSERT_GT(pristine.size(), 16u);

  for (size_t cut = 0; cut < pristine.size(); ++cut) {
    WriteFile(manifest_path, pristine.substr(0, cut));
    SnapshotStore store;
    std::string error;
    ASSERT_TRUE(store.Open({.dir = dir}, &error)) << "cut=" << cut << error;
    std::vector<DatasetRecord> records = store.Datasets();
    ASSERT_EQ(records.size(), 1u) << "cut=" << cut;
    // The .bak manifest is the generation-1 catalog.
    EXPECT_EQ(records[0], (DatasetRecord{"zones", 1, 1, {}})) << "cut=" << cut;
    std::shared_ptr<const ShardedIndex> loaded = store.Load("zones");
    ASSERT_NE(loaded, nullptr) << "cut=" << cut;
    EXPECT_EQ(loaded->num_polygons(), first.size()) << "cut=" << cut;
  }

  // Restored primary: the full generation-2 catalog is back.
  WriteFile(manifest_path, pristine);
  SnapshotStore store;
  std::string error;
  ASSERT_TRUE(store.Open({.dir = dir}, &error)) << error;
  ASSERT_EQ(store.Datasets().size(), 1u);
  EXPECT_EQ(store.Datasets()[0].generation, 2u);
}

TEST(StoreCrash, BothManifestsGoneRecoversByDirectoryScan) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.04);
  auto index = BuildIndex(ds.polygons, grid, 2);
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 1000, grid, 73);
  act::JoinStats want = index->Join(pts.AsJoinInput(), {JoinMode::kExact, 1});

  std::string dir = FreshDir("scan");
  {
    SnapshotStore store;
    std::string error;
    // "zones" is registered before "alpha": scan recovery must restore
    // that first-Put order (via minimum surviving generation), not
    // alphabetical order — positional catalog ids depend on it.
    ASSERT_TRUE(store.Open({.dir = dir}, &error)) << error;
    ASSERT_TRUE(store.Put("zones", *index, nullptr, &error)) << error;
    ASSERT_TRUE(store.Put("alpha", *index, nullptr, &error)) << error;
    ASSERT_TRUE(store.Put("zones", *index, nullptr, &error)) << error;
  }
  std::remove((dir + "/MANIFEST").c_str());
  std::remove((dir + "/MANIFEST.bak").c_str());

  SnapshotStore store;
  std::string error;
  ASSERT_TRUE(store.Open({.dir = dir}, &error)) << error;
  std::vector<DatasetRecord> records = store.Datasets();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], (DatasetRecord{"zones", 3, 3, {}}));  // newest on disk
  EXPECT_EQ(records[1], (DatasetRecord{"alpha", 2, 2, {}}));
  std::shared_ptr<const ShardedIndex> loaded = store.Load("zones");
  ASSERT_NE(loaded, nullptr);
  ExpectStatsEqual(loaded->Join(pts.AsJoinInput(), {JoinMode::kExact, 1}),
                   want);
  // Generation numbering resumes past everything seen on disk.
  uint64_t gen = 0;
  ASSERT_TRUE(store.Put("zones", *index, &gen, &error)) << error;
  EXPECT_EQ(gen, 4u);
}

TEST(StoreCrash, SnapshotTruncationFallsBackToPreviousGeneration) {
  // Truncate the *current* snapshot file at every (strided) offset: Load
  // must type the failure and fall back to the previous generation, every
  // time — one bad block costs a generation, not the dataset.
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.03);
  const size_t half = ds.polygons.size() / 2;
  std::vector<geom::Polygon> first(ds.polygons.begin(),
                                   ds.polygons.begin() + half);
  auto gen1 = BuildIndex(first, grid, 2);
  auto gen2 = BuildIndex(ds.polygons, grid, 2);

  std::string dir = FreshDir("snap_trunc");
  SnapshotStore store;
  std::string error;
  ASSERT_TRUE(store.Open({.dir = dir, .keep_generations = 2}, &error))
      << error;
  ASSERT_TRUE(store.Put("zones", *gen1, nullptr, &error)) << error;
  ASSERT_TRUE(store.Put("zones", *gen2, nullptr, &error)) << error;

  const std::string current = store.SnapshotPath("zones", 2);
  const std::string pristine = ReadFile(current);
  ASSERT_GT(pristine.size(), 256u);
  size_t checked = 0;
  for (size_t cut = 0; cut < pristine.size();
       cut += (cut < 128 ? 1 : 1571)) {
    WriteFile(current, pristine.substr(0, cut));
    LoadReport report;
    std::shared_ptr<const ShardedIndex> loaded = store.Load("zones", &report);
    ASSERT_NE(loaded, nullptr) << "cut=" << cut << " " << report.detail;
    EXPECT_TRUE(report.fell_back) << "cut=" << cut;
    EXPECT_EQ(report.generation, 1u) << "cut=" << cut;
    EXPECT_NE(report.error, LoadError::kNone) << "cut=" << cut;
    EXPECT_EQ(loaded->num_polygons(), first.size()) << "cut=" << cut;
    ++checked;
  }
  EXPECT_GT(checked, 128u);

  // Restored: the current generation serves again, no fallback.
  WriteFile(current, pristine);
  LoadReport report;
  std::shared_ptr<const ShardedIndex> loaded = store.Load("zones", &report);
  ASSERT_NE(loaded, nullptr);
  EXPECT_FALSE(report.fell_back);
  EXPECT_EQ(report.generation, 2u);
}

TEST(StoreCrash, BitFlipInAnySectionIsTypedChecksumAndFallsBack) {
  // Flip one byte inside each CRC-framed region of the snapshot file
  // (header, shard metas, index bodies — strided across the whole file):
  // the load must fail kBadChecksum / kBadData (never a wrong answer) and
  // fall back to the intact previous generation.
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.03);
  const size_t half = ds.polygons.size() / 2;
  std::vector<geom::Polygon> first(ds.polygons.begin(),
                                   ds.polygons.begin() + half);
  auto gen1 = BuildIndex(first, grid, 2);
  auto gen2 = BuildIndex(ds.polygons, grid, 2);

  std::string dir = FreshDir("bitflip");
  SnapshotStore store;
  std::string error;
  ASSERT_TRUE(store.Open({.dir = dir}, &error)) << error;
  ASSERT_TRUE(store.Put("zones", *gen1, nullptr, &error)) << error;
  ASSERT_TRUE(store.Put("zones", *gen2, nullptr, &error)) << error;

  const std::string current = store.SnapshotPath("zones", 2);
  const std::string pristine = ReadFile(current);
  for (size_t pos = 8; pos < pristine.size();
       pos += std::max<size_t>(1, pristine.size() / 64)) {
    std::string flipped = pristine;
    flipped[pos] = static_cast<char>(flipped[pos] ^ 0x20);
    WriteFile(current, flipped);
    LoadReport report;
    std::shared_ptr<const ShardedIndex> loaded = store.Load("zones", &report);
    ASSERT_NE(loaded, nullptr) << "pos=" << pos;
    EXPECT_TRUE(report.fell_back) << "pos=" << pos;
    EXPECT_EQ(report.generation, 1u) << "pos=" << pos;
    EXPECT_EQ(loaded->num_polygons(), first.size()) << "pos=" << pos;
  }
}

// --- Garbage collection ----------------------------------------------------

TEST(StoreGc, KeepsConfiguredGenerationsRemovesTmpAndStrays) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.03);
  auto index = BuildIndex(ds.polygons, grid, 1);

  std::string dir = FreshDir("gc");
  SnapshotStore store;
  std::string error;
  ASSERT_TRUE(store.Open({.dir = dir, .keep_generations = 2}, &error))
      << error;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(store.Put("zones", *index, nullptr, &error)) << error;
  }
  // Crash leftovers: a stray tmp and a snapshot of a dataset the manifest
  // does not know.
  WriteFile(dir + "/zones-9.snap.tmp", "half-written");
  WriteFile(dir + "/ghost-1.snap", "no manifest entry");

  int removed = store.GarbageCollect(&error);
  EXPECT_EQ(removed, 4) << error;  // gens 1+2, the tmp, the ghost
  EXPECT_FALSE(FileExists(store.SnapshotPath("zones", 1)));
  EXPECT_FALSE(FileExists(store.SnapshotPath("zones", 2)));
  EXPECT_TRUE(FileExists(store.SnapshotPath("zones", 3)));   // fallback
  EXPECT_TRUE(FileExists(store.SnapshotPath("zones", 4)));   // current
  EXPECT_FALSE(FileExists(dir + "/zones-9.snap.tmp"));
  EXPECT_FALSE(FileExists(dir + "/ghost-1.snap"));
  EXPECT_EQ(store.GarbageCollect(&error), 0);  // idempotent
}

// --- Checkpointer ----------------------------------------------------------

TEST(StoreCheckpointer, PersistsEachSwapOnceAndGarbageCollects) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.04);
  const size_t half = ds.polygons.size() / 2;
  std::vector<geom::Polygon> first(ds.polygons.begin(),
                                   ds.polygons.begin() + half);
  auto small = BuildIndex(first, grid, 2);
  auto big = BuildIndex(ds.polygons, grid, 2);

  SnapshotStore store;
  std::string error;
  ASSERT_TRUE(store.Open({.dir = FreshDir("ckpt"), .keep_generations = 1},
                         &error))
      << error;

  ServiceOptions sopts;
  sopts.worker_threads = 1;
  JoinService service(small, sopts);
  ASSERT_TRUE(service.catalog().Add("extra", big).has_value());

  CheckpointerOptions copts;
  copts.autostart = false;  // deterministic, manually driven sweeps
  Checkpointer ckpt(&store, &service, copts);

  // First sweep: both datasets are new to the store.
  EXPECT_EQ(ckpt.CheckpointNow(), 2u);
  EXPECT_EQ(store.Datasets().size(), 2u);
  // Nothing changed: a sweep persists nothing.
  EXPECT_EQ(ckpt.CheckpointNow(), 0u);

  // One dataset swaps; only it is re-persisted, and GC drops its old
  // generation (keep_generations = 1).
  service.SwapIndex(0, big);
  EXPECT_EQ(ckpt.CheckpointNow(), 1u);
  CheckpointerStats stats = ckpt.stats();
  EXPECT_EQ(stats.sweeps, 3u);
  EXPECT_EQ(stats.checkpoints, 3u);
  EXPECT_EQ(stats.failures, 0u);
  EXPECT_GE(stats.files_removed, 1u);

  // What the store now serves for "default" is the swapped-in snapshot.
  std::shared_ptr<const ShardedIndex> loaded = store.Load("default");
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->num_polygons(), ds.polygons.size());
}

TEST(StoreCheckpointer, BackgroundThreadPersistsWithoutBlockingServing) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.04);
  auto index = BuildIndex(ds.polygons, grid, 2);
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 500, grid, 74);

  SnapshotStore store;
  std::string error;
  ASSERT_TRUE(store.Open({.dir = FreshDir("ckpt_bg")}, &error)) << error;

  ServiceOptions sopts;
  sopts.worker_threads = 2;
  JoinService service(index, sopts);
  {
    CheckpointerOptions copts;
    copts.interval_ms = 1;
    Checkpointer ckpt(&store, &service, copts);
    // Serve while the checkpointer writes; swaps race the sweeps (TSan
    // coverage for the pin-and-persist path).
    for (int i = 0; i < 20; ++i) {
      QueryBatch batch{pts.cell_ids(), pts.points(), JoinMode::kExact, 0};
      service::JoinResult result = service.Submit(std::move(batch)).get();
      EXPECT_GT(result.stats.result_pairs, 0u);
      if (i % 5 == 0) service.SwapIndex(index);
    }
  }  // ~Checkpointer: Stop() joins the thread; in-flight Put completes

  std::shared_ptr<const ShardedIndex> loaded = store.Load("default");
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->num_polygons(), ds.polygons.size());
}

// --- Warm restart: the acceptance contract ---------------------------------

TEST(StoreWarmRestart, ServesEveryDatasetByteIdenticalOverTheWire) {
  // The full round-trip property: an in-process service with two datasets
  // answers batches; everything is persisted; the "process" is torn down;
  // a new service warm-starts from the store alone and a JoinServer
  // serves it over loopback. Every dataset must answer JOIN_BATCH with
  // results byte-identical to the pre-restart in-process results, for
  // both join modes — and the catalog must enumerate over the wire.
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  const size_t half = ds.polygons.size() / 2;
  std::vector<geom::Polygon> first(ds.polygons.begin(),
                                   ds.polygons.begin() + half);
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 2000, grid, 75);

  std::string dir = FreshDir("warm");
  std::vector<service::JoinResult> want;  // [dataset][mode] flattened
  {
    auto zones = BuildIndex(first, grid, 2);
    auto census = BuildIndex(ds.polygons, grid, 4);
    ServiceOptions sopts;
    sopts.worker_threads = 2;
    JoinService service(sopts);  // empty catalog: the multi-dataset ctor
    ASSERT_TRUE(service.catalog().Add("zones", zones).has_value());
    ASSERT_TRUE(service.catalog().Add("census", census).has_value());

    for (uint16_t dataset : {0, 1}) {
      for (JoinMode mode : {JoinMode::kExact, JoinMode::kApproximate}) {
        QueryBatch batch{pts.cell_ids(), pts.points(), mode, dataset};
        want.push_back(service.Submit(std::move(batch)).get());
        EXPECT_GT(want.back().stats.result_pairs, 0u);
      }
    }

    SnapshotStore store;
    std::string error;
    ASSERT_TRUE(store.Open({.dir = dir}, &error)) << error;
    Checkpointer ckpt(&store, &service, {.autostart = false});
    EXPECT_EQ(ckpt.CheckpointNow(), 2u);
  }  // the old process is gone; only the store directory survives

  // --- Restart ---
  SnapshotStore store;
  std::string error;
  ASSERT_TRUE(store.Open({.dir = dir}, &error)) << error;
  ServiceOptions sopts;
  sopts.worker_threads = 2;
  JoinService service(sopts);
  std::vector<std::string> failed;
  ASSERT_EQ(WarmStart(store, &service.catalog(), &failed), 2u)
      << (failed.empty() ? "" : failed[0]);
  // Manifest order == Add order: ids reproduce.
  EXPECT_EQ(service.catalog().IdOf("zones"), std::optional<uint16_t>(0));
  EXPECT_EQ(service.catalog().IdOf("census"), std::optional<uint16_t>(1));

  net::JoinServer server(&service, net::ServerOptions{});
  ASSERT_TRUE(server.Start(&error)) << error;
  net::JoinClient client;
  ASSERT_TRUE(client.Connect(server.host(), server.port(), &error)) << error;

  // LIST_DATASETS enumerates the warm-started catalog.
  std::vector<service::DatasetInfo> datasets;
  ASSERT_TRUE(client.ListDatasets(&datasets, &error)) << error;
  ASSERT_EQ(datasets.size(), 2u);
  EXPECT_EQ(datasets[0].name, "zones");
  EXPECT_EQ(datasets[0].num_polygons, first.size());
  EXPECT_EQ(datasets[1].name, "census");
  EXPECT_EQ(datasets[1].num_polygons, ds.polygons.size());

  size_t i = 0;
  for (uint16_t dataset : {0, 1}) {
    for (JoinMode mode : {JoinMode::kExact, JoinMode::kApproximate}) {
      QueryBatch batch{pts.cell_ids(), pts.points(), mode, dataset};
      net::JoinClient::Reply reply = client.Join(batch);
      ASSERT_TRUE(reply.ok) << reply.message;
      ExpectStatsEqual(reply.result.stats, want[i].stats);
      ++i;
    }
  }

  // Unknown dataset over the wire: typed, connection intact.
  QueryBatch bogus{pts.cell_ids(), pts.points(), JoinMode::kExact, 7};
  net::JoinClient::Reply reply = client.Join(bogus);
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.error, net::WireError::kUnknownDataset);
  ASSERT_TRUE(client.Ping(&error)) << error;
  service::ServiceStats stats;
  ASSERT_TRUE(client.GetStats(&stats, &error)) << error;
  EXPECT_EQ(stats.rejected_unknown_dataset, 1u);
  EXPECT_EQ(stats.num_datasets, 2u);
  server.Stop();
}

TEST(StoreWarmRestart, UnloadableDatasetGoesOfflineWithoutShiftingIds) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.03);
  auto index = BuildIndex(ds.polygons, grid, 2);
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 200, grid, 76);

  std::string dir = FreshDir("warm_partial");
  SnapshotStore store;
  std::string error;
  ASSERT_TRUE(store.Open({.dir = dir}, &error)) << error;
  ASSERT_TRUE(store.Put("bad", *index, nullptr, &error)) << error;
  ASSERT_TRUE(store.Put("good", *index, nullptr, &error)) << error;
  // Total loss of "bad": its only snapshot truncated to garbage.
  WriteFile(store.SnapshotPath("bad", 1), "ACTS");

  // "bad" registered first, so its id slot (0) must survive its death —
  // a client that cached id 1 for "good" must keep reaching "good", not
  // have every later dataset shift down onto the wrong data.
  ServiceOptions sopts;
  sopts.worker_threads = 1;
  JoinService service(sopts);
  std::vector<std::string> failed;
  EXPECT_EQ(WarmStart(store, &service.catalog(), &failed), 1u);
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_EQ(failed[0].substr(0, 4), "bad:");
  EXPECT_EQ(service.catalog().IdOf("bad"), std::optional<uint16_t>(0));
  EXPECT_EQ(service.catalog().IdOf("good"), std::optional<uint16_t>(1));
  EXPECT_FALSE(service.catalog().Servable(0));
  EXPECT_TRUE(service.catalog().Servable(1));

  // The offline slot rejects typed; the survivor serves.
  QueryBatch to_bad{pts.cell_ids(), pts.points(), JoinMode::kExact, 0};
  EXPECT_EQ(service.TrySubmit(std::move(to_bad), nullptr),
            service::SubmitStatus::kUnknownDataset);
  QueryBatch to_good{pts.cell_ids(), pts.points(), JoinMode::kExact, 1};
  EXPECT_GT(service.Submit(std::move(to_good)).get().stats.result_pairs, 0u);

  // Publishing a repaired snapshot brings the offline dataset back.
  service.SwapIndex(0, index);
  QueryBatch repaired{pts.cell_ids(), pts.points(), JoinMode::kExact, 0};
  EXPECT_GT(service.Submit(std::move(repaired)).get().stats.result_pairs, 0u);
}

// --- Delta chains: live-mutation persistence -------------------------------

TEST(DeltaStore, PutDeltaLoadReplaysChainByteIdenticalBothModes) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.04);
  const size_t half = ds.polygons.size() / 2;
  std::vector<geom::Polygon> base_polys(ds.polygons.begin(),
                                        ds.polygons.begin() + half);
  std::vector<geom::Polygon> add_polys(ds.polygons.begin() + half,
                                       ds.polygons.end());
  auto base = BuildIndex(base_polys, grid, 2);
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 2000, grid, 81);

  SnapshotStore store;
  std::string error;
  ASSERT_TRUE(store.Open({.dir = FreshDir("delta_chain")}, &error)) << error;

  // A delta with no base full snapshot is unreplayable: refused.
  service::MutationRecord add_rec;
  add_rec.kind = service::MutationRecord::Kind::kAdd;
  add_rec.added = add_polys;
  EXPECT_FALSE(store.PutDelta("zones", {add_rec}, nullptr, &error));

  ASSERT_TRUE(store.Put("zones", *base, nullptr, &error)) << error;
  uint64_t gen = 0;
  ASSERT_TRUE(store.PutDelta("zones", {add_rec}, &gen, &error)) << error;
  EXPECT_EQ(gen, 2u);
  service::MutationRecord remove_rec;
  remove_rec.kind = service::MutationRecord::Kind::kRemove;
  remove_rec.removed = {0, 3, 7};
  ASSERT_TRUE(store.PutDelta("zones", {remove_rec}, &gen, &error)) << error;
  EXPECT_EQ(gen, 3u);

  // The manifest records the chain: base full + ascending deltas.
  std::vector<DatasetRecord> records = store.Datasets();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0],
            (DatasetRecord{"zones", 3, 1, {2, 3}}));

  // The replayed chain is the live ApplyDelta result, byte for byte.
  service::ShardedIndex::Delta add_delta;
  add_delta.add = add_polys;
  auto applied = service::ShardedIndex::ApplyDelta(*base, add_delta).index;
  service::ShardedIndex::Delta remove_delta;
  remove_delta.remove = {0, 3, 7};
  auto want = service::ShardedIndex::ApplyDelta(*applied, remove_delta).index;

  LoadReport report;
  std::shared_ptr<const ShardedIndex> loaded = store.Load("zones", &report);
  ASSERT_NE(loaded, nullptr) << report.detail;
  EXPECT_EQ(report.error, LoadError::kNone);
  EXPECT_EQ(report.generation, 3u);
  EXPECT_EQ(report.deltas_applied, 2u);
  EXPECT_FALSE(report.fell_back);
  EXPECT_FALSE(report.dropped);
  EXPECT_EQ(loaded->num_polygons(), want->num_polygons());
  for (JoinMode mode : {JoinMode::kExact, JoinMode::kApproximate}) {
    ExpectStatsEqual(loaded->Join(pts.AsJoinInput(), {mode, 1}),
                     want->Join(pts.AsJoinInput(), {mode, 1}));
    EXPECT_EQ(loaded->JoinPairs(pts.AsJoinInput(), mode),
              want->JoinPairs(pts.AsJoinInput(), mode));
  }

  // A full Put compacts: the chain resets and GC removes the deltas.
  ASSERT_TRUE(store.Put("zones", *want, &gen, &error)) << error;
  EXPECT_EQ(gen, 4u);
  records = store.Datasets();
  EXPECT_EQ(records[0], (DatasetRecord{"zones", 4, 4, {}}));
  EXPECT_GE(store.GarbageCollect(&error), 2) << error;
  EXPECT_FALSE(FileExists(store.DeltaPath("zones", 2)));
  EXPECT_FALSE(FileExists(store.DeltaPath("zones", 3)));
}

TEST(DeltaStore, CorruptMiddleDeltaFallsBackTypedToLastFullGeneration) {
  // One bad block in the middle of the chain must cost the *deltas*, not
  // the dataset: Load abandons the chain typed (kBadChecksum) and serves
  // the base full generation alone.
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.04);
  const size_t third = ds.polygons.size() / 3;
  std::vector<geom::Polygon> base_polys(ds.polygons.begin(),
                                        ds.polygons.begin() + third);
  std::vector<geom::Polygon> add1(ds.polygons.begin() + third,
                                  ds.polygons.begin() + 2 * third);
  std::vector<geom::Polygon> add2(ds.polygons.begin() + 2 * third,
                                  ds.polygons.end());
  auto base = BuildIndex(base_polys, grid, 2);
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 1000, grid, 82);
  act::JoinStats base_want =
      base->Join(pts.AsJoinInput(), {JoinMode::kExact, 1});

  SnapshotStore store;
  std::string error;
  ASSERT_TRUE(store.Open({.dir = FreshDir("delta_corrupt")}, &error))
      << error;
  ASSERT_TRUE(store.Put("zones", *base, nullptr, &error)) << error;
  service::MutationRecord rec;
  rec.kind = service::MutationRecord::Kind::kAdd;
  rec.added = add1;
  ASSERT_TRUE(store.PutDelta("zones", {rec}, nullptr, &error)) << error;
  rec.added = add2;
  ASSERT_TRUE(store.PutDelta("zones", {rec}, nullptr, &error)) << error;

  // Flip one payload byte in the *middle* delta (generation 2); the last
  // delta (generation 3) is intact but unreplayable without its
  // predecessor.
  const std::string middle = store.DeltaPath("zones", 2);
  const std::string pristine = ReadFile(middle);
  ASSERT_GT(pristine.size(), 64u);
  std::string flipped = pristine;
  flipped[pristine.size() / 2] =
      static_cast<char>(flipped[pristine.size() / 2] ^ 0x20);
  WriteFile(middle, flipped);

  LoadReport report;
  std::shared_ptr<const ShardedIndex> loaded = store.Load("zones", &report);
  ASSERT_NE(loaded, nullptr) << report.detail;
  EXPECT_EQ(report.error, LoadError::kBadChecksum);
  EXPECT_TRUE(report.fell_back);
  EXPECT_EQ(report.generation, 1u);
  EXPECT_EQ(report.deltas_applied, 0u);
  EXPECT_EQ(loaded->num_polygons(), base_polys.size());
  ExpectStatsEqual(loaded->Join(pts.AsJoinInput(), {JoinMode::kExact, 1}),
                   base_want);

  // A *missing* middle delta is the same story, typed kMissing.
  std::remove(middle.c_str());
  loaded = store.Load("zones", &report);
  ASSERT_NE(loaded, nullptr) << report.detail;
  EXPECT_EQ(report.error, LoadError::kMissing);
  EXPECT_TRUE(report.fell_back);
  EXPECT_EQ(report.generation, 1u);
  EXPECT_EQ(loaded->num_polygons(), base_polys.size());

  // Restored: the full chain replays again.
  WriteFile(middle, pristine);
  loaded = store.Load("zones", &report);
  ASSERT_NE(loaded, nullptr) << report.detail;
  EXPECT_FALSE(report.fell_back);
  EXPECT_EQ(report.deltas_applied, 2u);
  EXPECT_EQ(loaded->num_polygons(), ds.polygons.size());
}

TEST(DeltaStore, CheckpointerWritesDeltasAndCompactsAtChainLimit) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.04);
  const size_t half = ds.polygons.size() / 2;
  std::vector<geom::Polygon> base_polys(ds.polygons.begin(),
                                        ds.polygons.begin() + half);
  auto base = BuildIndex(base_polys, grid, 2);
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 1000, grid, 83);

  SnapshotStore store;
  std::string error;
  ASSERT_TRUE(store.Open({.dir = FreshDir("delta_ckpt")}, &error)) << error;

  ServiceOptions sopts;
  sopts.worker_threads = 1;
  JoinService service(base, sopts);
  CheckpointerOptions copts;
  copts.autostart = false;
  copts.max_delta_chain = 2;
  Checkpointer ckpt(&store, &service, copts);

  // First checkpoint of a dataset is always a full snapshot.
  EXPECT_EQ(ckpt.CheckpointNow(), 1u);
  EXPECT_EQ(ckpt.stats().delta_checkpoints, 0u);

  // A live mutation whose journal span is covered persists as a delta.
  std::vector<geom::Polygon> add1(ds.polygons.begin() + half,
                                  ds.polygons.begin() + half + half / 2);
  ASSERT_EQ(service.AddPolygons(0, add1).status,
            service::MutationStatus::kApplied);
  EXPECT_EQ(ckpt.CheckpointNow(), 1u);
  EXPECT_EQ(ckpt.stats().delta_checkpoints, 1u);
  ASSERT_EQ(service.RemovePolygons(0, {1}).status,
            service::MutationStatus::kApplied);
  EXPECT_EQ(ckpt.CheckpointNow(), 1u);
  EXPECT_EQ(ckpt.stats().delta_checkpoints, 2u);
  std::vector<DatasetRecord> records = store.Datasets();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].base_generation, 1u);
  EXPECT_EQ(records[0].delta_generations.size(), 2u);

  // The chain is at max_delta_chain: the next checkpoint compacts to a
  // fresh full snapshot and resets the chain.
  std::vector<geom::Polygon> add2(ds.polygons.begin() + half + half / 2,
                                  ds.polygons.end());
  ASSERT_EQ(service.AddPolygons(0, add2).status,
            service::MutationStatus::kApplied);
  EXPECT_EQ(ckpt.CheckpointNow(), 1u);
  EXPECT_EQ(ckpt.stats().delta_checkpoints, 2u);  // unchanged: it was full
  records = store.Datasets();
  EXPECT_EQ(records[0].base_generation, records[0].generation);
  EXPECT_TRUE(records[0].delta_generations.empty());

  // What the store serves is what the service serves, at every point.
  LoadReport report;
  std::shared_ptr<const ShardedIndex> loaded =
      store.Load("default", &report);
  ASSERT_NE(loaded, nullptr) << report.detail;
  QueryBatch batch{pts.cell_ids(), pts.points(), JoinMode::kExact, 0};
  service::JoinResult live = service.Submit(std::move(batch)).get();
  ExpectStatsEqual(loaded->Join(pts.AsJoinInput(), {JoinMode::kExact, 1}),
                   live.stats);
}

TEST(DeltaStore, StopQuiescesNeverStartedCheckpointerAndRacingSwaps) {
  // The shutdown race regression: an epoch published concurrently with
  // Stop — or under an autostart=false checkpointer that never ran — must
  // still be durable when Stop returns.
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.04);
  const size_t half = ds.polygons.size() / 2;
  std::vector<geom::Polygon> first(ds.polygons.begin(),
                                   ds.polygons.begin() + half);
  auto small = BuildIndex(first, grid, 2);
  auto big = BuildIndex(ds.polygons, grid, 2);

  {
    // Never started: Stop still owes the quiesce sweeps.
    SnapshotStore store;
    std::string error;
    ASSERT_TRUE(store.Open({.dir = FreshDir("quiesce_cold")}, &error))
        << error;
    ServiceOptions sopts;
    sopts.worker_threads = 1;
    JoinService service(small, sopts);
    Checkpointer ckpt(&store, &service, {.autostart = false});
    service.SwapIndex(big);
    ckpt.Stop();
    std::shared_ptr<const ShardedIndex> loaded = store.Load("default");
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(loaded->num_polygons(), ds.polygons.size());
    ckpt.Stop();  // repeated Stop is a no-op
    EXPECT_GE(ckpt.stats().sweeps, 1u);
  }

  {
    // Swaps racing the background thread and Stop itself: whatever was
    // published before Stop returned must be on disk (TSan coverage for
    // the quiesce loop vs SwapIndex).
    SnapshotStore store;
    std::string error;
    ASSERT_TRUE(store.Open({.dir = FreshDir("quiesce_race")}, &error))
        << error;
    ServiceOptions sopts;
    sopts.worker_threads = 1;
    JoinService service(small, sopts);
    CheckpointerOptions copts;
    copts.interval_ms = 1;
    Checkpointer ckpt(&store, &service, copts);
    std::thread swapper([&] {
      for (int i = 0; i < 10; ++i) {
        service.SwapIndex(i % 2 == 0 ? big : small);
      }
      service.SwapIndex(big);  // the state Stop must make durable
    });
    swapper.join();
    ckpt.Stop();
    std::shared_ptr<const ShardedIndex> loaded = store.Load("default");
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(loaded->num_polygons(), ds.polygons.size());
  }
}

TEST(DeltaStore, WarmRestartOverDeltaChainByteIdenticalOverTheWire) {
  // The live-mutation acceptance contract, end to end: a dataset mutated
  // over the wire, checkpointed as full -> delta -> delta, torn down, and
  // warm-started from the store must serve JOIN_BATCH byte-identical to
  // (a) the pre-restart live service and (b) a fresh full build of the
  // same final polygon set, in both join modes. Then: a corrupt middle
  // delta downgrades the restart — typed — to the last full generation,
  // and a persisted drop keeps rejecting typed after restart.
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  const size_t third = ds.polygons.size() / 3;
  std::vector<geom::Polygon> base_polys(ds.polygons.begin(),
                                        ds.polygons.begin() + third);
  std::vector<geom::Polygon> add1(ds.polygons.begin() + third,
                                  ds.polygons.begin() + 2 * third);
  std::vector<geom::Polygon> add2(ds.polygons.begin() + 2 * third,
                                  ds.polygons.end());
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 2000, grid, 84);

  std::string dir = FreshDir("warm_delta");
  std::vector<service::JoinResult> want;  // [mode] before the restart
  {
    auto base = BuildIndex(base_polys, grid, 2);
    ServiceOptions sopts;
    sopts.worker_threads = 2;
    JoinService service(base, sopts);
    net::JoinServer server(&service, net::ServerOptions{});
    std::string error;
    ASSERT_TRUE(server.Start(&error)) << error;
    net::JoinClient client;
    ASSERT_TRUE(client.Connect(server.host(), server.port(), &error))
        << error;

    SnapshotStore store;
    ASSERT_TRUE(store.Open({.dir = dir}, &error)) << error;
    Checkpointer ckpt(&store, &service, {.autostart = false});
    EXPECT_EQ(ckpt.CheckpointNow(), 1u);  // full (generation 1)

    // Two streamed adds, each checkpointed as one O(churn) delta.
    ASSERT_TRUE(client.AddPolygons(0, add1).ok);
    EXPECT_EQ(ckpt.CheckpointNow(), 1u);
    ASSERT_TRUE(client.AddPolygons(0, add2).ok);
    EXPECT_EQ(ckpt.CheckpointNow(), 1u);
    EXPECT_EQ(ckpt.stats().delta_checkpoints, 2u);
    std::vector<DatasetRecord> records = store.Datasets();
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].delta_generations.size(), 2u);

    for (JoinMode mode : {JoinMode::kExact, JoinMode::kApproximate}) {
      QueryBatch batch{pts.cell_ids(), pts.points(), mode, 0};
      net::JoinClient::Reply reply = client.Join(batch);
      ASSERT_TRUE(reply.ok) << reply.message;
      want.push_back(reply.result);
    }
    server.Stop();
  }  // the process is gone; only the store directory survives

  // --- Restart from full + delta + delta ---
  auto fresh_full = BuildIndex(ds.polygons, grid, 2);
  {
    SnapshotStore store;
    std::string error;
    ASSERT_TRUE(store.Open({.dir = dir}, &error)) << error;
    ServiceOptions sopts;
    sopts.worker_threads = 2;
    JoinService service(sopts);
    std::vector<std::string> failed;
    ASSERT_EQ(WarmStart(store, &service.catalog(), &failed), 1u)
        << (failed.empty() ? "" : failed[0]);
    net::JoinServer server(&service, net::ServerOptions{});
    ASSERT_TRUE(server.Start(&error)) << error;
    net::JoinClient client;
    ASSERT_TRUE(client.Connect(server.host(), server.port(), &error))
        << error;

    size_t i = 0;
    for (JoinMode mode : {JoinMode::kExact, JoinMode::kApproximate}) {
      QueryBatch batch{pts.cell_ids(), pts.points(), mode, 0};
      net::JoinClient::Reply reply = client.Join(batch);
      ASSERT_TRUE(reply.ok) << reply.message;
      // Byte-identical to the pre-restart live service...
      ExpectStatsEqual(reply.result.stats, want[i].stats);
      // ...and to a fresh full rebuild of the final polygon set.
      ExpectStatsEqual(reply.result.stats,
                       fresh_full->Join(pts.AsJoinInput(), {mode, 1}));
      ++i;
    }

    // Drop the dataset live, checkpoint it, and keep the store.
    ASSERT_TRUE(client.DropDataset(0).ok);
    Checkpointer drop_ckpt(&store, &service, {.autostart = false});
    EXPECT_GE(drop_ckpt.CheckpointNow(), 1u);
    net::JoinClient::Reply dead = client.Join(
        QueryBatch{pts.cell_ids(), pts.points(), JoinMode::kExact, 0});
    EXPECT_FALSE(dead.ok);
    EXPECT_EQ(dead.error, net::WireError::kDatasetDropped);
    server.Stop();
  }

  // --- Restart again: the drop survived ---
  {
    SnapshotStore store;
    std::string error;
    ASSERT_TRUE(store.Open({.dir = dir}, &error)) << error;
    LoadReport report;
    std::shared_ptr<const ShardedIndex> loaded =
        store.Load("default", &report);
    ASSERT_NE(loaded, nullptr) << report.detail;
    EXPECT_TRUE(report.dropped);
    EXPECT_EQ(loaded->num_polygons(), 0u);
    ServiceOptions sopts;
    sopts.worker_threads = 1;
    JoinService service(sopts);
    EXPECT_EQ(WarmStart(store, &service.catalog(), nullptr), 1u);
    EXPECT_TRUE(service.catalog().IsDropped(0));
    EXPECT_FALSE(service.catalog().Servable(0));
  }
}

}  // namespace
}  // namespace actjoin::store
