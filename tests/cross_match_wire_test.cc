// Wire-level tests for JOIN_DATASETS / PAIR_RESULT (protocol v5): the
// codec must round-trip and reject every malformed byte pattern typed
// (truncation at every boundary, forged counts, bad mode/flags/reserved),
// and the served crossmatch must be byte-identical over loopback to the
// in-process matcher — in both modes, across pagination boundaries, and
// across concurrent delta mutations on one side. Suites are named
// CrossMatchWire* so the TSan CI job's filter runs the concurrent ones
// under ThreadSanitizer.
//
// Threading discipline: gtest assertions run only on the main thread;
// client threads record observations into plain structs that are joined
// and then asserted.
//
// Seeding convention (full rationale in util_test.cc): random data comes
// only from the workload factories with explicit literal seeds.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "geo/grid.h"
#include "join2/cross_match.h"
#include "join2/dataset_cross_matcher.h"
#include "net/join_client.h"
#include "net/join_server.h"
#include "net/wire.h"
#include "service/join_service.h"
#include "service/sharded_index.h"
#include "util/timer.h"
#include "workloads/polygon_gen.h"

namespace actjoin::net {
namespace {

using geo::Grid;
using join2::CrossMatchMode;
using join2::CrossMatchOutcome;
using join2::CrossMatchStatus;
using join2::DatasetCrossMatcher;
using service::JoinService;
using service::ServiceOptions;
using service::ShardedIndex;

service::ShardingOptions Sharding(int num_shards) {
  service::ShardingOptions opts;
  opts.num_shards = num_shards;
  return opts;
}

std::shared_ptr<const ShardedIndex> BuildShared(
    const std::vector<geom::Polygon>& polygons, const Grid& grid,
    int num_shards) {
  return std::make_shared<const ShardedIndex>(
      ShardedIndex::Build(polygons, grid, Sharding(num_shards)));
}

std::vector<geom::Polygon> Partition(int nx, int ny, uint64_t seed) {
  return wl::JitteredPartition({.mbr = geom::Rect::Of(-74.3, 40.4, -73.6,
                                                      41.0),
                                .nx = nx,
                                .ny = ny,
                                .edge_depth = 2,
                                .seed = seed});
}

PairChunk MakeChunk(uint32_t index, bool last, uint64_t total, size_t n) {
  PairChunk chunk;
  chunk.chunk_index = index;
  chunk.last = last;
  chunk.total_pairs = total;
  for (size_t i = 0; i < n; ++i) {
    chunk.pairs.emplace_back(static_cast<uint32_t>(i),
                             static_cast<uint32_t>(i * 7 + 1));
  }
  if (last) {
    chunk.stats = {.candidate_pairs = 12,
                   .refined_pairs = 9,
                   .pruned_pairs = 33,
                   .max_depth = 5,
                   .epoch_a = 2,
                   .epoch_b = 4,
                   .service_us = 123.5,
                   .queue_wait_us = 7.25};
  }
  return chunk;
}

// --- Codec -----------------------------------------------------------------

TEST(CrossMatchWireCodec, JoinDatasetsRoundTrip) {
  for (uint8_t mode : {0, 1}) {
    for (uint32_t page : {0u, 1u, 8192u, kMaxPairPageSize}) {
      JoinDatasetsRequest req{.dataset_b = 513, .mode = mode,
                              .page_size = page};
      util::ByteWriter w;
      AppendJoinDatasets(req, &w);
      JoinDatasetsRequest got;
      ASSERT_TRUE(DecodeJoinDatasets(w.bytes(), &got));
      EXPECT_EQ(got, req);
    }
  }

  // The frame builder stamps v5, the routed type, and dataset_a.
  std::vector<uint8_t> frame =
      EncodeJoinDatasetsFrame(99, 3, {.dataset_b = 4, .mode = 1});
  FrameHeader header;
  size_t frame_bytes = 0;
  WireError err = WireError::kNone;
  ASSERT_EQ(TryParseFrame(frame, kDefaultMaxFrameBytes, &header,
                          &frame_bytes, &err),
            FrameParse::kFrame);
  EXPECT_EQ(header.version, kWireVersion);
  EXPECT_EQ(header.type, MessageType::kJoinDatasets);
  EXPECT_EQ(header.request_id, 99u);
  EXPECT_EQ(header.dataset_id, 3u);
}

TEST(CrossMatchWireCodec, JoinDatasetsRejectsMalformed) {
  util::ByteWriter w;
  AppendJoinDatasets({.dataset_b = 7, .mode = 1, .page_size = 32}, &w);
  std::vector<uint8_t> good = w.bytes();
  JoinDatasetsRequest out;
  ASSERT_TRUE(DecodeJoinDatasets(good, &out));

  // Truncation at every byte boundary must fail, never crash or misread.
  for (size_t cut = 0; cut < good.size(); ++cut) {
    std::vector<uint8_t> bad(good.begin(), good.begin() + cut);
    EXPECT_FALSE(DecodeJoinDatasets(bad, &out)) << "cut=" << cut;
  }
  // Trailing bytes are as malformed as missing ones.
  std::vector<uint8_t> extra = good;
  extra.push_back(0);
  EXPECT_FALSE(DecodeJoinDatasets(extra, &out));

  // Unknown mode byte (offset 2) rejects.
  std::vector<uint8_t> bad_mode = good;
  bad_mode[2] = 2;
  EXPECT_FALSE(DecodeJoinDatasets(bad_mode, &out));
  bad_mode[2] = 255;
  EXPECT_FALSE(DecodeJoinDatasets(bad_mode, &out));
  // Offset 3 is the v7 flags byte: bit 0 requests a stage trace and is
  // legal; any other bit is an unknown flag and rejects.
  std::vector<uint8_t> flags = good;
  flags[3] = 1;
  ASSERT_TRUE(DecodeJoinDatasets(flags, &out));
  EXPECT_TRUE(out.trace);
  flags[3] = 2;
  EXPECT_FALSE(DecodeJoinDatasets(flags, &out));
  flags[3] = 255;
  EXPECT_FALSE(DecodeJoinDatasets(flags, &out));
}

TEST(CrossMatchWireCodec, PairChunkRoundTrip) {
  // A middle chunk (no stats tail), a populated last chunk, and the empty
  // result (one last-flagged chunk with zero pairs).
  for (const PairChunk& chunk :
       {MakeChunk(3, false, 1000, 17), MakeChunk(7, true, 1000, 5),
        MakeChunk(0, true, 0, 0)}) {
    util::ByteWriter w;
    AppendPairChunk(chunk, &w);
    PairChunk got;
    ASSERT_TRUE(DecodePairChunk(w.bytes(), &got));
    EXPECT_EQ(got, chunk);
  }
}

TEST(CrossMatchWireCodec, PairChunkTraceRoundTrip) {
  // v7: a traced last chunk carries the stage tail; decode restores every
  // stage double and the trace's request id exactly.
  PairChunk chunk = MakeChunk(7, true, 1000, 5);
  chunk.trace.enabled = true;
  chunk.trace.request_id = 555;
  for (int s = 0; s < join2::kNumCrossMatchStages; ++s) {
    chunk.trace.stage_us[static_cast<size_t>(s)] = 10.5 * (s + 1);
  }
  util::ByteWriter w;
  AppendPairChunk(chunk, &w);
  PairChunk got;
  ASSERT_TRUE(DecodePairChunk(w.bytes(), &got));
  EXPECT_EQ(got, chunk);
  EXPECT_TRUE(got.trace.enabled);
  EXPECT_EQ(got.trace.request_id, 555u);

  // The trace rides only the last chunk: a middle chunk's enabled flag is
  // not encoded, so it decodes back disabled.
  PairChunk middle = MakeChunk(2, false, 1000, 5);
  middle.trace.enabled = true;
  util::ByteWriter wm;
  AppendPairChunk(middle, &wm);
  ASSERT_TRUE(DecodePairChunk(wm.bytes(), &got));
  EXPECT_FALSE(got.trace.enabled);

  // Forged traced-without-last (flags bit 1 alone) rejects typed.
  util::ByteWriter wf;
  AppendPairChunk(MakeChunk(2, false, 1000, 5), &wf);
  std::vector<uint8_t> forged = wf.bytes();
  forged[4] |= 2;
  EXPECT_FALSE(DecodePairChunk(forged, &got));
}

TEST(CrossMatchWireCodec, PairChunkRejectsMalformed) {
  for (bool last : {false, true}) {
    util::ByteWriter w;
    AppendPairChunk(MakeChunk(2, last, 64, 6), &w);
    std::vector<uint8_t> good = w.bytes();
    PairChunk out;
    ASSERT_TRUE(DecodePairChunk(good, &out));

    for (size_t cut = 0; cut < good.size(); ++cut) {
      std::vector<uint8_t> bad(good.begin(), good.begin() + cut);
      EXPECT_FALSE(DecodePairChunk(bad, &out))
          << "last=" << last << " cut=" << cut;
    }
    std::vector<uint8_t> extra = good;
    extra.push_back(0);
    EXPECT_FALSE(DecodePairChunk(extra, &out)) << "last=" << last;

    // Forged pair count (u32 at offset 16): larger than the payload
    // carries, and smaller (leaving trailing bytes). Neither may crash,
    // overread, or decode.
    std::vector<uint8_t> forged = good;
    forged[16] = 0xFF;
    forged[17] = 0xFF;
    forged[18] = 0xFF;
    forged[19] = 0xFF;
    EXPECT_FALSE(DecodePairChunk(forged, &out)) << "last=" << last;
    forged = good;
    forged[16] = 5;  // one pair fewer than the bytes present
    EXPECT_FALSE(DecodePairChunk(forged, &out)) << "last=" << last;

    // Unknown flag bits (offset 4) and nonzero reserved (offsets 5-7).
    std::vector<uint8_t> bad_flags = good;
    bad_flags[4] |= 0x80;
    EXPECT_FALSE(DecodePairChunk(bad_flags, &out)) << "last=" << last;
    for (size_t at : {5, 6, 7}) {
      std::vector<uint8_t> bad_reserved = good;
      bad_reserved[at] = 1;
      EXPECT_FALSE(DecodePairChunk(bad_reserved, &out))
          << "last=" << last << " reserved at " << at;
    }
  }
}

// --- Served crossmatch over loopback ---------------------------------------

struct ServerFixture {
  std::vector<geom::Polygon> pa, pb;
  std::unique_ptr<JoinService> service;
  std::unique_ptr<JoinServer> server;
  uint16_t id_a = 0, id_b = 0;

  explicit ServerFixture(int worker_threads = 2) {
    pa = Partition(5, 4, 3131);
    pb = Partition(4, 6, 4242);
    Grid grid;
    ServiceOptions sopts;
    sopts.worker_threads = worker_threads;
    service =
        std::make_unique<JoinService>(BuildShared(pa, grid, 3), sopts);
    id_b = service->catalog().Add("b", BuildShared(pb, grid, 2)).value();
    server = std::make_unique<JoinServer>(service.get(), ServerOptions{});
  }

  bool Start(std::string* error) { return server->Start(error); }
};

TEST(CrossMatchWireServer, LoopbackByteIdenticalToInProcessBothModes) {
  ServerFixture fx;
  std::string error;
  ASSERT_TRUE(fx.Start(&error)) << error;
  DatasetCrossMatcher matcher(fx.service.get());

  JoinClient client;
  ASSERT_TRUE(client.Connect(fx.server->host(), fx.server->port(), &error))
      << error;
  for (uint8_t mode : {0, 1}) {
    CrossMatchOutcome want = matcher.Run(
        {.dataset_a = fx.id_a,
         .dataset_b = fx.id_b,
         .mode = static_cast<CrossMatchMode>(mode)});
    ASSERT_EQ(want.status, CrossMatchStatus::kOk);

    JoinClient::CrossMatchReply reply =
        client.CrossMatch(fx.id_a, {.dataset_b = fx.id_b, .mode = mode});
    ASSERT_TRUE(reply.ok) << reply.message;
    EXPECT_EQ(reply.pairs, want.pairs);
    EXPECT_EQ(reply.stats.candidate_pairs, want.stats.candidate_pairs);
    EXPECT_EQ(reply.stats.refined_pairs, want.stats.refined_pairs);
    EXPECT_EQ(reply.stats.pruned_pairs, want.stats.pruned_pairs);
    EXPECT_EQ(reply.stats.max_depth, want.stats.max_depth);
    EXPECT_EQ(reply.stats.epoch_a, want.epoch_a);
    EXPECT_EQ(reply.stats.epoch_b, want.epoch_b);
    EXPECT_GT(reply.stats.service_us, 0.0);
  }
}

TEST(CrossMatchWireServer, PaginationReassemblesTheSortedStream) {
  ServerFixture fx;
  std::string error;
  ASSERT_TRUE(fx.Start(&error)) << error;
  JoinClient client;
  ASSERT_TRUE(client.Connect(fx.server->host(), fx.server->port(), &error))
      << error;

  JoinClient::CrossMatchReply whole =
      client.CrossMatch(fx.id_a, {.dataset_b = fx.id_b});
  ASSERT_TRUE(whole.ok) << whole.message;
  ASSERT_GT(whole.pairs.size(), 8u) << "fixture too small to paginate";
  EXPECT_EQ(whole.num_chunks, 1u);

  // A tiny page forces many chunks; the reassembled stream is identical.
  JoinClient::CrossMatchReply paged =
      client.CrossMatch(fx.id_a, {.dataset_b = fx.id_b, .page_size = 7});
  ASSERT_TRUE(paged.ok) << paged.message;
  EXPECT_EQ(paged.pairs, whole.pairs);
  EXPECT_EQ(paged.num_chunks, (whole.pairs.size() + 6) / 7);
  // Everything in the stats tail except the wall-clock splits.
  PairChunkStats a = paged.stats, b = whole.stats;
  a.service_us = b.service_us = 0;
  a.queue_wait_us = b.queue_wait_us = 0;
  EXPECT_EQ(a, b);

  // Same connection still serves point joins and pings afterwards.
  ASSERT_TRUE(client.Ping(&error)) << error;
}

TEST(CrossMatchWireServer, TracedCrossMatchStagesTileWallTime) {
  ServerFixture fx;
  std::string error;
  ASSERT_TRUE(fx.Start(&error)) << error;
  JoinClient client;
  ASSERT_TRUE(client.Connect(fx.server->host(), fx.server->port(), &error))
      << error;

  // An untraced request stays v6-shaped: no trace comes back.
  JoinClient::CrossMatchReply plain =
      client.CrossMatch(fx.id_a, {.dataset_b = fx.id_b});
  ASSERT_TRUE(plain.ok) << plain.message;
  EXPECT_FALSE(plain.trace.enabled);

  util::WallTimer wall;
  JoinClient::CrossMatchReply reply =
      client.CrossMatch(fx.id_a, {.dataset_b = fx.id_b, .trace = true});
  const double wall_us = wall.ElapsedSeconds() * 1e6;
  ASSERT_TRUE(reply.ok) << reply.message;
  ASSERT_TRUE(reply.trace.enabled);
  EXPECT_EQ(reply.pairs, plain.pairs);

  // Every stage is a non-negative duration, the pin/descend/refine core
  // and the stream patch all ran, and the whole breakdown tiles within
  // the observed round-trip wall time.
  double sum = 0;
  for (int s = 0; s < join2::kNumCrossMatchStages; ++s) {
    const double us = reply.trace.stage_us[static_cast<size_t>(s)];
    EXPECT_GE(us, 0.0) << "stage " << s;
    sum += us;
  }
  EXPECT_GT(sum, 0.0);
  EXPECT_LE(sum, wall_us);
  EXPECT_DOUBLE_EQ(sum, reply.trace.TotalMicros());
  using join2::CrossMatchStage;
  EXPECT_GT(reply.trace.at(CrossMatchStage::kRefine) +
                reply.trace.at(CrossMatchStage::kDescend) +
                reply.trace.at(CrossMatchStage::kPin),
            0.0);
  EXPECT_GT(reply.trace.at(CrossMatchStage::kStream), 0.0);
}

TEST(CrossMatchWireServer, TypedRejectsNameTheOffendingSide) {
  ServerFixture fx;
  std::string error;
  ASSERT_TRUE(fx.Start(&error)) << error;
  JoinClient client;
  ASSERT_TRUE(client.Connect(fx.server->host(), fx.server->port(), &error))
      << error;

  // Unknown a-side: rejected at the event loop door.
  JoinClient::CrossMatchReply reply =
      client.CrossMatch(77, {.dataset_b = fx.id_b});
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.error, WireError::kUnknownDataset);
  EXPECT_NE(reply.message.find("dataset_a=77"), std::string::npos)
      << reply.message;

  // Unknown b-side: decoded, then rejected with the b-side named.
  reply = client.CrossMatch(fx.id_a, {.dataset_b = 77});
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.error, WireError::kUnknownDataset);
  EXPECT_NE(reply.message.find("dataset_b=77"), std::string::npos)
      << reply.message;

  // Offline b-side (assigned, never published): unknown, not dropped.
  uint16_t offline = fx.service->catalog().AddOffline("offline").value();
  reply = client.CrossMatch(fx.id_a, {.dataset_b = offline});
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.error, WireError::kUnknownDataset);

  // Dropped datasets answer kDatasetDropped from either side.
  ASSERT_EQ(fx.service->DropDataset(fx.id_b).status,
            service::MutationStatus::kApplied);
  reply = client.CrossMatch(fx.id_a, {.dataset_b = fx.id_b});
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.error, WireError::kDatasetDropped);
  EXPECT_NE(reply.message.find("dataset_b="), std::string::npos);
  reply = client.CrossMatch(fx.id_b, {.dataset_b = fx.id_a});
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.error, WireError::kDatasetDropped);
  EXPECT_NE(reply.message.find("dataset_a="), std::string::npos);

  // Every rejection was recoverable: the connection still works.
  ASSERT_TRUE(client.Ping(&error)) << error;
  reply = client.CrossMatch(fx.id_a, {.dataset_b = fx.id_a});
  EXPECT_TRUE(reply.ok) << reply.message;

  // A malformed payload (bad mode byte) is a protocol-level reject.
  reply = client.CrossMatch(fx.id_a, {.dataset_b = fx.id_a, .mode = 9});
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.error, WireError::kMalformedPayload);
  ASSERT_TRUE(client.Ping(&error)) << error;
}

TEST(CrossMatchWireConcurrency, ByteIdenticalAcrossConcurrentDelta) {
  // Crossmatches race with delta mutations on the b-side. During the
  // race every reply must be well-formed (ok, sorted unique — each join
  // pins one consistent epoch pair); after quiescing, the wire result is
  // byte-identical to the in-process matcher in both modes.
  ServerFixture fx(/*worker_threads=*/3);
  std::string error;
  ASSERT_TRUE(fx.Start(&error)) << error;

  struct Observed {
    int failures = 0;
    int malformed = 0;
    int runs = 0;
    std::string first_error;
  };
  std::atomic<bool> stop{false};
  std::vector<Observed> observed(2);
  std::vector<std::thread> clients;
  for (size_t t = 0; t < observed.size(); ++t) {
    clients.emplace_back([&, t] {
      Observed& obs = observed[t];
      JoinClient client;
      std::string err;
      if (!client.Connect(fx.server->host(), fx.server->port(), &err)) {
        obs.failures = 1;
        obs.first_error = err;
        return;
      }
      const uint8_t mode = t % 2;
      while (!stop.load(std::memory_order_relaxed)) {
        JoinClient::CrossMatchReply reply = client.CrossMatch(
            fx.id_a, {.dataset_b = fx.id_b, .mode = mode, .page_size = 16});
        ++obs.runs;
        if (!reply.ok) {
          ++obs.failures;
          if (obs.first_error.empty()) obs.first_error = reply.message;
          continue;
        }
        if (!std::is_sorted(reply.pairs.begin(), reply.pairs.end()) ||
            std::adjacent_find(reply.pairs.begin(), reply.pairs.end()) !=
                reply.pairs.end()) {
          ++obs.malformed;
        }
      }
    });
  }

  // The mutator drives ApplyDelta through the service: adds land on b.
  for (int i = 0; i < 8; ++i) {
    std::vector<geom::Polygon> add = {wl::RandomStarPolygon(
        {-74.0 + 0.04 * i, 40.7}, 0.03, 12, 9000 + static_cast<uint64_t>(i))};
    ASSERT_EQ(fx.service->AddPolygons(fx.id_b, add).status,
              service::MutationStatus::kApplied);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true);
  for (auto& th : clients) th.join();
  for (const Observed& obs : observed) {
    EXPECT_EQ(obs.failures, 0) << obs.first_error;
    EXPECT_EQ(obs.malformed, 0);
    EXPECT_GT(obs.runs, 0);
  }

  // Quiesced: loopback equals in-process, byte for byte, both modes.
  DatasetCrossMatcher matcher(fx.service.get());
  JoinClient client;
  ASSERT_TRUE(client.Connect(fx.server->host(), fx.server->port(), &error))
      << error;
  for (uint8_t mode : {0, 1}) {
    CrossMatchOutcome want = matcher.Run(
        {.dataset_a = fx.id_a,
         .dataset_b = fx.id_b,
         .mode = static_cast<CrossMatchMode>(mode)});
    ASSERT_EQ(want.status, CrossMatchStatus::kOk);
    JoinClient::CrossMatchReply reply =
        client.CrossMatch(fx.id_a, {.dataset_b = fx.id_b, .mode = mode});
    ASSERT_TRUE(reply.ok) << reply.message;
    EXPECT_EQ(reply.pairs, want.pairs);
    EXPECT_EQ(reply.stats.epoch_b, want.epoch_b);
  }
}

}  // namespace
}  // namespace actjoin::net
