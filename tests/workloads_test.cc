// Tests for the synthetic workload generators: dataset presets, point
// generators, determinism, and the statistical properties the experiments
// rely on (clustering, coverage, scale behavior).

//
// Seeding convention (full rationale in util_test.cc): random data comes
// only from util::Rng with explicit literal seeds or from the workload
// factories, whose default seeds are fixed compile-time constants -- never
// time- or address-derived -- so every ctest run is bit-reproducible.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "geo/grid.h"
#include "geometry/pip.h"
#include "util/random.h"
#include "workloads/datasets.h"
#include "workloads/point_gen.h"

namespace actjoin::wl {
namespace {

using geo::Grid;

TEST(Datasets, NycPresetsMatchPaperShape) {
  // Polygon counts and complexity must be ordered like the paper's Table 1:
  // few complex boroughs, medium neighborhoods, many simple census blocks.
  PolygonDataset b = Boroughs(1.0);
  PolygonDataset n = Neighborhoods(1.0);
  PolygonDataset c = Census(0.05);  // scaled; count ordering still holds

  EXPECT_EQ(b.polygons.size(), 5u);
  EXPECT_EQ(n.polygons.size(), 289u);
  EXPECT_GT(c.polygons.size(), n.polygons.size());

  EXPECT_GT(b.AvgVertices(), 300);   // paper: 662
  EXPECT_NEAR(n.AvgVertices(), 29.6, 8);  // paper: 29.6
  EXPECT_LT(c.AvgVertices(), 15);    // paper: 12.5
}

TEST(Datasets, AllNycDatasetsShareTheExtent) {
  // "All three polygon datasets cover approximately the same area."
  auto sets = NycDatasets(0.1);
  for (const auto& ds : sets) {
    EXPECT_EQ(ds.mbr.lo.x, NycMbr().lo.x);
    EXPECT_EQ(ds.mbr.hi.y, NycMbr().hi.y);
  }
}

TEST(Datasets, ScaleControlsPolygonCount) {
  EXPECT_LT(Neighborhoods(0.1).polygons.size(),
            Neighborhoods(1.0).polygons.size());
  EXPECT_LT(Census(0.01).polygons.size(), Census(0.1).polygons.size());
}

TEST(Datasets, TwitterCityPresets) {
  auto cities = TwitterCities(1.0);
  ASSERT_EQ(cities.size(), 4u);
  EXPECT_EQ(cities[0].name, "NYC");
  EXPECT_EQ(cities[1].name, "BOS");
  // Paper polygon counts: NYC 289, BOS 42, LA 160, SF 117.
  EXPECT_EQ(cities[0].polygons.size(), 289u);
  EXPECT_NEAR(cities[1].polygons.size(), 42, 10);
  EXPECT_NEAR(cities[2].polygons.size(), 160, 12);
  EXPECT_NEAR(cities[3].polygons.size(), 117, 12);
  // Different cities, different extents.
  EXPECT_FALSE(cities[0].mbr.Intersects(cities[1].mbr));
}

TEST(PointGen, UniformBoundsAndDeterminism) {
  Grid grid;
  geom::Rect mbr = NycMbr();
  PointSet a = UniformPoints(mbr, 5000, 77, grid);
  PointSet b = UniformPoints(mbr, 5000, 77, grid);
  PointSet c = UniformPoints(mbr, 5000, 78, grid);
  ASSERT_EQ(a.size(), 5000u);
  bool identical = true, differs = false;
  for (uint64_t k = 0; k < a.size(); ++k) {
    ASSERT_TRUE(mbr.Contains(a.points()[k]));
    identical &= a.points()[k] == b.points()[k];
    differs |= !(a.points()[k] == c.points()[k]);
  }
  EXPECT_TRUE(identical);
  EXPECT_TRUE(differs);
}

TEST(PointGen, CellIdsMatchGrid) {
  Grid grid;
  PointSet pts = UniformPoints(NycMbr(), 2000, 79, grid);
  for (uint64_t k = 0; k < pts.size(); ++k) {
    const geom::Point& p = pts.points()[k];
    ASSERT_EQ(pts.cell_ids()[k], grid.CellAt({p.y, p.x}).id());
  }
}

TEST(PointGen, HotspotPointsAreClustered) {
  // The clustered generator must concentrate mass: the densest 10% of a
  // coarse grid should hold far more than 10% of the points (real taxi
  // data: >90% in Manhattan).
  Grid grid;
  geom::Rect mbr = NycMbr();
  PointSet pts = TaxiPoints(mbr, 50'000, grid, 80);

  constexpr int kBuckets = 20;
  std::vector<uint64_t> histogram(kBuckets * kBuckets, 0);
  for (const geom::Point& p : pts.points()) {
    int bx = std::min(kBuckets - 1,
                      static_cast<int>((p.x - mbr.lo.x) / mbr.Width() *
                                       kBuckets));
    int by = std::min(kBuckets - 1,
                      static_cast<int>((p.y - mbr.lo.y) / mbr.Height() *
                                       kBuckets));
    ++histogram[by * kBuckets + bx];
  }
  std::sort(histogram.rbegin(), histogram.rend());
  uint64_t top10pct = 0;
  for (int k = 0; k < kBuckets * kBuckets / 10; ++k) top10pct += histogram[k];
  EXPECT_GT(static_cast<double>(top10pct) / pts.size(), 0.5);
}

TEST(PointGen, UniformIsNotClustered) {
  Grid grid;
  geom::Rect mbr = NycMbr();
  PointSet pts = UniformPoints(mbr, 50'000, 81, grid);
  constexpr int kBuckets = 20;
  std::vector<uint64_t> histogram(kBuckets * kBuckets, 0);
  for (const geom::Point& p : pts.points()) {
    int bx = std::min(kBuckets - 1,
                      static_cast<int>((p.x - mbr.lo.x) / mbr.Width() *
                                       kBuckets));
    int by = std::min(kBuckets - 1,
                      static_cast<int>((p.y - mbr.lo.y) / mbr.Height() *
                                       kBuckets));
    ++histogram[by * kBuckets + bx];
  }
  std::sort(histogram.rbegin(), histogram.rend());
  uint64_t top10pct = 0;
  for (int k = 0; k < kBuckets * kBuckets / 10; ++k) top10pct += histogram[k];
  double share = static_cast<double>(top10pct) / pts.size();
  EXPECT_GT(share, 0.09);
  EXPECT_LT(share, 0.15);
}

TEST(PointGen, HotspotPointsStayInMbr) {
  Grid grid;
  geom::Rect mbr = NycMbr();
  PointSet pts = TaxiPoints(mbr, 20'000, grid, 82);
  for (const geom::Point& p : pts.points()) {
    ASSERT_TRUE(mbr.Contains(p));
  }
}

TEST(PointGen, PrefixSlicing) {
  Grid grid;
  PointSet pts = UniformPoints(NycMbr(), 1000, 83, grid);
  act::JoinInput half = pts.Prefix(500);
  EXPECT_EQ(half.size(), 500u);
  EXPECT_EQ(half.cell_ids[0], pts.cell_ids()[0]);
  act::JoinInput over = pts.Prefix(5000);  // clamped
  EXPECT_EQ(over.size(), 1000u);
}

TEST(PointGen, CustomHotspots) {
  Grid grid;
  geom::Rect mbr = geom::Rect::Of(0, 0, 10, 10);
  std::vector<Hotspot> spots = {{{2, 2}, 0.1, 0.1, 1.0}};
  PointSet pts = HotspotPoints(mbr, 5000, 84, grid, spots,
                               /*background_weight=*/0.0);
  // Nearly all points within 5 sigma of the single hotspot.
  uint64_t near = 0;
  for (const geom::Point& p : pts.points()) {
    if (std::abs(p.x - 2) < 0.5 && std::abs(p.y - 2) < 0.5) ++near;
  }
  EXPECT_GT(static_cast<double>(near) / pts.size(), 0.99);
}

TEST(PointGen, TaxiPointsMostlyInsideSomePolygon) {
  // The join experiments assume most clustered points match a polygon.
  Grid grid;
  PolygonDataset ds = Neighborhoods(0.1);
  PointSet pts = TaxiPoints(ds.mbr, 2000, grid, 85);
  uint64_t inside = 0;
  for (const geom::Point& p : pts.points()) {
    for (const auto& poly : ds.polygons) {
      if (geom::ContainsPoint(poly, p)) {
        ++inside;
        break;
      }
    }
  }
  EXPECT_GT(static_cast<double>(inside) / pts.size(), 0.95);
}

}  // namespace
}  // namespace actjoin::wl
