// Dedicated edge-case suite for util::LatencyHistogram, the quantile
// engine under every serving-layer p50/p99 (ServiceStats, the STATS wire
// response, bench output). The serving tests exercise the happy path at
// scale; this suite pins the boundaries: empty and one-sample quantiles,
// corrupt samples (NaN / negative / infinite), merges of disjoint ranges,
// and monotonicity across bucket edges.

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "util/latency_histogram.h"

namespace actjoin::util {
namespace {

constexpr double kBucketWidth = 1.0443;  // 2^(1/16), one bucket of slack

TEST(LatencyHistogramEdge, EmptyHistogramIsAllZeros) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.MeanMicros(), 0.0);
  EXPECT_EQ(h.MaxMicros(), 0.0);
  EXPECT_EQ(h.P50Micros(), 0.0);
  EXPECT_EQ(h.P99Micros(), 0.0);
  EXPECT_EQ(h.QuantileMicros(0.0), 0.0);
  EXPECT_EQ(h.QuantileMicros(1.0), 0.0);
}

TEST(LatencyHistogramEdge, OneSampleAnswersEveryQuantile) {
  LatencyHistogram h;
  h.Record(100.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.MeanMicros(), 100.0);
  EXPECT_EQ(h.MaxMicros(), 100.0);
  // Every quantile of a one-sample histogram is that sample's bucket edge:
  // never below the value, at most one bucket width above.
  for (double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_GE(h.QuantileMicros(q), 100.0) << "q=" << q;
    EXPECT_LE(h.QuantileMicros(q), 100.0 * kBucketWidth) << "q=" << q;
  }
  // Out-of-range q clamps instead of reading out of bounds.
  EXPECT_EQ(h.QuantileMicros(-0.5), h.QuantileMicros(0.0));
  EXPECT_EQ(h.QuantileMicros(1.5), h.QuantileMicros(1.0));
}

TEST(LatencyHistogramEdge, NanAndNegativeSamplesAreSanitized) {
  LatencyHistogram h;
  h.Record(std::numeric_limits<double>::quiet_NaN());
  h.Record(-123.0);
  // Both count as 0 us observations: the count advances (rates derived
  // from it stay honest) but no aggregate is poisoned.
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.MeanMicros(), 0.0);
  EXPECT_EQ(h.MaxMicros(), 0.0);
  EXPECT_FALSE(std::isnan(h.P99Micros()));
  EXPECT_LE(h.P99Micros(), kBucketWidth);  // first bucket's upper edge

  // Mixed with real samples, the sanitized zeros sort below everything.
  h.Record(1000.0);
  h.Record(1000.0);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_GE(h.QuantileMicros(1.0), 1000.0);
  EXPECT_LE(h.QuantileMicros(0.0), kBucketWidth);
}

TEST(LatencyHistogramEdge, InfinitySaturatesToTopBucket) {
  LatencyHistogram h;
  h.Record(std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.count(), 1u);
  EXPECT_TRUE(std::isfinite(h.MeanMicros()));
  EXPECT_TRUE(std::isfinite(h.MaxMicros()));
  EXPECT_TRUE(std::isfinite(h.QuantileMicros(1.0)));
  // It still reads as "huge": beyond the histogram's nominal ~67 s range.
  EXPECT_GE(h.MaxMicros(), 6e7);
}

TEST(LatencyHistogramEdge, MergeOfDisjointRangesKeepsBothTails) {
  LatencyHistogram lo, hi;
  for (int us = 1; us <= 100; ++us) lo.Record(us);
  for (int i = 0; i < 100; ++i) hi.Record(1e6 + i);

  LatencyHistogram merged;
  merged.Merge(lo);
  merged.Merge(hi);
  EXPECT_EQ(merged.count(), 200u);
  // The median straddles the gap: p50 comes from the low range, p99 and
  // max from the high range, and nothing in between is invented.
  EXPECT_LE(merged.P50Micros(), 100.0 * kBucketWidth);
  EXPECT_GE(merged.P99Micros(), 1e6);
  EXPECT_EQ(merged.MaxMicros(), 1e6 + 99);
  EXPECT_NEAR(merged.MeanMicros(), (lo.MeanMicros() + hi.MeanMicros()) / 2,
              1.0);

  // Merging an empty histogram is the identity.
  LatencyHistogram empty;
  double p99_before = merged.P99Micros();
  merged.Merge(empty);
  EXPECT_EQ(merged.count(), 200u);
  EXPECT_EQ(merged.P99Micros(), p99_before);
  // And merging *into* an empty one reproduces the source.
  LatencyHistogram copy;
  copy.Merge(merged);
  EXPECT_EQ(copy.count(), merged.count());
  EXPECT_EQ(copy.P50Micros(), merged.P50Micros());
}

TEST(LatencyHistogramEdge, BucketEdgesAreMonotoneAndNeverUnderReport) {
  // Sweep values multiplicatively across many bucket edges (including the
  // exact powers of two where the bucket index changes): the reported
  // quantile edge must never under-report the sample and must be monotone
  // non-decreasing in the sample value.
  double previous_edge = 0;
  for (double v = 0.5; v < 1e7; v *= 1.31) {
    LatencyHistogram h;
    h.Record(v);
    double edge = h.P50Micros();
    EXPECT_GE(edge * 1.0000001, v) << "v=" << v;           // conservative
    EXPECT_LE(edge, std::max(v, 1.0) * kBucketWidth * 1.0000001)
        << "v=" << v;                                      // tight
    EXPECT_GE(edge, previous_edge) << "v=" << v;           // monotone
    previous_edge = edge;
  }
  // Exact powers of two sit on bucket boundaries; spot-check both sides.
  for (double v : {2.0, 4.0, 1024.0, 65536.0}) {
    LatencyHistogram h;
    h.Record(v);
    EXPECT_GE(h.P50Micros(), v);
    LatencyHistogram h2;
    h2.Record(std::nextafter(v, 0.0));
    EXPECT_GE(h2.P50Micros(), std::nextafter(v, 0.0));
    EXPECT_LE(h2.P50Micros(), h.P50Micros());
  }
}

}  // namespace
}  // namespace actjoin::util
