// Tests for the ACT core data model: polygon refs, tagged entries, the
// lookup table, the super covering builder (Listing 1), and precision
// refinement (Sec. 3.2).

//
// Seeding convention (full rationale in util_test.cc): random data comes
// only from util::Rng with explicit literal seeds or from the workload
// factories, whose default seeds are fixed compile-time constants -- never
// time- or address-derived -- so every ctest run is bit-reproducible.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "act/classifier.h"
#include "act/lookup_table.h"
#include "act/polygon_ref.h"
#include "act/super_covering.h"
#include "act/tagged_entry.h"
#include "cover/coverer.h"
#include "geo/grid.h"
#include "util/random.h"
#include "workloads/polygon_gen.h"

namespace actjoin::act {
namespace {

using actjoin::util::Rng;
using geo::CellId;
using geo::Grid;

TEST(PolygonRefTest, EncodeDecodeRoundTrip) {
  for (uint32_t pid : {0u, 1u, 12345u, kMaxPolygonId}) {
    for (bool interior : {false, true}) {
      PolygonRef r{pid, interior};
      PolygonRef d = PolygonRef::Decode(r.Encode());
      EXPECT_EQ(d.polygon_id, pid);
      EXPECT_EQ(d.interior, interior);
    }
  }
}

TEST(PolygonRefTest, MergeAbsorbsBoundaryIntoInterior) {
  RefList list;
  MergeRef(&list, {7, false});
  MergeRef(&list, {7, true});
  ASSERT_EQ(list.size(), 1u);
  EXPECT_TRUE(list[0].interior);

  RefList list2;
  MergeRef(&list2, {7, true});
  MergeRef(&list2, {7, false});
  ASSERT_EQ(list2.size(), 1u);
  EXPECT_TRUE(list2[0].interior);
}

TEST(PolygonRefTest, MergeKeepsDistinctPolygons) {
  RefList list;
  MergeRef(&list, {1, false});
  MergeRef(&list, {2, true});
  MergeRef(&list, {1, false});
  EXPECT_EQ(list.size(), 2u);
  EXPECT_TRUE(HasCandidate(list));
}

TEST(TaggedEntryTest, Kinds) {
  EXPECT_EQ(KindOf(kSentinelEntry), EntryKind::kPointer);
  EXPECT_FALSE(IsValue(kSentinelEntry));

  TaggedEntry one = MakeOneRef({42, true});
  EXPECT_EQ(KindOf(one), EntryKind::kOneRef);
  EXPECT_TRUE(IsValue(one));
  EXPECT_EQ(FirstRefOf(one).polygon_id, 42u);
  EXPECT_TRUE(FirstRefOf(one).interior);

  TaggedEntry two = MakeTwoRefs({1, false}, {kMaxPolygonId, true});
  EXPECT_EQ(KindOf(two), EntryKind::kTwoRefs);
  EXPECT_EQ(FirstRefOf(two).polygon_id, 1u);
  EXPECT_FALSE(FirstRefOf(two).interior);
  EXPECT_EQ(SecondRefOf(two).polygon_id, kMaxPolygonId);
  EXPECT_TRUE(SecondRefOf(two).interior);

  TaggedEntry off = MakeTableOffset(123456);
  EXPECT_EQ(KindOf(off), EntryKind::kTableOffset);
  EXPECT_EQ(TableOffsetOf(off), 123456u);
}

TEST(TaggedEntryTest, PointerRoundTrip) {
  alignas(8) TaggedEntry node[4] = {};
  TaggedEntry e = MakePointer(node);
  EXPECT_EQ(KindOf(e), EntryKind::kPointer);
  EXPECT_EQ(PointerOf(e), node);
}

TEST(LookupTableTest, EncodesListsSplitByHitKind) {
  LookupTableBuilder builder;
  RefList refs;
  refs.push_back({5, true});
  refs.push_back({3, false});
  refs.push_back({9, true});
  refs.push_back({1, false});
  uint32_t off = builder.AddList(refs);
  LookupTable table = std::move(builder).Build();

  EXPECT_EQ(table.NumTrueHits(off), 2u);
  EXPECT_EQ(table.NumCandidates(off), 2u);
  std::vector<std::pair<uint32_t, bool>> seen;
  table.VisitEntry(off, [&](uint32_t pid, bool true_hit) {
    seen.emplace_back(pid, true_hit);
  });
  // True hits first (sorted), then candidates (sorted).
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen[0], std::make_pair(5u, true));
  EXPECT_EQ(seen[1], std::make_pair(9u, true));
  EXPECT_EQ(seen[2], std::make_pair(1u, false));
  EXPECT_EQ(seen[3], std::make_pair(3u, false));
}

TEST(LookupTableTest, DeduplicatesIdenticalLists) {
  LookupTableBuilder builder;
  RefList a;
  a.push_back({1, true});
  a.push_back({2, false});
  a.push_back({3, false});
  RefList b;  // same set, different order
  b.push_back({3, false});
  b.push_back({1, true});
  b.push_back({2, false});
  uint32_t off_a = builder.AddList(a);
  uint32_t off_b = builder.AddList(b);
  EXPECT_EQ(off_a, off_b);

  RefList c;
  c.push_back({1, true});
  c.push_back({2, false});
  c.push_back({4, false});
  EXPECT_NE(builder.AddList(c), off_a);
}

// ---------------------------------------------------------------------------
// SuperCoveringBuilder: conflict resolution
// ---------------------------------------------------------------------------

RefList OneRef(uint32_t pid, bool interior) {
  RefList l;
  l.push_back({pid, interior});
  return l;
}

TEST(SuperCoveringBuilder, PlainInsertNoConflict) {
  Grid grid;
  SuperCoveringBuilder b;
  CellId c1 = grid.CellAt({40.7, -74.0}, 10);
  CellId c2 = grid.CellAt({10.0, 50.0}, 12);
  b.Insert(c1, OneRef(0, false));
  b.Insert(c2, OneRef(1, true));
  SuperCovering sc = b.Build();
  EXPECT_EQ(sc.size(), 2u);
  EXPECT_TRUE(sc.IsDisjoint());
}

TEST(SuperCoveringBuilder, DuplicateCellMergesRefs) {
  Grid grid;
  SuperCoveringBuilder b;
  CellId c = grid.CellAt({40.7, -74.0}, 10);
  b.Insert(c, OneRef(0, false));
  b.Insert(c, OneRef(1, true));
  SuperCovering sc = b.Build();
  ASSERT_EQ(sc.size(), 1u);
  EXPECT_EQ(sc.refs(0).size(), 2u);
}

TEST(SuperCoveringBuilder, AncestorConflictPreservesPrecision) {
  // Insert a small cell, then its ancestor: Fig. 4 resolution must keep the
  // small cell (with both refs) and split the ancestor into the difference.
  Grid grid;
  SuperCoveringBuilder b;
  CellId small = grid.CellAt({40.7, -74.0}, 12);
  CellId big = small.parent(10);
  b.Insert(small, OneRef(0, true));
  b.Insert(big, OneRef(1, false));
  SuperCovering sc = b.Build();
  // difference (3 cells per level * 2 levels = 6) + small = 7.
  EXPECT_EQ(sc.size(), 7u);
  EXPECT_TRUE(sc.IsDisjoint());

  int64_t idx = sc.FindContaining(small.range_min());
  ASSERT_GE(idx, 0);
  EXPECT_EQ(sc.cell(idx), small);
  // The small cell carries both polygons' refs, with its own interior flag
  // preserved (precision-preserving).
  const RefList& refs = sc.refs(idx);
  ASSERT_EQ(refs.size(), 2u);
  std::map<uint32_t, bool> by_pid;
  for (const auto& r : refs) by_pid[r.polygon_id] = r.interior;
  EXPECT_TRUE(by_pid.at(0));
  EXPECT_FALSE(by_pid.at(1));

  // Difference cells carry only the ancestor's polygon.
  CellId probe = big.child(3);  // some area of big away from small
  if (!probe.contains(small) && probe != small) {
    int64_t d_idx = sc.FindContaining(probe.range_min());
    ASSERT_GE(d_idx, 0);
    const RefList& d_refs = sc.refs(d_idx);
    for (const auto& r : d_refs) EXPECT_EQ(r.polygon_id, 1u);
  }
}

TEST(SuperCoveringBuilder, DescendantConflictReversedOrder) {
  // Insert the ancestor first, then the descendant: same outcome.
  Grid grid;
  SuperCoveringBuilder b;
  CellId small = grid.CellAt({40.7, -74.0}, 12);
  CellId big = small.parent(10);
  b.Insert(big, OneRef(1, false));
  b.Insert(small, OneRef(0, true));
  SuperCovering sc = b.Build();
  EXPECT_EQ(sc.size(), 7u);
  EXPECT_TRUE(sc.IsDisjoint());
  int64_t idx = sc.FindContaining(small.range_min());
  ASSERT_GE(idx, 0);
  EXPECT_EQ(sc.cell(idx), small);
  EXPECT_EQ(sc.refs(idx).size(), 2u);
}

TEST(SuperCoveringBuilder, MultiDescendantConflict) {
  // A big cell inserted over two existing small cells in different
  // children: the generalized resolution the paper's listing implies.
  Grid grid;
  SuperCoveringBuilder b;
  CellId big = grid.CellAt({40.7, -74.0}, 8);
  CellId s1 = big.child(0).child(1);
  CellId s2 = big.child(2).child(3);
  b.Insert(s1, OneRef(0, true));
  b.Insert(s2, OneRef(1, true));
  b.Insert(big, OneRef(2, false));
  SuperCovering sc = b.Build();
  EXPECT_TRUE(sc.IsDisjoint());

  // s1 keeps its refs plus polygon 2.
  int64_t i1 = sc.FindContaining(s1.range_min());
  ASSERT_GE(i1, 0);
  EXPECT_EQ(sc.cell(i1), s1);
  EXPECT_EQ(sc.refs(i1).size(), 2u);

  // Every leaf inside big must resolve to a cell referencing polygon 2.
  Rng rng(3);
  for (int s = 0; s < 200; ++s) {
    uint64_t leaf_id =
        big.range_min().id() +
        rng.UniformInt(big.range_max().id() - big.range_min().id() + 1);
    // Snap to a valid leaf id (even ids are not leaves).
    leaf_id |= 1;
    int64_t idx = sc.FindContaining(CellId(leaf_id));
    ASSERT_GE(idx, 0);
    bool has_p2 = false;
    for (const auto& r : sc.refs(idx)) has_p2 |= r.polygon_id == 2;
    ASSERT_TRUE(has_p2);
  }
}

TEST(SuperCoveringBuilder, InteriorAbsorbsBoundarySamePolygon) {
  // Covering cell of polygon 0 contains an interior cell of polygon 0: the
  // contained area must end up flagged interior, the ring around boundary.
  Grid grid;
  SuperCoveringBuilder b;
  CellId boundary_cell = grid.CellAt({40.7, -74.0}, 10);
  CellId interior_cell = boundary_cell.child(1).child(2);
  b.Insert(boundary_cell, OneRef(0, false));
  b.Insert(interior_cell, OneRef(0, true));
  SuperCovering sc = b.Build();
  EXPECT_TRUE(sc.IsDisjoint());
  int64_t idx = sc.FindContaining(interior_cell.range_min());
  ASSERT_GE(idx, 0);
  ASSERT_EQ(sc.refs(idx).size(), 1u);
  EXPECT_TRUE(sc.refs(idx)[0].interior);
  // A difference cell stays boundary.
  int64_t d_idx = sc.FindContaining(boundary_cell.child(0).range_min());
  ASSERT_GE(d_idx, 0);
  EXPECT_FALSE(sc.refs(d_idx)[0].interior);
}

// Property: the merged covering preserves exactly the per-polygon cell
// information of the individual coverings.
TEST(SuperCoveringBuilder, PreservesPerPolygonClaims) {
  Grid grid;
  Rng rng(5150);
  // Random cells for 6 polygons, many conflicts.
  std::vector<std::vector<std::pair<CellId, bool>>> claims(6);
  SuperCoveringBuilder b;
  for (int pid = 0; pid < 6; ++pid) {
    for (int k = 0; k < 30; ++k) {
      geo::LatLng p{rng.Uniform(40.5, 40.9), rng.Uniform(-74.2, -73.8)};
      int level = 8 + static_cast<int>(rng.UniformInt(8));
      CellId c = grid.CellAt(p, level);
      bool interior = rng.NextDouble() < 0.4;
      claims[pid].emplace_back(c, interior);
      b.Insert(c, OneRef(pid, interior));
    }
  }
  SuperCovering sc = b.Build();
  ASSERT_TRUE(sc.IsDisjoint());

  // For random probe leaves: polygon pid must be referenced iff some claim
  // cell of pid contains the leaf; flag must be interior iff some interior
  // claim contains it.
  for (int s = 0; s < 2000; ++s) {
    geo::LatLng p{rng.Uniform(40.4, 41.0), rng.Uniform(-74.3, -73.7)};
    CellId leaf = grid.CellAt(p);
    std::map<uint32_t, bool> expected;  // pid -> interior
    for (uint32_t pid = 0; pid < 6; ++pid) {
      for (const auto& [cell, interior] : claims[pid]) {
        if (cell.contains(leaf)) {
          auto [it, inserted] = expected.emplace(pid, interior);
          if (!inserted) it->second = it->second || interior;
        }
      }
    }
    int64_t idx = sc.FindContaining(leaf);
    std::map<uint32_t, bool> actual;
    if (idx >= 0) {
      for (const auto& r : sc.refs(idx)) actual[r.polygon_id] = r.interior;
    }
    ASSERT_EQ(actual, expected) << "probe " << leaf.ToString();
  }
}

TEST(SuperCovering, FindContainingMissesOutside) {
  Grid grid;
  SuperCoveringBuilder b;
  b.Insert(grid.CellAt({40.7, -74.0}, 10), OneRef(0, true));
  SuperCovering sc = b.Build();
  EXPECT_EQ(sc.FindContaining(grid.CellAt({0.0, 0.0})), -1);
  EXPECT_EQ(sc.CountExpensiveCells(), 0u);
}

// ---------------------------------------------------------------------------
// Precision refinement
// ---------------------------------------------------------------------------

TEST(RefineToPrecision, BoundaryCellsMeetBound) {
  Grid grid;
  wl::PartitionSpec spec;
  spec.mbr = geom::Rect::Of(-74.05, 40.6, -73.95, 40.75);
  spec.nx = spec.ny = 3;
  spec.edge_depth = 2;
  spec.seed = 77;
  auto polys = wl::JitteredPartition(spec);
  PolygonClassifier classifier(polys, grid);

  SuperCoveringBuilder b;
  cover::CovererOptions copts{64, 30, 0};
  cover::CovererOptions iopts{128, 16, 0};
  for (uint32_t pid = 0; pid < polys.size(); ++pid) {
    cover::Coverer coverer(classifier.edge_grid(pid), grid);
    b.AddCovering(coverer.Covering(copts), pid, false);
    b.AddCovering(coverer.InteriorCovering(iopts), pid, true);
  }
  SuperCovering coarse = b.Build();

  size_t prev_size = 0;
  for (double bound : {500.0, 120.0, 30.0}) {
    SuperCovering fine = RefineToPrecision(coarse, bound, grid, classifier);
    ASSERT_TRUE(fine.IsDisjoint());
    // Tighter bounds need more cells (note: refinement may also *shrink* a
    // coarse covering by pruning inherited references that do not actually
    // touch their cell, so only the relative ordering is asserted).
    EXPECT_GT(fine.size(), prev_size);
    prev_size = fine.size();
    for (size_t i = 0; i < fine.size(); ++i) {
      const RefList& refs = fine.refs(i);
      if (HasCandidate(refs)) {
        ASSERT_LE(grid.CellDiagonalMeters(fine.cell(i)), bound)
            << fine.cell(i).ToString();
      }
      // Every boundary ref must genuinely touch its cell — the invariant
      // behind the approximate join's distance guarantee.
      geo::LatLngRect r = grid.CellRect(fine.cell(i));
      geom::Rect rect = geom::Rect::Of(r.lng_lo, r.lat_lo, r.lng_hi, r.lat_hi);
      for (const PolygonRef& ref : refs) {
        ASSERT_NE(geom::Classify(polys[ref.polygon_id], rect),
                  geom::RegionRelation::kDisjoint);
      }
    }
  }
}

TEST(RefineToPrecision, InteriorOnlyCellsUntouched) {
  Grid grid;
  SuperCoveringBuilder b;
  CellId big = grid.CellAt({40.7, -74.0}, 6);  // huge cell, large diagonal
  b.Insert(big, OneRef(0, true));
  SuperCovering sc = b.Build();
  // No classifier calls should happen; pass a classifier over an empty-ish
  // polygon set won't be consulted for interior refs. Use a real polygon to
  // be safe.
  std::vector<geom::Polygon> polys;
  polys.push_back(geom::Polygon({{-75, 40}, {-73, 40}, {-73, 41}, {-75, 41}}));
  PolygonClassifier classifier(polys, grid);
  SuperCovering refined = RefineToPrecision(sc, 4.0, grid, classifier);
  ASSERT_EQ(refined.size(), 1u);
  EXPECT_EQ(refined.cell(0), big);
}

TEST(Encode, InlinesUpToTwoRefs) {
  Grid grid;
  SuperCoveringBuilder b;
  b.Insert(grid.CellAt({40.7, -74.0}, 10), OneRef(3, true));
  CellId c2 = grid.CellAt({10.0, 10.0}, 10);
  RefList two;
  two.push_back({1, false});
  two.push_back({2, true});
  b.Insert(c2, two);
  CellId c3 = grid.CellAt({-30.0, 100.0}, 10);
  RefList three;
  three.push_back({1, false});
  three.push_back({2, true});
  three.push_back({3, true});
  b.Insert(c3, three);
  SuperCovering sc = b.Build();
  EncodedCovering enc = Encode(sc);
  ASSERT_EQ(enc.cells.size(), 3u);

  std::map<uint64_t, TaggedEntry> by_id;
  for (const auto& [cell, entry] : enc.cells) by_id[cell.id()] = entry;
  EXPECT_EQ(KindOf(by_id.at(grid.CellAt({40.7, -74.0}, 10).id())),
            EntryKind::kOneRef);
  EXPECT_EQ(KindOf(by_id.at(c2.id())), EntryKind::kTwoRefs);
  EXPECT_EQ(KindOf(by_id.at(c3.id())), EntryKind::kTableOffset);
  EXPECT_FALSE(enc.table.empty());
}

TEST(Encode, NoInlineForcesTable) {
  Grid grid;
  SuperCoveringBuilder b;
  b.Insert(grid.CellAt({40.7, -74.0}, 10), OneRef(3, true));
  SuperCovering sc = b.Build();
  EncodedCovering enc = Encode(sc, /*inline_refs=*/false);
  EXPECT_EQ(KindOf(enc.cells[0].second), EntryKind::kTableOffset);
}

}  // namespace
}  // namespace actjoin::act
