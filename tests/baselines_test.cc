// Tests for the baseline index structures: B+-tree (vs std::map oracle),
// cell-index wrappers, R-tree (vs brute-force stabbing), shape index (vs
// raw PIP), and the raster join (ARJ exactness, BRJ error bound,
// multi-pass invariance).

//
// Seeding convention (full rationale in util_test.cc): random data comes
// only from util::Rng with explicit literal seeds or from the workload
// factories, whose default seeds are fixed compile-time constants -- never
// time- or address-derived -- so every ctest run is bit-reproducible.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "act/pipeline.h"
#include "baselines/btree.h"
#include "baselines/cell_indexes.h"
#include "baselines/raster_join.h"
#include "baselines/rtree.h"
#include "baselines/shape_index.h"
#include "geo/grid.h"
#include "geometry/pip.h"
#include "util/random.h"
#include "workloads/datasets.h"

namespace actjoin::baselines {
namespace {

using actjoin::util::Rng;
using geo::Grid;

// ---------------------------------------------------------------------------
// B+-tree
// ---------------------------------------------------------------------------

class BTreeNodeSizeTest : public ::testing::TestWithParam<size_t> {};

INSTANTIATE_TEST_SUITE_P(NodeSizes, BTreeNodeSizeTest,
                         ::testing::Values(64, 256, 1024));

TEST_P(BTreeNodeSizeTest, InsertMatchesMapOracle) {
  BTree tree(GetParam());
  std::map<uint64_t, uint64_t> oracle;
  Rng rng(1);
  for (int k = 0; k < 5000; ++k) {
    uint64_t key = rng.UniformInt(8000);  // collisions: overwrites
    uint64_t value = rng.Next();
    tree.Insert(key, value);
    oracle[key] = value;
  }
  ASSERT_EQ(tree.size(), oracle.size());
  ASSERT_TRUE(tree.CheckInvariants());
  for (const auto& [k, v] : oracle) {
    uint64_t got = 0;
    ASSERT_TRUE(tree.Find(k, &got)) << "key " << k;
    ASSERT_EQ(got, v);
  }
  uint64_t dummy;
  EXPECT_FALSE(tree.Find(999999, &dummy));
}

TEST_P(BTreeNodeSizeTest, BulkLoadMatchesMapOracle) {
  Rng rng(2);
  std::map<uint64_t, uint64_t> oracle;
  for (int k = 0; k < 20000; ++k) oracle[rng.Next() >> 4] = rng.Next();
  std::vector<std::pair<uint64_t, uint64_t>> pairs(oracle.begin(),
                                                   oracle.end());
  BTree tree(GetParam());
  tree.BulkLoad(pairs);
  ASSERT_EQ(tree.size(), oracle.size());
  ASSERT_TRUE(tree.CheckInvariants());
  for (int k = 0; k < 3000; ++k) {
    const auto& [key, value] = pairs[rng.UniformInt(pairs.size())];
    uint64_t got = 0;
    ASSERT_TRUE(tree.Find(key, &got));
    ASSERT_EQ(got, value);
  }
}

TEST_P(BTreeNodeSizeTest, LowerBoundAndPredecessorMatchOracle) {
  Rng rng(3);
  std::map<uint64_t, uint64_t> oracle;
  for (int k = 0; k < 5000; ++k) oracle[rng.UniformInt(100000)] = rng.Next();
  std::vector<std::pair<uint64_t, uint64_t>> pairs(oracle.begin(),
                                                   oracle.end());
  BTree tree(GetParam());
  tree.BulkLoad(pairs);
  for (int k = 0; k < 5000; ++k) {
    uint64_t q = rng.UniformInt(110000);
    auto lb = oracle.lower_bound(q);
    BTree::Iterator it = tree.LowerBound(q);
    if (lb == oracle.end()) {
      ASSERT_FALSE(it.Valid());
    } else {
      ASSERT_TRUE(it.Valid());
      ASSERT_EQ(it.key(), lb->first);
      ASSERT_EQ(it.value(), lb->second);
    }
    // Predecessor: last key <= q.
    auto ub = oracle.upper_bound(q);
    BTree::Iterator pred = tree.Predecessor(q);
    if (ub == oracle.begin()) {
      ASSERT_FALSE(pred.Valid());
    } else {
      --ub;
      ASSERT_TRUE(pred.Valid());
      ASSERT_EQ(pred.key(), ub->first);
    }
  }
}

TEST(BTreeTest, IterationIsSortedAndComplete) {
  Rng rng(4);
  std::set<uint64_t> keys;
  BTree tree;
  for (int k = 0; k < 3000; ++k) {
    uint64_t key = rng.Next();
    keys.insert(key);
    tree.Insert(key, key + 1);
  }
  size_t n = 0;
  uint64_t prev = 0;
  for (BTree::Iterator it = tree.Begin(); it.Valid(); it.Next()) {
    ASSERT_TRUE(n == 0 || it.key() > prev);
    ASSERT_EQ(it.value(), it.key() + 1);
    prev = it.key();
    ++n;
  }
  EXPECT_EQ(n, keys.size());
}

TEST(BTreeTest, IteratorPrevWalksBackwards) {
  BTree tree;
  for (uint64_t k = 0; k < 100; ++k) tree.Insert(k * 10, k);
  BTree::Iterator it = tree.LowerBound(505);  // -> 510
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), 510u);
  it.Prev();
  EXPECT_EQ(it.key(), 500u);
  // Walk all the way back.
  int steps = 0;
  while (it.Valid()) {
    it.Prev();
    ++steps;
  }
  EXPECT_EQ(steps, 51);
}

TEST(BTreeTest, EmptyTree) {
  BTree tree;
  uint64_t v;
  EXPECT_FALSE(tree.Find(1, &v));
  EXPECT_FALSE(tree.Begin().Valid());
  EXPECT_FALSE(tree.LowerBound(0).Valid());
  EXPECT_FALSE(tree.Predecessor(~uint64_t{0}).Valid());
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_EQ(tree.MemoryBytes(), 0u);
}

TEST(BTreeTest, HeightGrowsLogarithmically) {
  BTree tree(256);
  for (uint64_t k = 0; k < 100000; ++k) tree.Insert(k, k);
  ASSERT_TRUE(tree.CheckInvariants());
  EXPECT_LE(tree.height(), 7);
  EXPECT_GT(tree.MemoryBytes(), 100000u * 16 / 2);
}

// ---------------------------------------------------------------------------
// Cell index wrappers agree with ACT and the reference probe
// ---------------------------------------------------------------------------

TEST(CellIndexes, AllStructuresAgreeOnProbes) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.08);
  act::BuildOptions opts;
  opts.threads = 1;
  act::PolygonIndex index = act::PolygonIndex::Build(ds.polygons, grid, opts);
  const act::EncodedCovering& enc = index.encoded();

  SortedVectorIndex lb(enc);
  BTreeCellIndex gbt(enc);

  Rng rng(9);
  for (int s = 0; s < 20000; ++s) {
    geo::LatLng p{rng.Uniform(40.4, 41.0), rng.Uniform(-74.35, -73.6)};
    uint64_t leaf = grid.CellAt(p).id();
    act::TaggedEntry want = index.trie().Probe(leaf);
    ASSERT_EQ(lb.Probe(leaf), want) << "LB mismatch";
    ASSERT_EQ(gbt.Probe(leaf), want) << "GBT mismatch";
  }
}

TEST(CellIndexes, JoinResultsIdenticalAcrossStructures) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  act::BuildOptions opts;
  opts.threads = 1;
  act::PolygonIndex index = act::PolygonIndex::Build(ds.polygons, grid, opts);
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 5000, grid, 10);

  SortedVectorIndex lb(index.encoded());
  BTreeCellIndex gbt(index.encoded());
  auto want = act::ExecuteJoinPairs(index.trie(), index.encoded().table,
                                    pts.AsJoinInput(), ds.polygons,
                                    act::JoinMode::kExact);
  EXPECT_EQ(act::ExecuteJoinPairs(lb, index.encoded().table,
                                  pts.AsJoinInput(), ds.polygons,
                                  act::JoinMode::kExact),
            want);
  EXPECT_EQ(act::ExecuteJoinPairs(gbt, index.encoded().table,
                                  pts.AsJoinInput(), ds.polygons,
                                  act::JoinMode::kExact),
            want);
}

// ---------------------------------------------------------------------------
// R-tree
// ---------------------------------------------------------------------------

TEST(RTreeTest, BulkLoadStabbingMatchesBruteForce) {
  Rng rng(11);
  std::vector<std::pair<geom::Rect, uint32_t>> entries;
  for (uint32_t k = 0; k < 2000; ++k) {
    double x = rng.Uniform(0, 100), y = rng.Uniform(0, 100);
    entries.emplace_back(
        geom::Rect::Of(x, y, x + rng.Uniform(0.1, 5), y + rng.Uniform(0.1, 5)),
        k);
  }
  RTree tree(8);
  tree.BulkLoad(entries);
  ASSERT_EQ(tree.size(), entries.size());
  ASSERT_TRUE(tree.CheckInvariants());

  for (int s = 0; s < 2000; ++s) {
    geom::Point q{rng.Uniform(-1, 101), rng.Uniform(-1, 101)};
    std::set<uint32_t> got;
    tree.QueryPoint(q, [&](uint32_t id) { got.insert(id); });
    std::set<uint32_t> want;
    for (const auto& [rect, id] : entries) {
      if (rect.Contains(q)) want.insert(id);
    }
    ASSERT_EQ(got, want);
  }
}

TEST(RTreeTest, InsertStabbingMatchesBruteForce) {
  Rng rng(12);
  std::vector<std::pair<geom::Rect, uint32_t>> entries;
  RTree tree(8);
  for (uint32_t k = 0; k < 1500; ++k) {
    double x = rng.Uniform(0, 50), y = rng.Uniform(0, 50);
    geom::Rect r =
        geom::Rect::Of(x, y, x + rng.Uniform(0.1, 3), y + rng.Uniform(0.1, 3));
    entries.emplace_back(r, k);
    tree.Insert(r, k);
  }
  ASSERT_EQ(tree.size(), entries.size());
  ASSERT_TRUE(tree.CheckInvariants());
  for (int s = 0; s < 1000; ++s) {
    geom::Point q{rng.Uniform(0, 50), rng.Uniform(0, 50)};
    std::set<uint32_t> got;
    tree.QueryPoint(q, [&](uint32_t id) { got.insert(id); });
    std::set<uint32_t> want;
    for (const auto& [rect, id] : entries) {
      if (rect.Contains(q)) want.insert(id);
    }
    ASSERT_EQ(got, want);
  }
}

TEST(RTreeTest, JoinMatchesBruteForce) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  RTree tree = BuildPolygonRTree(ds.polygons);
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 4000, grid, 13);
  act::JoinStats stats = RTreeJoin(tree, ds.polygons, pts.AsJoinInput(), 1);
  auto want = act::BruteForceJoinPairs(pts.AsJoinInput(), ds.polygons);
  EXPECT_EQ(stats.result_pairs, want.size());
  EXPECT_GT(stats.pip_tests, 0u);
}

TEST(RTreeTest, EmptyAndSingle) {
  RTree tree(8);
  tree.BulkLoad({});
  EXPECT_TRUE(tree.CheckInvariants());
  int hits = 0;
  tree.QueryPoint({0, 0}, [&](uint32_t) { ++hits; });
  EXPECT_EQ(hits, 0);

  tree.BulkLoad({{geom::Rect::Of(0, 0, 1, 1), 7}});
  EXPECT_TRUE(tree.CheckInvariants());
  tree.QueryPoint({0.5, 0.5}, [&](uint32_t id) { EXPECT_EQ(id, 7u); ++hits; });
  EXPECT_EQ(hits, 1);
}

// ---------------------------------------------------------------------------
// Shape index
// ---------------------------------------------------------------------------

class ShapeIndexEdgesTest : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(EdgesPerCell, ShapeIndexEdgesTest,
                         ::testing::Values(1, 10),
                         [](const auto& info) {
                           return "SI" + std::to_string(info.param);
                         });

TEST_P(ShapeIndexEdgesTest, QueryMatchesRawPip) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  ShapeIndex index(ds.polygons, grid, {GetParam(), 18});
  Rng rng(14);
  for (int s = 0; s < 4000; ++s) {
    geom::Point q{rng.Uniform(ds.mbr.lo.x, ds.mbr.hi.x),
                  rng.Uniform(ds.mbr.lo.y, ds.mbr.hi.y)};
    uint64_t leaf = grid.CellAt({q.y, q.x}).id();
    std::set<uint32_t> got;
    index.Query(leaf, q, [&](uint32_t pid, bool covers) {
      if (covers) got.insert(pid);
    });
    std::set<uint32_t> want;
    for (uint32_t pid = 0; pid < ds.polygons.size(); ++pid) {
      if (geom::ContainsPoint(ds.polygons[pid], q)) want.insert(pid);
    }
    ASSERT_EQ(got, want) << "q=(" << q.x << "," << q.y << ")";
  }
}

TEST_P(ShapeIndexEdgesTest, JoinMatchesBruteForce) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.04);
  ShapeIndex index(ds.polygons, grid, {GetParam(), 18});
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 3000, grid, 15);
  act::JoinStats stats =
      ShapeIndexJoin(index, ds.polygons, pts.AsJoinInput(), 1);
  auto want = act::BruteForceJoinPairs(pts.AsJoinInput(), ds.polygons);
  EXPECT_EQ(stats.result_pairs, want.size());
}

TEST(ShapeIndexTest, FinerConfigHasFewerEdgesPerCell) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.04);
  ShapeIndex si10(ds.polygons, grid, {10, 18});
  ShapeIndex si1(ds.polygons, grid, {1, 18});
  // SI1 subdivides further: more cells, fewer edges per cell (down to the
  // level cap, where vertex-adjacent edges cannot be separated).
  EXPECT_GT(si1.num_cells(), si10.num_cells());
  EXPECT_LE(si1.MaxEdgesInAnyCell(), si10.MaxEdgesInAnyCell());
  EXPECT_GT(si1.MemoryBytes(), si10.MemoryBytes());
}

TEST(ShapeIndexTest, TrueHitFilteringWorks) {
  // Points deep inside polygons should be answered without local-edge
  // tests for most probes (contained list).
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  ShapeIndex index(ds.polygons, grid, {10, 18});
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 4000, grid, 16);
  act::JoinStats stats =
      ShapeIndexJoin(index, ds.polygons, pts.AsJoinInput(), 1);
  // Some points hit interior cells => sth_points > 0.
  EXPECT_GT(stats.sth_points, 0u);
  EXPECT_LT(stats.pip_tests, stats.num_points * ds.polygons.size());
}

// ---------------------------------------------------------------------------
// Raster join
// ---------------------------------------------------------------------------

TEST(RasterJoinTest, AccurateMatchesBruteForce) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  RasterJoinOptions opts;
  opts.precision_bound_m = 120;
  opts.accurate = true;
  RasterJoin rj(ds.polygons, ds.mbr, opts);
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 4000, grid, 17);
  act::JoinStats stats = rj.Execute(pts.AsJoinInput(), 1);
  auto want = act::BruteForceJoinPairs(pts.AsJoinInput(), ds.polygons);
  EXPECT_EQ(stats.result_pairs, want.size());
  // Per-polygon counts must match exactly.
  std::vector<uint64_t> want_counts(ds.polygons.size(), 0);
  for (const auto& [p, pid] : want) ++want_counts[pid];
  EXPECT_EQ(stats.counts, want_counts);
}

TEST(RasterJoinTest, BoundedErrorWithinPixelDiagonal) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  const double bound = 150;
  RasterJoinOptions opts;
  opts.precision_bound_m = bound;
  opts.accurate = false;
  RasterJoin rj(ds.polygons, ds.mbr, opts);
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 4000, grid, 18);
  act::JoinStats stats = rj.Execute(pts.AsJoinInput(), 1);
  auto exact = act::BruteForceJoinPairs(pts.AsJoinInput(), ds.polygons);
  // Superset of exact (no false negatives)...
  EXPECT_GE(stats.result_pairs, exact.size());
  // ...and BRJ emits no PIP tests at all.
  EXPECT_EQ(stats.pip_tests, 0u);
}

TEST(RasterJoinTest, MultiPassDoesNotChangeResults) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.04);
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 3000, grid, 19);

  RasterJoinOptions one_pass;
  one_pass.precision_bound_m = 100;
  one_pass.accurate = true;
  one_pass.native_resolution = 1 << 20;  // everything in one pass
  RasterJoin rj1(ds.polygons, ds.mbr, one_pass);
  ASSERT_EQ(rj1.passes(), 1);

  RasterJoinOptions many_pass = one_pass;
  many_pass.native_resolution = 256;  // force scene splits
  RasterJoin rjn(ds.polygons, ds.mbr, many_pass);
  ASSERT_GT(rjn.passes(), 1);

  act::JoinStats a = rj1.Execute(pts.AsJoinInput(), 1);
  act::JoinStats b = rjn.Execute(pts.AsJoinInput(), 1);
  EXPECT_EQ(a.counts, b.counts);
  EXPECT_EQ(a.result_pairs, b.result_pairs);
}

TEST(RasterJoinTest, ResolutionScalesWithPrecision) {
  wl::PolygonDataset ds = wl::Neighborhoods(0.02);
  RasterJoinOptions coarse;
  coarse.precision_bound_m = 240;
  RasterJoinOptions fine;
  fine.precision_bound_m = 60;
  RasterJoin rc(ds.polygons, ds.mbr, coarse);
  RasterJoin rf(ds.polygons, ds.mbr, fine);
  EXPECT_NEAR(static_cast<double>(rf.resolution_x()) / rc.resolution_x(), 4.0,
              0.1);
  EXPECT_GT(rf.MemoryBytes(), rc.MemoryBytes());
}

TEST(RasterJoinTest, MultithreadedMatchesSingle) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.04);
  RasterJoinOptions opts;
  opts.precision_bound_m = 100;
  opts.accurate = true;
  RasterJoin rj(ds.polygons, ds.mbr, opts);
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 10000, grid, 20);
  act::JoinStats a = rj.Execute(pts.AsJoinInput(), 1);
  act::JoinStats b = rj.Execute(pts.AsJoinInput(), 4);
  EXPECT_EQ(a.counts, b.counts);
}

// ---------------------------------------------------------------------------
// Cross-structure integration: every exact method returns identical counts
// ---------------------------------------------------------------------------

TEST(CrossIndex, AllExactJoinsAgree) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  act::BuildOptions opts;
  opts.threads = 1;
  act::PolygonIndex index = act::PolygonIndex::Build(ds.polygons, grid, opts);
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 5000, grid, 21);
  act::JoinInput input = pts.AsJoinInput();

  act::JoinStats act_stats = index.Join(input, {act::JoinMode::kExact, 1});

  RTree rtree = BuildPolygonRTree(ds.polygons);
  act::JoinStats rt_stats = RTreeJoin(rtree, ds.polygons, input, 1);

  ShapeIndex si(ds.polygons, grid, {10, 18});
  act::JoinStats si_stats = ShapeIndexJoin(si, ds.polygons, input, 1);

  RasterJoinOptions ropts;
  ropts.precision_bound_m = 100;
  ropts.accurate = true;
  RasterJoin rj(ds.polygons, ds.mbr, ropts);
  act::JoinStats arj_stats = rj.Execute(input, 1);

  EXPECT_EQ(act_stats.counts, rt_stats.counts);
  EXPECT_EQ(act_stats.counts, si_stats.counts);
  EXPECT_EQ(act_stats.counts, arj_stats.counts);

  // True-hit filtering: ACT needs far fewer refinement tests than RT.
  EXPECT_LT(act_stats.pip_tests, rt_stats.pip_tests);
}

}  // namespace
}  // namespace actjoin::baselines
