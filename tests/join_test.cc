// Integration tests for the join algorithms: exactness against the
// brute-force oracle, the approximate join's distance bound, training
// effects, and multithreaded consistency.

//
// Seeding convention (full rationale in util_test.cc): random data comes
// only from util::Rng with explicit literal seeds or from the workload
// factories, whose default seeds are fixed compile-time constants -- never
// time- or address-derived -- so every ctest run is bit-reproducible.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "act/pipeline.h"
#include "geo/grid.h"
#include "geometry/pip.h"
#include "util/random.h"
#include "workloads/datasets.h"
#include "workloads/point_gen.h"
#include "workloads/polygon_gen.h"

namespace actjoin::act {
namespace {

using actjoin::util::Rng;
using geo::Grid;

struct JoinFixtureParam {
  double dataset_scale;
  int bits_per_level;
};

class ExactJoinTest
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

INSTANTIATE_TEST_SUITE_P(
    ScalesAndFanouts, ExactJoinTest,
    ::testing::Combine(::testing::Values(0.02, 0.08),
                       ::testing::Values(2, 4, 8)),
    [](const auto& info) {
      return "scale" +
             std::to_string(static_cast<int>(std::get<0>(info.param) * 100)) +
             "_bits" + std::to_string(std::get<1>(info.param));
    });

TEST_P(ExactJoinTest, MatchesBruteForce) {
  auto [scale, bits] = GetParam();
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(scale);
  BuildOptions opts;
  opts.threads = 1;
  opts.act.bits_per_level = bits;
  PolygonIndex index = PolygonIndex::Build(ds.polygons, grid, opts);

  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 3000, grid, /*seed=*/1);
  auto got = index.JoinPairs(pts.AsJoinInput(), JoinMode::kExact);
  auto want = BruteForceJoinPairs(pts.AsJoinInput(), ds.polygons);
  ASSERT_EQ(got, want);
}

TEST(ExactJoin, MatchesBruteForceOnBoroughsAnalog) {
  Grid grid;
  wl::PolygonDataset ds = wl::Boroughs(0.6);  // 3 complex polygons
  BuildOptions opts;
  opts.threads = 1;
  PolygonIndex index = PolygonIndex::Build(ds.polygons, grid, opts);
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 2000, grid, 2);
  EXPECT_EQ(index.JoinPairs(pts.AsJoinInput(), JoinMode::kExact),
            BruteForceJoinPairs(pts.AsJoinInput(), ds.polygons));
}

TEST(ExactJoin, MatchesBruteForceWithOverlappingPolygons) {
  Grid grid;
  wl::PartitionSpec spec;
  spec.mbr = wl::NycMbr();
  spec.nx = spec.ny = 4;
  spec.edge_depth = 2;
  spec.seed = 3;
  spec.overlap_dilation = 0.2;  // polygons genuinely overlap
  std::vector<geom::Polygon> polys = wl::JitteredPartition(spec);
  BuildOptions opts;
  opts.threads = 1;
  PolygonIndex index = PolygonIndex::Build(polys, grid, opts);
  wl::PointSet pts = wl::SyntheticUniformPoints(spec.mbr, 2500, grid, 4);
  EXPECT_EQ(index.JoinPairs(pts.AsJoinInput(), JoinMode::kExact),
            BruteForceJoinPairs(pts.AsJoinInput(), polys));
}

TEST(ExactJoin, UniformPointsIncludingMisses) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  // Sample points from a larger rect so many miss all polygons.
  geom::Rect wide = ds.mbr;
  wide.lo.x -= 0.2;
  wide.hi.x += 0.2;
  wide.lo.y -= 0.2;
  wide.hi.y += 0.2;
  BuildOptions opts;
  opts.threads = 1;
  PolygonIndex index = PolygonIndex::Build(ds.polygons, grid, opts);
  wl::PointSet pts = wl::SyntheticUniformPoints(wide, 3000, grid, 5);
  EXPECT_EQ(index.JoinPairs(pts.AsJoinInput(), JoinMode::kExact),
            BruteForceJoinPairs(pts.AsJoinInput(), ds.polygons));
}

TEST(ApproxJoin, FalsePositivesWithinPrecisionBound) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  const double bound_m = 120.0;
  BuildOptions opts;
  opts.threads = 1;
  opts.precision_bound_m = bound_m;
  PolygonIndex index = PolygonIndex::Build(ds.polygons, grid, opts);

  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 4000, grid, 6);
  auto approx = index.JoinPairs(pts.AsJoinInput(), JoinMode::kApproximate);
  auto exact = BruteForceJoinPairs(pts.AsJoinInput(), ds.polygons);

  // (a) No false negatives: approx is a superset of exact.
  ASSERT_TRUE(std::includes(approx.begin(), approx.end(), exact.begin(),
                            exact.end()));
  // (b) Every false positive is within bound_m of the polygon (paper's
  // guarantee: distance <= diagonal of the largest boundary cell).
  std::vector<std::pair<uint64_t, uint32_t>> extras;
  std::set_difference(approx.begin(), approx.end(), exact.begin(),
                      exact.end(), std::back_inserter(extras));
  for (const auto& [pt_idx, pid] : extras) {
    double d = geom::DistanceToPolygonMeters(ds.polygons[pid],
                                             pts.points()[pt_idx]);
    ASSERT_LE(d, bound_m * 1.01)
        << "false positive " << d << " m from polygon " << pid;
  }
}

TEST(ApproxJoin, TighterBoundFewerFalsePositives) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 4000, grid, 7);
  auto exact = BruteForceJoinPairs(pts.AsJoinInput(), ds.polygons);

  uint64_t prev_extras = ~uint64_t{0};
  for (double bound : {500.0, 120.0, 30.0}) {
    BuildOptions opts;
    opts.threads = 1;
    opts.precision_bound_m = bound;
    PolygonIndex index = PolygonIndex::Build(ds.polygons, grid, opts);
    auto approx = index.JoinPairs(pts.AsJoinInput(), JoinMode::kApproximate);
    std::vector<std::pair<uint64_t, uint32_t>> extras;
    std::set_difference(approx.begin(), approx.end(), exact.begin(),
                        exact.end(), std::back_inserter(extras));
    EXPECT_LE(extras.size(), prev_extras);
    prev_extras = extras.size();
  }
}

TEST(JoinStatsTest, CountsAreConsistent) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  BuildOptions opts;
  opts.threads = 1;
  PolygonIndex index = PolygonIndex::Build(ds.polygons, grid, opts);
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 5000, grid, 8);
  JoinStats stats = index.Join(pts.AsJoinInput(), {JoinMode::kExact, 1});

  EXPECT_EQ(stats.num_points, 5000u);
  uint64_t count_sum = 0;
  for (uint64_t c : stats.counts) count_sum += c;
  EXPECT_EQ(count_sum, stats.result_pairs);
  EXPECT_EQ(stats.result_pairs, stats.true_hit_refs + stats.pip_hits);
  EXPECT_EQ(stats.pip_tests, stats.candidate_refs);
  EXPECT_LE(stats.matched_points, stats.num_points);
  EXPECT_GT(stats.sth_points, 0u);
  // Against the oracle.
  auto want = BruteForceJoinPairs(pts.AsJoinInput(), ds.polygons);
  EXPECT_EQ(stats.result_pairs, want.size());
}

TEST(JoinStatsTest, ApproximateDoesNoPipTests) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  BuildOptions opts;
  opts.threads = 1;
  opts.precision_bound_m = 60.0;
  PolygonIndex index = PolygonIndex::Build(ds.polygons, grid, opts);
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 3000, grid, 9);
  JoinStats stats = index.Join(pts.AsJoinInput(), {JoinMode::kApproximate, 1});
  EXPECT_EQ(stats.pip_tests, 0u);
}

TEST(JoinStatsTest, MultithreadedMatchesSingleThreaded) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.08);
  BuildOptions opts;
  opts.threads = 1;
  PolygonIndex index = PolygonIndex::Build(ds.polygons, grid, opts);
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 20000, grid, 10);

  JoinStats single = index.Join(pts.AsJoinInput(), {JoinMode::kExact, 1});
  for (int threads : {2, 4, 7}) {
    JoinStats multi =
        index.Join(pts.AsJoinInput(), {JoinMode::kExact, threads});
    ASSERT_EQ(multi.counts, single.counts);
    ASSERT_EQ(multi.result_pairs, single.result_pairs);
    ASSERT_EQ(multi.pip_tests, single.pip_tests);
    ASSERT_EQ(multi.sth_points, single.sth_points);
  }
}

TEST(Training, PreservesExactness) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  BuildOptions opts;
  opts.threads = 1;
  PolygonIndex index = PolygonIndex::Build(ds.polygons, grid, opts);
  wl::PointSet history = wl::TaxiPoints(ds.mbr, 20000, grid, 11);
  wl::PointSet today = wl::TaxiPoints(ds.mbr, 3000, grid, 12);

  auto before = index.JoinPairs(today.AsJoinInput(), JoinMode::kExact);
  TrainStats tstats = index.Train(history.AsJoinInput());
  EXPECT_GT(tstats.cells_split, 0u);
  auto after = index.JoinPairs(today.AsJoinInput(), JoinMode::kExact);
  ASSERT_EQ(before, after);
  ASSERT_TRUE(index.covering().IsDisjoint());
}

TEST(Training, ReducesPipTestsAndRaisesSth) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.08);
  BuildOptions opts;
  opts.threads = 1;
  PolygonIndex index = PolygonIndex::Build(ds.polygons, grid, opts);
  // Train and join on the same distribution, different samples — the
  // paper's year-2009-train / 2010-2016-join split.
  wl::PointSet history = wl::TaxiPoints(ds.mbr, 30000, grid, 13);
  wl::PointSet today = wl::TaxiPoints(ds.mbr, 10000, grid, 14);

  JoinStats before = index.Join(today.AsJoinInput(), {JoinMode::kExact, 1});
  index.Train(history.AsJoinInput());
  JoinStats after = index.Join(today.AsJoinInput(), {JoinMode::kExact, 1});

  EXPECT_LT(after.pip_tests, before.pip_tests);
  EXPECT_GE(after.SthPercent(), before.SthPercent());
  EXPECT_EQ(after.result_pairs, before.result_pairs);
}

TEST(Training, RespectsCellBudget) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  BuildOptions opts;
  opts.threads = 1;
  PolygonIndex index = PolygonIndex::Build(ds.polygons, grid, opts);
  uint64_t base_cells = index.covering().size();
  wl::PointSet history = wl::TaxiPoints(ds.mbr, 50000, grid, 15);

  TrainOptions topts;
  topts.max_cells = base_cells + 50;
  SuperCoveringBuilder builder = ToBuilder(index.covering());
  TrainStats stats = TrainOnPoints(&builder, history.AsJoinInput(),
                                   index.classifier(), topts);
  EXPECT_TRUE(stats.budget_exhausted);
  // Each split adds at most 3 net cells.
  EXPECT_LE(builder.size(), base_cells + 50 + 3);
}

TEST(Training, IdempotentOnFullyRefinedArea) {
  // Training twice with the same points: the second pass should split far
  // fewer cells (most expensive cells already split one level).
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  BuildOptions opts;
  opts.threads = 1;
  PolygonIndex index = PolygonIndex::Build(ds.polygons, grid, opts);
  wl::PointSet history = wl::TaxiPoints(ds.mbr, 5000, grid, 16);
  TrainStats first = index.Train(history.AsJoinInput());
  TrainStats second = index.Train(history.AsJoinInput());
  EXPECT_LT(second.cells_split, first.cells_split);
}

TEST(BruteForce, OracleSanity) {
  // The oracle itself on a trivial configuration.
  std::vector<geom::Polygon> polys;
  polys.push_back(geom::Polygon({{0, 0}, {1, 0}, {1, 1}, {0, 1}}));
  polys.push_back(geom::Polygon({{2, 0}, {3, 0}, {3, 1}, {2, 1}}));
  std::vector<geom::Point> pts{{0.5, 0.5}, {2.5, 0.5}, {5, 5}};
  std::vector<uint64_t> ids{0, 0, 0};  // ids unused by brute force
  JoinInput input{ids, pts};
  auto pairs = BruteForceJoinPairs(input, polys);
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0], std::make_pair(uint64_t{0}, uint32_t{0}));
  EXPECT_EQ(pairs[1], std::make_pair(uint64_t{1}, uint32_t{1}));
}

}  // namespace
}  // namespace actjoin::act
