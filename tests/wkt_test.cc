// Tests for WKT polygon parsing and formatting.

//
// Seeding convention (full rationale in util_test.cc): random data comes
// only from util::Rng with explicit literal seeds or from the workload
// factories, whose default seeds are fixed compile-time constants -- never
// time- or address-derived -- so every ctest run is bit-reproducible.

#include <gtest/gtest.h>

#include "geometry/pip.h"
#include "workloads/datasets.h"
#include "workloads/wkt.h"

namespace actjoin::wl {
namespace {

TEST(Wkt, ParsesSimplePolygon) {
  auto poly = ParseWkt("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))");
  ASSERT_TRUE(poly.has_value());
  ASSERT_EQ(poly->rings().size(), 1u);
  EXPECT_EQ(poly->rings()[0].size(), 4u);  // closing duplicate dropped
  EXPECT_TRUE(geom::ContainsPoint(*poly, {2, 2}));
  EXPECT_FALSE(geom::ContainsPoint(*poly, {5, 2}));
}

TEST(Wkt, ParsesUnclosedRingToo) {
  auto poly = ParseWkt("POLYGON((0 0, 4 0, 4 4, 0 4))");
  ASSERT_TRUE(poly.has_value());
  EXPECT_EQ(poly->rings()[0].size(), 4u);
}

TEST(Wkt, ParsesHole) {
  auto poly = ParseWkt(
      "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (4 4, 6 4, 6 6, 4 6, 4 4))");
  ASSERT_TRUE(poly.has_value());
  ASSERT_EQ(poly->rings().size(), 2u);
  EXPECT_TRUE(geom::ContainsPoint(*poly, {1, 1}));
  EXPECT_FALSE(geom::ContainsPoint(*poly, {5, 5}));  // inside the hole
}

TEST(Wkt, ParsesMultiPolygon) {
  auto poly = ParseWkt(
      "MULTIPOLYGON (((0 0, 2 0, 2 2, 0 2, 0 0)), "
      "((5 5, 7 5, 7 7, 5 7, 5 5)))");
  ASSERT_TRUE(poly.has_value());
  ASSERT_EQ(poly->rings().size(), 2u);
  EXPECT_TRUE(geom::ContainsPoint(*poly, {1, 1}));
  EXPECT_TRUE(geom::ContainsPoint(*poly, {6, 6}));
  EXPECT_FALSE(geom::ContainsPoint(*poly, {3.5, 3.5}));
}

TEST(Wkt, NegativeAndScientificCoordinates) {
  auto poly = ParseWkt(
      "POLYGON ((-74.26 40.49, -73.69 40.49, -73.69 40.92, -74.26 40.92, "
      "-74.26 40.49))");
  ASSERT_TRUE(poly.has_value());
  EXPECT_TRUE(geom::ContainsPoint(*poly, {-74.0, 40.7}));
  auto sci = ParseWkt("POLYGON ((0 0, 1e1 0, 1e1 1e1, 0 1e1))");
  ASSERT_TRUE(sci.has_value());
  EXPECT_TRUE(geom::ContainsPoint(*sci, {5, 5}));
}

TEST(Wkt, CaseInsensitiveKeywordAndWhitespace) {
  EXPECT_TRUE(ParseWkt("polygon((0 0,1 0,1 1))").has_value());
  EXPECT_TRUE(ParseWkt("  PoLyGoN ( ( 0 0 , 1 0 , 1 1 ) )  ").has_value());
}

TEST(Wkt, RejectsMalformedInput) {
  EXPECT_FALSE(ParseWkt("").has_value());
  EXPECT_FALSE(ParseWkt("POINT (1 2)").has_value());
  EXPECT_FALSE(ParseWkt("POLYGON ((0 0, 1 0))").has_value());      // 2 verts
  EXPECT_FALSE(ParseWkt("POLYGON ((0 0, 1 0, 1 1)").has_value());  // no )
  EXPECT_FALSE(ParseWkt("POLYGON ((0 0, 1 x, 1 1))").has_value());
  EXPECT_FALSE(ParseWkt("POLYGON ((0 0, 1 0, 1 1)) junk").has_value());
}

TEST(Wkt, RoundTripThroughFormatter) {
  auto original = ParseWkt(
      "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (4 4, 6 4, 6 6, 4 6, 4 4))");
  ASSERT_TRUE(original.has_value());
  std::string text = ToWkt(*original);
  auto reparsed = ParseWkt(text);
  ASSERT_TRUE(reparsed.has_value());
  ASSERT_EQ(reparsed->rings().size(), original->rings().size());
  for (size_t r = 0; r < original->rings().size(); ++r) {
    ASSERT_EQ(reparsed->rings()[r], original->rings()[r]);
  }
}

TEST(Wkt, RoundTripSyntheticDatasets) {
  // Every generated polygon must survive format -> parse bit-for-bit in
  // containment behavior (9 significant digits is plenty at city scale).
  PolygonDataset ds = Neighborhoods(0.03);
  for (const geom::Polygon& poly : ds.polygons) {
    auto reparsed = ParseWkt(ToWkt(poly));
    ASSERT_TRUE(reparsed.has_value());
    ASSERT_EQ(reparsed->num_vertices(), poly.num_vertices());
  }
}

TEST(Wkt, CollectionParsing) {
  std::string text =
      "# zones\n"
      "POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))\n"
      "\n"
      "POLYGON ((2 0, 3 0, 3 1, 2 1, 2 0))\n";
  auto polys = ParseWktCollection(text);
  ASSERT_TRUE(polys.has_value());
  EXPECT_EQ(polys->size(), 2u);
}

TEST(Wkt, CollectionReportsErrorLine) {
  std::string text =
      "POLYGON ((0 0, 1 0, 1 1))\n"
      "POLYGON ((broken\n";
  size_t error_line = 0;
  EXPECT_FALSE(ParseWktCollection(text, &error_line).has_value());
  EXPECT_EQ(error_line, 2u);
}

}  // namespace
}  // namespace actjoin::wl
