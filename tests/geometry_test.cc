// Unit and property tests for the geometry kernel: segment predicates,
// polygons, point-in-polygon, classification, and the edge-grid accelerator.

//
// Seeding convention (full rationale in util_test.cc): random data comes
// only from util::Rng with explicit literal seeds or from the workload
// factories, whose default seeds are fixed compile-time constants -- never
// time- or address-derived -- so every ctest run is bit-reproducible.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "geometry/edge_grid.h"
#include "geometry/pip.h"
#include "geometry/polygon.h"
#include "geometry/rect.h"
#include "geometry/segment.h"
#include "util/random.h"
#include "workloads/polygon_gen.h"

namespace actjoin::geom {
namespace {

using actjoin::util::Rng;
using actjoin::wl::JitteredPartition;
using actjoin::wl::PartitionSpec;
using actjoin::wl::RandomStarPolygon;

Polygon UnitSquare() {
  return Polygon({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
}

// A square with a square hole from (0.25,0.25) to (0.75,0.75).
Polygon SquareWithHole() {
  Polygon p({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
  p.AddRing({{0.25, 0.25}, {0.75, 0.25}, {0.75, 0.75}, {0.25, 0.75}});
  return p;
}

// Concave "L" shape.
Polygon LShape() {
  return Polygon({{0, 0}, {2, 0}, {2, 1}, {1, 1}, {1, 2}, {0, 2}});
}

TEST(Segment, Orientation) {
  EXPECT_EQ(Orientation({0, 0}, {1, 0}, {0, 1}), 1);
  EXPECT_EQ(Orientation({0, 0}, {0, 1}, {1, 0}), -1);
  EXPECT_EQ(Orientation({0, 0}, {1, 1}, {2, 2}), 0);
}

TEST(Segment, OnSegment) {
  EXPECT_TRUE(OnSegment({0, 0}, {2, 2}, {1, 1}));
  EXPECT_TRUE(OnSegment({0, 0}, {2, 2}, {0, 0}));
  EXPECT_TRUE(OnSegment({0, 0}, {2, 2}, {2, 2}));
  EXPECT_FALSE(OnSegment({0, 0}, {2, 2}, {3, 3}));  // collinear but outside
  EXPECT_FALSE(OnSegment({0, 0}, {2, 2}, {1, 1.01}));
}

TEST(Segment, ProperCrossing) {
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {2, 2}, {0, 2}, {2, 0}));
  EXPECT_TRUE(SegmentsCrossProperly({0, 0}, {2, 2}, {0, 2}, {2, 0}));
}

TEST(Segment, EndpointTouchIsImproper) {
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {1, 1}, {1, 1}, {2, 0}));
  EXPECT_FALSE(SegmentsCrossProperly({0, 0}, {1, 1}, {1, 1}, {2, 0}));
}

TEST(Segment, CollinearOverlap) {
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {2, 0}, {1, 0}, {3, 0}));
  EXPECT_FALSE(SegmentsCrossProperly({0, 0}, {2, 0}, {1, 0}, {3, 0}));
  EXPECT_FALSE(SegmentsIntersect({0, 0}, {1, 0}, {2, 0}, {3, 0}));
}

TEST(Segment, ParallelDisjoint) {
  EXPECT_FALSE(SegmentsIntersect({0, 0}, {1, 0}, {0, 1}, {1, 1}));
}

TEST(Segment, RectIntersection) {
  Rect r = Rect::Of(0, 0, 1, 1);
  EXPECT_TRUE(SegmentIntersectsRect({0.5, 0.5}, {2, 2}, r));   // endpoint in
  EXPECT_TRUE(SegmentIntersectsRect({-1, 0.5}, {2, 0.5}, r));  // pass through
  EXPECT_TRUE(SegmentIntersectsRect({-1, -1}, {1, 3}, r));     // cut corner?
  EXPECT_FALSE(SegmentIntersectsRect({-1, -1}, {-0.5, 3}, r));
  EXPECT_FALSE(SegmentIntersectsRect({2, 2}, {3, 3}, r));
  // Touching an edge counts (closed semantics).
  EXPECT_TRUE(SegmentIntersectsRect({1, 0.2}, {2, 0.2}, r));
}

TEST(Rect, BasicOps) {
  Rect r = Rect::Of(0, 0, 2, 1);
  EXPECT_TRUE(r.Contains(Point{1, 0.5}));
  EXPECT_TRUE(r.Contains(Point{0, 0}));  // closed
  EXPECT_FALSE(r.Contains(Point{2.1, 0.5}));
  EXPECT_DOUBLE_EQ(r.Area(), 2.0);
  EXPECT_DOUBLE_EQ(r.Perimeter(), 6.0);
  Rect e;
  EXPECT_TRUE(e.IsEmpty());
  e.Expand(Point{1, 1});
  EXPECT_FALSE(e.IsEmpty());
  EXPECT_DOUBLE_EQ(e.Area(), 0.0);
}

TEST(Rect, Enlargement) {
  Rect r = Rect::Of(0, 0, 1, 1);
  EXPECT_DOUBLE_EQ(r.Enlargement(Rect::Of(0.2, 0.2, 0.8, 0.8)), 0.0);
  EXPECT_DOUBLE_EQ(r.Enlargement(Rect::Of(0, 0, 2, 1)), 1.0);
}

TEST(Polygon, EdgeIterationAndArea) {
  Polygon sq = UnitSquare();
  EXPECT_EQ(sq.num_edges(), 4u);
  auto [a, b] = sq.Edge(3);
  EXPECT_EQ(a, (Point{0, 1}));
  EXPECT_EQ(b, (Point{0, 0}));  // closing edge wraps
  EXPECT_DOUBLE_EQ(sq.Area(), 1.0);
  EXPECT_DOUBLE_EQ(sq.SignedArea(), 1.0);  // CCW
}

TEST(Polygon, HoleAreaSubtracts) {
  Polygon p = SquareWithHole();
  // Hole ring as listed is CCW too; SignedArea adds. Area semantics for
  // even-odd polygons are tested through containment instead.
  EXPECT_EQ(p.rings().size(), 2u);
  EXPECT_EQ(p.num_edges(), 8u);
}

TEST(Polygon, MbrCoversAllVertices) {
  Polygon p = LShape();
  EXPECT_EQ(p.mbr().lo, (Point{0, 0}));
  EXPECT_EQ(p.mbr().hi, (Point{2, 2}));
}

TEST(Polygon, SimplicityCheck) {
  EXPECT_TRUE(UnitSquare().IsSimple());
  // Bowtie: self-intersecting.
  Polygon bowtie({{0, 0}, {1, 1}, {1, 0}, {0, 1}});
  EXPECT_FALSE(bowtie.IsSimple());
}

TEST(Pip, SquareInterior) {
  Polygon sq = UnitSquare();
  EXPECT_TRUE(ContainsPoint(sq, {0.5, 0.5}));
  EXPECT_FALSE(ContainsPoint(sq, {1.5, 0.5}));
  EXPECT_FALSE(ContainsPoint(sq, {-0.1, 0.5}));
}

TEST(Pip, BoundaryIsCovered) {
  // ST_Covers semantics: edges and vertices count as inside.
  Polygon sq = UnitSquare();
  EXPECT_TRUE(ContainsPoint(sq, {0, 0.5}));
  EXPECT_TRUE(ContainsPoint(sq, {1, 1}));
  EXPECT_TRUE(ContainsPoint(sq, {0.5, 0}));
  EXPECT_TRUE(OnBoundary(sq, {0.5, 1}));
  EXPECT_FALSE(OnBoundary(sq, {0.5, 0.5}));
}

TEST(Pip, HoleExcluded) {
  Polygon p = SquareWithHole();
  EXPECT_TRUE(ContainsPoint(p, {0.1, 0.1}));
  EXPECT_FALSE(ContainsPoint(p, {0.5, 0.5}));      // inside the hole
  EXPECT_TRUE(ContainsPoint(p, {0.25, 0.5}));      // on the hole boundary
}

TEST(Pip, ConcaveShape) {
  Polygon l = LShape();
  EXPECT_TRUE(ContainsPoint(l, {0.5, 1.5}));
  EXPECT_TRUE(ContainsPoint(l, {1.5, 0.5}));
  EXPECT_FALSE(ContainsPoint(l, {1.5, 1.5}));  // the notch
}

TEST(Pip, CrossingAndWindingAgreeOnRandomStars) {
  Rng rng(1234);
  for (int iter = 0; iter < 50; ++iter) {
    Polygon p = RandomStarPolygon({0, 0}, 1.0, 12, iter + 1);
    for (int s = 0; s < 200; ++s) {
      Point q{rng.Uniform(-1.2, 1.2), rng.Uniform(-1.2, 1.2)};
      ASSERT_EQ(ContainsPoint(p, q), WindingContainsPoint(p, q))
          << "iter " << iter << " q=(" << q.x << "," << q.y << ")";
    }
  }
}

TEST(Pip, VertexRayDoesNotDoubleCount) {
  // A query point horizontally aligned with a vertex: the classic
  // ray-casting pitfall.
  Polygon diamond({{1, 0}, {2, 1}, {1, 2}, {0, 1}});
  EXPECT_TRUE(ContainsPoint(diamond, {1, 1}));
  EXPECT_FALSE(ContainsPoint(diamond, {-0.5, 1}));  // left of the vertex
  EXPECT_FALSE(ContainsPoint(diamond, {2.5, 1}));
}

TEST(Classify, SquareCases) {
  Polygon sq = UnitSquare();
  EXPECT_EQ(Classify(sq, Rect::Of(0.4, 0.4, 0.6, 0.6)),
            RegionRelation::kContained);
  EXPECT_EQ(Classify(sq, Rect::Of(2, 2, 3, 3)), RegionRelation::kDisjoint);
  EXPECT_EQ(Classify(sq, Rect::Of(0.5, 0.5, 2, 2)),
            RegionRelation::kIntersects);
  // Rect covering the whole polygon straddles the boundary.
  EXPECT_EQ(Classify(sq, Rect::Of(-1, -1, 2, 2)),
            RegionRelation::kIntersects);
}

TEST(Classify, HoleMakesInnerRectDisjoint) {
  Polygon p = SquareWithHole();
  EXPECT_EQ(Classify(p, Rect::Of(0.4, 0.4, 0.6, 0.6)),
            RegionRelation::kDisjoint);
  EXPECT_EQ(Classify(p, Rect::Of(0.05, 0.05, 0.15, 0.15)),
            RegionRelation::kContained);
}

TEST(Classify, AgreesWithSampling) {
  Rng rng(777);
  for (int iter = 0; iter < 30; ++iter) {
    Polygon p = RandomStarPolygon({0, 0}, 1.0, 14, 1000 + iter);
    for (int r = 0; r < 60; ++r) {
      double x = rng.Uniform(-1.2, 1.0);
      double y = rng.Uniform(-1.2, 1.0);
      Rect rect = Rect::Of(x, y, x + rng.Uniform(0.01, 0.4),
                           y + rng.Uniform(0.01, 0.4));
      RegionRelation rel = Classify(p, rect);
      // Sample points inside the rect and check consistency.
      int inside = 0, total = 64;
      for (int s = 0; s < total; ++s) {
        Point q{rng.Uniform(rect.lo.x, rect.hi.x),
                rng.Uniform(rect.lo.y, rect.hi.y)};
        inside += ContainsPoint(p, q) ? 1 : 0;
      }
      if (rel == RegionRelation::kContained) {
        ASSERT_EQ(inside, total);
      } else if (rel == RegionRelation::kDisjoint) {
        ASSERT_EQ(inside, 0);
      }
      // kIntersects is conservative: no assertion.
    }
  }
}

TEST(Distance, InsideIsZero) {
  Polygon sq = UnitSquare();
  EXPECT_EQ(DistanceToPolygonMeters(sq, {0.5, 0.5}), 0);
  EXPECT_EQ(DistanceToPolygonMeters(sq, {0, 0}), 0);  // boundary covered
}

TEST(Distance, MatchesLatitudeScale) {
  Polygon sq = UnitSquare();
  // 0.001 degrees north of the top edge at y=1: ~110.6 m.
  double d = DistanceToPolygonMeters(sq, {0.5, 1.001});
  EXPECT_NEAR(d, 110.574, 1.0);
  // 0.001 degrees east of the right edge at lat ~0.5: ~111.3 m * cos(0.5°).
  d = DistanceToPolygonMeters(sq, {1.001, 0.5});
  EXPECT_NEAR(d, 111.32 * std::cos(0.5 * 0.017453292519943295), 1.0);
}

TEST(EdgeGrid, ContainsMatchesRawPipOnPartitions) {
  PartitionSpec spec;
  spec.mbr = Rect::Of(-74.26, 40.49, -73.69, 40.92);
  spec.nx = spec.ny = 4;
  spec.edge_depth = 4;
  spec.seed = 5;
  auto polys = JitteredPartition(spec);
  Rng rng(4242);
  for (const Polygon& p : polys) {
    EdgeGrid grid(p);
    for (int s = 0; s < 400; ++s) {
      Point q{rng.Uniform(spec.mbr.lo.x, spec.mbr.hi.x),
              rng.Uniform(spec.mbr.lo.y, spec.mbr.hi.y)};
      ASSERT_EQ(grid.ContainsPoint(q), ContainsPoint(p, q))
          << "q=(" << q.x << "," << q.y << ")";
    }
  }
}

TEST(EdgeGrid, ClassifyMatchesExactClassify) {
  PartitionSpec spec;
  spec.mbr = Rect::Of(0, 0, 10, 10);
  spec.nx = spec.ny = 3;
  spec.edge_depth = 3;
  spec.seed = 6;
  auto polys = JitteredPartition(spec);
  Rng rng(888);
  for (const Polygon& p : polys) {
    EdgeGrid grid(p);
    for (int s = 0; s < 300; ++s) {
      double x = rng.Uniform(-0.5, 9.5);
      double y = rng.Uniform(-0.5, 9.5);
      Rect rect = Rect::Of(x, y, x + rng.Uniform(0.01, 1.0),
                           y + rng.Uniform(0.01, 1.0));
      ASSERT_EQ(grid.Classify(rect), Classify(p, rect));
    }
  }
}

TEST(EdgeGrid, StarPolygonAgreement) {
  for (int iter = 0; iter < 10; ++iter) {
    Polygon p = RandomStarPolygon({5, 5}, 3.0, 30, 50 + iter);
    EdgeGrid grid(p);
    Rng rng(iter);
    for (int s = 0; s < 500; ++s) {
      Point q{rng.Uniform(1, 9), rng.Uniform(1, 9)};
      ASSERT_EQ(grid.ContainsPoint(q), ContainsPoint(p, q));
    }
  }
}

TEST(PolygonGen, PartitionTilesExactly) {
  PartitionSpec spec;
  spec.mbr = Rect::Of(0, 0, 1, 1);
  spec.nx = 5;
  spec.ny = 4;
  spec.edge_depth = 3;
  spec.seed = 9;
  auto polys = JitteredPartition(spec);
  ASSERT_EQ(polys.size(), 20u);
  double total = 0;
  for (const Polygon& p : polys) total += p.Area();
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(PolygonGen, EveryInteriorPointInExactlyOnePolygon) {
  PartitionSpec spec;
  spec.mbr = Rect::Of(-74.26, 40.49, -73.69, 40.92);
  spec.nx = spec.ny = 6;
  spec.edge_depth = 3;
  spec.seed = 10;
  auto polys = JitteredPartition(spec);
  Rng rng(11);
  int boundary_hits = 0;
  for (int s = 0; s < 2000; ++s) {
    Point q{rng.Uniform(spec.mbr.lo.x, spec.mbr.hi.x),
            rng.Uniform(spec.mbr.lo.y, spec.mbr.hi.y)};
    int owners = 0;
    for (const Polygon& p : polys) owners += ContainsPoint(p, q) ? 1 : 0;
    // Random points hit shared boundaries with probability ~0; owners == 2
    // would indicate a genuine overlap.
    if (owners != 1) ++boundary_hits;
  }
  EXPECT_EQ(boundary_hits, 0);
}

TEST(PolygonGen, VertexCountMatchesDepth) {
  PartitionSpec spec;
  spec.mbr = Rect::Of(0, 0, 4, 4);
  spec.nx = spec.ny = 4;
  spec.edge_depth = 3;
  spec.seed = 12;
  auto polys = JitteredPartition(spec);
  // Interior polygons: 4 sides * 2^3 segments = 32 vertices.
  const Polygon& inner = polys[1 * 4 + 1];
  EXPECT_EQ(inner.num_vertices(), 32u);
}

TEST(PolygonGen, DeterministicAcrossCalls) {
  PartitionSpec spec;
  spec.mbr = Rect::Of(0, 0, 2, 2);
  spec.nx = spec.ny = 3;
  spec.edge_depth = 4;
  spec.seed = 13;
  auto a = JitteredPartition(spec);
  auto b = JitteredPartition(spec);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].rings()[0].size(), b[i].rings()[0].size());
    for (size_t v = 0; v < a[i].rings()[0].size(); ++v) {
      ASSERT_EQ(a[i].rings()[0][v], b[i].rings()[0][v]);
    }
  }
}

TEST(PolygonGen, PartitionPolygonsAreSimple) {
  PartitionSpec spec;
  spec.mbr = Rect::Of(0, 0, 3, 3);
  spec.nx = spec.ny = 3;
  spec.edge_depth = 4;
  spec.seed = 21;
  auto polys = JitteredPartition(spec);
  for (const Polygon& p : polys) {
    ASSERT_TRUE(p.IsSimple());
  }
}

TEST(PolygonGen, OverlapDilationProducesOverlap) {
  PartitionSpec spec;
  spec.mbr = Rect::Of(0, 0, 2, 2);
  spec.nx = spec.ny = 2;
  spec.edge_depth = 2;
  spec.seed = 14;
  spec.overlap_dilation = 0.15;
  auto polys = JitteredPartition(spec);
  Rng rng(15);
  int multi_owner = 0;
  for (int s = 0; s < 3000; ++s) {
    Point q{rng.Uniform(0, 2), rng.Uniform(0, 2)};
    int owners = 0;
    for (const Polygon& p : polys) owners += ContainsPoint(p, q) ? 1 : 0;
    multi_owner += owners > 1 ? 1 : 0;
  }
  EXPECT_GT(multi_owner, 0);
}

}  // namespace
}  // namespace actjoin::geom
