// Tests for the network front-end (src/net/): the wire codec must round-
// trip and reject malformed bytes typed, admission control must enforce
// each policy knob with the right verdict, and the acceptance contract of
// the subsystem — results fetched through JoinClient over loopback are
// byte-identical to in-process JoinService::Submit, and admission
// rejections come back as typed wire errors without blocking or dropping
// the connection. Suites are named Net* so the TSan CI job's ^(Service|Net)
// filter runs the concurrent ones under ThreadSanitizer.
//
// Threading discipline: gtest assertions run only on the main thread;
// client threads record observations into plain structs that are joined
// and then asserted.
//
// Seeding convention (full rationale in util_test.cc): random data comes
// only from the workload factories with explicit literal seeds.

#include <algorithm>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "act/join.h"
#include "geo/grid.h"
#include "net/admission.h"
#include "net/join_client.h"
#include "net/join_server.h"
#include "net/socket.h"
#include "net/wire.h"
#include "service/join_service.h"
#include "service/sharded_index.h"
#include "util/timer.h"
#include "workloads/datasets.h"

namespace actjoin::net {
namespace {

using act::JoinMode;
using geo::Grid;
using service::JoinService;
using service::QueryBatch;
using service::ServiceOptions;
using service::ShardedIndex;
using service::ShardingOptions;

std::shared_ptr<const ShardedIndex> BuildShared(
    const std::vector<geom::Polygon>& polygons, const Grid& grid,
    ShardingOptions opts) {
  return std::make_shared<const ShardedIndex>(
      ShardedIndex::Build(polygons, grid, opts));
}

QueryBatch MakeBatch(const wl::PointSet& pts, JoinMode mode) {
  return {pts.cell_ids(), pts.points(), mode};
}

/// Everything in JoinStats is deterministic for a fixed input and index
/// except the wall-clock `seconds`.
void ExpectStatsEqual(const act::JoinStats& got, const act::JoinStats& want) {
  EXPECT_EQ(got.num_points, want.num_points);
  EXPECT_EQ(got.matched_points, want.matched_points);
  EXPECT_EQ(got.result_pairs, want.result_pairs);
  EXPECT_EQ(got.true_hit_refs, want.true_hit_refs);
  EXPECT_EQ(got.candidate_refs, want.candidate_refs);
  EXPECT_EQ(got.pip_tests, want.pip_tests);
  EXPECT_EQ(got.pip_hits, want.pip_hits);
  EXPECT_EQ(got.sth_points, want.sth_points);
  EXPECT_EQ(got.counts, want.counts);
}

// --- Wire codec ------------------------------------------------------------

TEST(NetWire, EmptyFrameRoundTrip) {
  std::vector<uint8_t> frame = EncodeEmptyFrame(MessageType::kPing, 77);
  ASSERT_EQ(frame.size(), kFrameHeaderBytes);

  FrameHeader header;
  size_t frame_bytes = 0;
  WireError err = WireError::kNone;
  ASSERT_EQ(TryParseFrame(frame, kDefaultMaxFrameBytes, &header, &frame_bytes,
                          &err),
            FrameParse::kFrame);
  EXPECT_EQ(frame_bytes, frame.size());
  EXPECT_EQ(header.version, kWireVersion);
  EXPECT_EQ(header.type, MessageType::kPing);
  EXPECT_EQ(header.request_id, 77u);
  EXPECT_EQ(header.payload_bytes, 0u);
}

TEST(NetWire, QueryBatchRoundTrip) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 64, grid, 51);
  for (JoinMode mode : {JoinMode::kExact, JoinMode::kApproximate}) {
    QueryBatch batch = MakeBatch(pts, mode);
    util::ByteWriter w;
    AppendQueryBatch(batch, &w);
    QueryBatch got;
    ASSERT_TRUE(DecodeQueryBatch(w.bytes(), &got));
    EXPECT_EQ(got.mode, mode);
    EXPECT_EQ(got.cell_ids, batch.cell_ids);
    EXPECT_EQ(got.points, batch.points);
  }
}

TEST(NetWire, QueryBatchRejectsMalformedPayloads) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 8, grid, 52);
  util::ByteWriter w;
  AppendQueryBatch(MakeBatch(pts, JoinMode::kExact), &w);
  std::vector<uint8_t> good = w.bytes();

  QueryBatch out;
  // Truncation at every byte boundary must fail, never crash or misread.
  for (size_t cut = 0; cut < good.size(); ++cut) {
    std::vector<uint8_t> bad(good.begin(),
                             good.begin() + static_cast<ptrdiff_t>(cut));
    EXPECT_FALSE(DecodeQueryBatch(bad, &out)) << "cut=" << cut;
  }
  // Trailing garbage is as malformed as truncation.
  std::vector<uint8_t> padded = good;
  padded.push_back(0);
  EXPECT_FALSE(DecodeQueryBatch(padded, &out));
  // An invalid mode byte.
  std::vector<uint8_t> bad_mode = good;
  bad_mode[0] = 7;
  EXPECT_FALSE(DecodeQueryBatch(bad_mode, &out));
  // A forged count that disagrees with the payload size.
  std::vector<uint8_t> forged = good;
  forged[4] = static_cast<uint8_t>(forged[4] + 1);
  EXPECT_FALSE(DecodeQueryBatch(forged, &out));
}

TEST(NetWire, JoinResultRoundTrip) {
  service::JoinResult result;
  result.epoch = 5;
  result.queue_wait_ms = 0.25;
  result.service_ms = 1.75;
  result.stats.num_points = 100;
  result.stats.matched_points = 60;
  result.stats.result_pairs = 70;
  result.stats.true_hit_refs = 40;
  result.stats.candidate_refs = 30;
  result.stats.pip_tests = 30;
  result.stats.pip_hits = 30;
  result.stats.sth_points = 40;
  result.stats.seconds = 0.001;
  result.stats.counts = {3, 0, 7, 60};

  util::ByteWriter w;
  AppendJoinResult(result, &w);
  service::JoinResult got;
  ASSERT_TRUE(DecodeJoinResult(w.bytes(), &got));
  EXPECT_EQ(got.epoch, result.epoch);
  EXPECT_EQ(got.queue_wait_ms, result.queue_wait_ms);
  EXPECT_EQ(got.service_ms, result.service_ms);
  EXPECT_EQ(got.stats.seconds, result.stats.seconds);
  ExpectStatsEqual(got.stats, result.stats);

  // Truncations fail typed.
  std::vector<uint8_t> bytes = w.bytes();
  for (size_t cut : {size_t{0}, size_t{7}, bytes.size() - 1}) {
    std::vector<uint8_t> bad(bytes.begin(),
                             bytes.begin() + static_cast<ptrdiff_t>(cut));
    service::JoinResult out;
    EXPECT_FALSE(DecodeJoinResult(bad, &out)) << "cut=" << cut;
  }

  // A forged counts_len chosen so that counts_len * 8 wraps to match the
  // remaining byte count must be rejected by the overflow guard, not
  // handed to a 2^61-element resize.
  service::JoinResult empty_counts;
  util::ByteWriter w2;
  AppendJoinResult(empty_counts, &w2);
  std::vector<uint8_t> forged = w2.bytes();
  ASSERT_GE(forged.size(), 8u);
  uint64_t huge = uint64_t{1} << 61;  // * 8 == 0 mod 2^64
  for (int i = 0; i < 8; ++i) {
    forged[forged.size() - 8 + static_cast<size_t>(i)] =
        static_cast<uint8_t>(huge >> (8 * i));
  }
  service::JoinResult out;
  EXPECT_FALSE(DecodeJoinResult(forged, &out));
}

TEST(NetWire, JoinBatchHeaderCarriesDatasetId) {
  // The v1-reserved u16 at offset 6 is the dataset id in v2: it must ride
  // in the header (so the server can route and reject unknown datasets
  // without decoding the payload) and parse back exactly.
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 4, grid, 50);
  QueryBatch batch = MakeBatch(pts, JoinMode::kExact);
  batch.dataset_id = 513;
  std::vector<uint8_t> frame = EncodeJoinBatchFrame(12, batch);

  FrameHeader header;
  size_t frame_bytes = 0;
  WireError err = WireError::kNone;
  ASSERT_EQ(TryParseFrame(frame, kDefaultMaxFrameBytes, &header, &frame_bytes,
                          &err),
            FrameParse::kFrame);
  EXPECT_EQ(header.dataset_id, 513u);
  EXPECT_EQ(header.request_id, 12u);
  // Non-join frames carry dataset 0 — and the parser *enforces* it, so
  // the field stays validated extension space on every other type.
  std::vector<uint8_t> ping = EncodeEmptyFrame(MessageType::kPing, 1);
  ASSERT_EQ(TryParseFrame(ping, kDefaultMaxFrameBytes, &header, &frame_bytes,
                          &err),
            FrameParse::kFrame);
  EXPECT_EQ(header.dataset_id, 0u);
  ping[6] = 1;  // nonzero dataset id on a PING: malformed
  EXPECT_EQ(TryParseFrame(ping, kDefaultMaxFrameBytes, &header, &frame_bytes,
                          &err),
            FrameParse::kProtocolError);
  EXPECT_EQ(err, WireError::kMalformedFrame);
}

TEST(NetWire, DatasetListRoundTripAndMalformedRejection) {
  std::vector<service::DatasetInfo> datasets;
  datasets.push_back({0, "zones", 3, 289, 8});
  datasets.push_back({1, "census-2020", 1, 39184, 16});
  util::ByteWriter w;
  AppendDatasetList(datasets, &w);

  std::vector<service::DatasetInfo> got;
  ASSERT_TRUE(DecodeDatasetList(w.bytes(), &got));
  EXPECT_EQ(got, datasets);

  // Truncation at every byte boundary fails typed, never crashes.
  std::vector<uint8_t> good = w.bytes();
  for (size_t cut = 0; cut < good.size(); ++cut) {
    std::vector<uint8_t> bad(good.begin(),
                             good.begin() + static_cast<ptrdiff_t>(cut));
    EXPECT_FALSE(DecodeDatasetList(bad, &got)) << "cut=" << cut;
  }
  // Trailing garbage is as malformed as truncation.
  std::vector<uint8_t> padded = good;
  padded.push_back(0);
  EXPECT_FALSE(DecodeDatasetList(padded, &got));
  // A forged count cannot over-allocate or mis-decode.
  std::vector<uint8_t> forged = good;
  forged[0] = 0xFF;
  forged[1] = 0xFF;
  EXPECT_FALSE(DecodeDatasetList(forged, &got));
}

TEST(NetWire, ServiceStatsRoundTrip) {
  service::ServiceStats stats;
  stats.completed_requests = 11;
  stats.rejected_requests = 9;
  stats.rejected_queue_full = 2;
  stats.rejected_shutdown = 1;
  stats.rejected_unknown_dataset = 4;
  stats.rejected_rate_limit = 3;
  stats.rejected_inflight_bytes = 2;
  stats.rejected_queue_watermark = 1;
  stats.cache_hits = 100;
  stats.cache_misses = 20;
  stats.points_served = 12345;
  stats.uptime_s = 2.5;
  stats.qps = 4.4;
  stats.points_per_s = 4938.0;
  stats.queue_wait_p50_ms = 0.1;
  stats.queue_wait_p99_ms = 0.9;
  stats.queue_wait_p999_ms = 1.8;
  stats.service_p50_ms = 1.5;
  stats.service_p99_ms = 6.5;
  stats.service_p999_ms = 21.0;
  stats.queue_depth = 3;
  stats.epoch = 8;
  stats.num_datasets = 2;
  stats.active_subscriptions = 5;
  stats.outstanding_requests = 7;
  stats.events_pushed = 900;
  stats.events_dropped = 13;
  stats.peers.push_back({"10.0.0.1", 40, 2});
  stats.peers.push_back({"10.0.0.2:5151", 1, 0});
  stats.dataset_splits.push_back({0, false, 8, 10000, 9, "default"});
  stats.dataset_splits.push_back({1, true, 3, 2345, 2, "census-2020"});

  util::ByteWriter w;
  AppendServiceStats(stats, &w);
  service::ServiceStats got;
  ASSERT_TRUE(DecodeServiceStats(w.bytes(), &got));
  EXPECT_EQ(got.completed_requests, stats.completed_requests);
  EXPECT_EQ(got.rejected_requests, stats.rejected_requests);
  EXPECT_EQ(got.rejected_queue_full, stats.rejected_queue_full);
  EXPECT_EQ(got.rejected_shutdown, stats.rejected_shutdown);
  EXPECT_EQ(got.rejected_rate_limit, stats.rejected_rate_limit);
  EXPECT_EQ(got.rejected_inflight_bytes, stats.rejected_inflight_bytes);
  EXPECT_EQ(got.rejected_queue_watermark, stats.rejected_queue_watermark);
  EXPECT_EQ(got.cache_hits, stats.cache_hits);
  EXPECT_EQ(got.cache_misses, stats.cache_misses);
  EXPECT_EQ(got.points_served, stats.points_served);
  EXPECT_EQ(got.uptime_s, stats.uptime_s);
  EXPECT_EQ(got.qps, stats.qps);
  EXPECT_EQ(got.queue_depth, stats.queue_depth);
  EXPECT_EQ(got.epoch, stats.epoch);
  EXPECT_EQ(got.rejected_unknown_dataset, stats.rejected_unknown_dataset);
  EXPECT_EQ(got.num_datasets, stats.num_datasets);
  EXPECT_EQ(got.peers, stats.peers);
  // v4 additions: tail quantiles and the per-dataset split table.
  EXPECT_EQ(got.queue_wait_p999_ms, stats.queue_wait_p999_ms);
  EXPECT_EQ(got.service_p999_ms, stats.service_p999_ms);
  EXPECT_EQ(got.dataset_splits, stats.dataset_splits);
  // v6 additions: standing-query gauges and push-channel counters.
  EXPECT_EQ(got.active_subscriptions, stats.active_subscriptions);
  EXPECT_EQ(got.outstanding_requests, stats.outstanding_requests);
  EXPECT_EQ(got.events_pushed, stats.events_pushed);
  EXPECT_EQ(got.events_dropped, stats.events_dropped);

  // The trailing tables are length-delimited: truncating inside fails.
  std::vector<uint8_t> bytes = w.bytes();
  std::vector<uint8_t> bad(bytes.begin(), bytes.end() - 1);
  EXPECT_FALSE(DecodeServiceStats(bad, &got));
}

TEST(NetWire, TracedJoinResultRoundTripAndRespondPatch) {
  service::JoinResult result;
  result.epoch = 3;
  result.queue_wait_ms = 0.5;
  result.service_ms = 2.0;
  result.stats.num_points = 10;
  result.stats.counts = {1, 2};
  result.trace.enabled = true;
  result.trace.request_id = 99;
  result.trace.at(service::TraceStage::kAdmission) = 1.5;
  result.trace.at(service::TraceStage::kDecode) = 2.5;
  result.trace.at(service::TraceStage::kQueue) = 500.0;
  result.trace.at(service::TraceStage::kDecompose) = 10.0;
  result.trace.at(service::TraceStage::kProbe) = 1800.0;
  result.trace.at(service::TraceStage::kMerge) = 190.0;
  // Respond cannot know itself at encode time: left zero, patched below.

  util::ByteWriter w;
  AppendJoinResult(result, &w);
  service::JoinResult got;
  ASSERT_TRUE(DecodeJoinResult(w.bytes(), &got));
  EXPECT_EQ(got.trace, result.trace);

  // Truncating inside the trace block fails typed.
  std::vector<uint8_t> bytes = w.bytes();
  for (size_t cut = 1; cut <= 8 * service::kNumTraceStages + 8; cut += 7) {
    std::vector<uint8_t> bad(bytes.begin(),
                             bytes.begin() + static_cast<ptrdiff_t>(
                                                 bytes.size() - cut));
    EXPECT_FALSE(DecodeJoinResult(bad, &got)) << "cut=" << cut;
  }
  // A traced flag above 1 (or dirty pad bytes) is malformed.
  std::vector<uint8_t> bad_flag = bytes;
  const size_t flag_at = bytes.size() - (8 + 8 * service::kNumTraceStages) - 4;
  bad_flag[flag_at] = 2;
  EXPECT_FALSE(DecodeJoinResult(bad_flag, &got));
  bad_flag = bytes;
  bad_flag[flag_at + 1] = 1;
  EXPECT_FALSE(DecodeJoinResult(bad_flag, &got));

  // The server patches the measured respond time into the encoded frame's
  // last f64 just before handing it to the event loop.
  std::vector<uint8_t> frame = EncodeJoinResultFrame(99, result);
  PatchRespondStage(&frame, 12.5);
  FrameHeader header;
  size_t frame_bytes = 0;
  WireError err = WireError::kNone;
  ASSERT_EQ(TryParseFrame(frame, kDefaultMaxFrameBytes, &header, &frame_bytes,
                          &err),
            FrameParse::kFrame);
  ASSERT_TRUE(DecodeJoinResult(
      std::span(frame).subspan(kFrameHeaderBytes, header.payload_bytes),
      &got));
  EXPECT_EQ(got.trace.at(service::TraceStage::kRespond), 12.5);
  result.trace.at(service::TraceStage::kRespond) = 12.5;
  EXPECT_EQ(got.trace, result.trace);

  // An untraced result round-trips with a disabled, all-zero context.
  service::JoinResult untraced;
  untraced.stats.counts = {4};
  util::ByteWriter w2;
  AppendJoinResult(untraced, &w2);
  ASSERT_TRUE(DecodeJoinResult(w2.bytes(), &got));
  EXPECT_FALSE(got.trace.enabled);
  EXPECT_EQ(got.trace.TotalMicros(), 0.0);
}

TEST(NetWire, JoinResultCounterSectionRoundTripAndPatch) {
  // v7: a traced result with stage_perf_counters on carries the hardware
  // counter section — availability flag plus per-stage cycle /
  // instruction / LLC-miss triples.
  service::JoinResult result;
  result.epoch = 2;
  result.stats.counts = {3, 1};
  result.trace.enabled = true;
  result.trace.request_id = 7;
  result.trace.at(service::TraceStage::kProbe) = 900.0;
  result.trace.counters_enabled = true;
  result.trace.counters_available = true;
  for (int s = 0; s < service::kNumTraceStages; ++s) {
    const auto u = static_cast<uint64_t>(s);
    result.trace.stage_counters[static_cast<size_t>(s)] = {
        1000 * u + 1, 2000 * u + 2, 30 * u};
  }

  util::ByteWriter w;
  AppendJoinResult(result, &w);
  service::JoinResult got;
  ASSERT_TRUE(DecodeJoinResult(w.bytes(), &got));
  EXPECT_EQ(got.trace, result.trace);
  EXPECT_TRUE(got.trace.counters_available);

  const std::vector<uint8_t> bytes = w.bytes();
  constexpr size_t kCounterBytes = 8 + 24 * service::kNumTraceStages;
  constexpr size_t kTraceBytes = 8 + 8 * service::kNumTraceStages;
  // Truncation anywhere inside the counter section fails typed.
  for (size_t cut = 1; cut <= kCounterBytes; cut += 11) {
    std::vector<uint8_t> bad(
        bytes.begin(), bytes.begin() + static_cast<ptrdiff_t>(bytes.size() - cut));
    EXPECT_FALSE(DecodeJoinResult(bad, &got)) << "cut=" << cut;
  }
  // The availability byte admits only 0 / 1, and its 7 pad bytes must be
  // clean.
  std::vector<uint8_t> bad = bytes;
  const size_t avail_at = bytes.size() - kCounterBytes;
  bad[avail_at] = 2;
  EXPECT_FALSE(DecodeJoinResult(bad, &got));
  bad = bytes;
  bad[avail_at + 3] = 1;
  EXPECT_FALSE(DecodeJoinResult(bad, &got));
  // A counter section without a trace block (flags bit set, traced clear)
  // is malformed: the section is defined as a traced extension.
  bad = bytes;
  const size_t traced_at = bytes.size() - kCounterBytes - kTraceBytes - 4;
  bad[traced_at] = 0;
  EXPECT_FALSE(DecodeJoinResult(bad, &got));

  // The counter-aware respond patch lands both the f64 stage time and the
  // respond triple without disturbing anything around them.
  std::vector<uint8_t> frame = EncodeJoinResultFrame(7, result);
  PatchRespondStageWithCounters(&frame, 33.25, {111, 222, 3});
  FrameHeader header;
  size_t frame_bytes = 0;
  WireError err = WireError::kNone;
  ASSERT_EQ(TryParseFrame(frame, kDefaultMaxFrameBytes, &header, &frame_bytes,
                          &err),
            FrameParse::kFrame);
  ASSERT_TRUE(DecodeJoinResult(
      std::span(frame).subspan(kFrameHeaderBytes, header.payload_bytes),
      &got));
  EXPECT_EQ(got.trace.at(service::TraceStage::kRespond), 33.25);
  const util::StageCounterSample respond =
      got.trace.counters(service::TraceStage::kRespond);
  EXPECT_EQ(respond.cycles, 111u);
  EXPECT_EQ(respond.instructions, 222u);
  EXPECT_EQ(respond.llc_misses, 3u);
  EXPECT_EQ(got.trace.counters(service::TraceStage::kProbe),
            result.trace.counters(service::TraceStage::kProbe));

  // Counters off: the traced result stays byte-identical to v6's shape
  // (no section, flags byte zero).
  result.trace.counters_enabled = false;
  util::ByteWriter w2;
  AppendJoinResult(result, &w2);
  ASSERT_TRUE(DecodeJoinResult(w2.bytes(), &got));
  EXPECT_FALSE(got.trace.counters_enabled);
  EXPECT_EQ(w2.bytes().size(), bytes.size() - kCounterBytes);
}

TEST(NetWire, GetMetricsCodecRejectsMalformed) {
  for (MetricsFormat format : {MetricsFormat::kBinary, MetricsFormat::kText}) {
    std::vector<uint8_t> frame = EncodeGetMetricsFrame(21, format);
    FrameHeader header;
    size_t frame_bytes = 0;
    WireError err = WireError::kNone;
    ASSERT_EQ(TryParseFrame(frame, kDefaultMaxFrameBytes, &header,
                            &frame_bytes, &err),
              FrameParse::kFrame);
    EXPECT_EQ(header.type, MessageType::kGetMetrics);
    EXPECT_EQ(header.request_id, 21u);
    std::span<const uint8_t> payload =
        std::span(frame).subspan(kFrameHeaderBytes, header.payload_bytes);
    MetricsFormat got = MetricsFormat::kBinary;
    ASSERT_TRUE(DecodeGetMetrics(payload, &got));
    EXPECT_EQ(got, format);

    // Unknown format byte, dirty pad, truncation, trailing garbage: all
    // malformed, never a silent default.
    std::vector<uint8_t> bad(payload.begin(), payload.end());
    bad[0] = 2;
    EXPECT_FALSE(DecodeGetMetrics(bad, &got));
    bad.assign(payload.begin(), payload.end());
    bad[1] = 1;
    EXPECT_FALSE(DecodeGetMetrics(bad, &got));
    EXPECT_FALSE(DecodeGetMetrics(payload.first(3), &got));
    bad.assign(payload.begin(), payload.end());
    bad.push_back(0);
    EXPECT_FALSE(DecodeGetMetrics(bad, &got));
  }
}

TEST(NetWire, MetricsReportRoundTripAndRejectsMalformed) {
  MetricsReport report;
  report.samples.push_back({"requests_completed_total", "", 0, 42.0});
  report.samples.push_back(
      {"dataset_epoch", "dataset=\"census\"", 1, 7.0});
  report.samples.push_back({"service_seconds_p99", "", 2, 0.0065});
  report.events.push_back({1, 0.5, "swap", "default", "epoch 2"});
  report.events.push_back({2, 1.25, "gc", "/tmp/store", "3 file(s) removed"});
  service::SlowQuery slow;
  slow.request_id = 9;
  slow.dataset_id = 1;
  slow.num_points = 1000;
  slow.epoch = 2;
  slow.queue_wait_us = 80.0;
  slow.service_us = 6500.0;
  report.slow_queries.push_back(slow);

  util::ByteWriter w;
  AppendMetricsReport(report, &w);
  MetricsReport got;
  ASSERT_TRUE(DecodeMetricsReport(w.bytes(), &got));
  EXPECT_EQ(got.samples, report.samples);
  EXPECT_EQ(got.events, report.events);
  EXPECT_EQ(got.slow_queries, report.slow_queries);

  // Truncation at every byte boundary fails typed, never crashes.
  std::vector<uint8_t> good = w.bytes();
  for (size_t cut = 0; cut < good.size(); ++cut) {
    std::vector<uint8_t> bad(good.begin(),
                             good.begin() + static_cast<ptrdiff_t>(cut));
    EXPECT_FALSE(DecodeMetricsReport(bad, &got)) << "cut=" << cut;
  }
  // Trailing garbage, forged sample count, out-of-range kind, dirty pad.
  std::vector<uint8_t> bad = good;
  bad.push_back(0);
  EXPECT_FALSE(DecodeMetricsReport(bad, &got));
  bad = good;
  bad[0] = 0xFF;
  bad[1] = 0xFF;
  bad[2] = 0xFF;
  bad[3] = 0xFF;
  EXPECT_FALSE(DecodeMetricsReport(bad, &got));
  // First sample's kind byte sits after the count and two length-prefixed
  // strings (u32 len + "requests_completed_total", u32 empty labels).
  const size_t kind_at = 4 + (4 + 24) + 4;
  bad = good;
  bad[kind_at] = 3;
  EXPECT_FALSE(DecodeMetricsReport(bad, &got));
  bad = good;
  bad[kind_at + 1] = 1;
  EXPECT_FALSE(DecodeMetricsReport(bad, &got));

  // METRICS_RESULT wraps either form behind a format byte.
  std::vector<uint8_t> binary_frame = EncodeMetricsReportFrame(7, report);
  FrameHeader header;
  size_t frame_bytes = 0;
  WireError err = WireError::kNone;
  ASSERT_EQ(TryParseFrame(binary_frame, kDefaultMaxFrameBytes, &header,
                          &frame_bytes, &err),
            FrameParse::kFrame);
  EXPECT_EQ(header.type, MessageType::kMetricsResult);
  MetricsFormat format = MetricsFormat::kText;
  std::string text;
  got = MetricsReport{};
  ASSERT_TRUE(DecodeMetricsResult(
      std::span(binary_frame)
          .subspan(kFrameHeaderBytes, header.payload_bytes),
      &format, &text, &got));
  EXPECT_EQ(format, MetricsFormat::kBinary);
  EXPECT_EQ(got.samples, report.samples);

  const std::string exposition = "# TYPE actjoin_up gauge\nactjoin_up 1\n";
  std::vector<uint8_t> text_frame = EncodeMetricsTextFrame(8, exposition);
  ASSERT_EQ(TryParseFrame(text_frame, kDefaultMaxFrameBytes, &header,
                          &frame_bytes, &err),
            FrameParse::kFrame);
  ASSERT_TRUE(DecodeMetricsResult(
      std::span(text_frame).subspan(kFrameHeaderBytes, header.payload_bytes),
      &format, &text, &got));
  EXPECT_EQ(format, MetricsFormat::kText);
  EXPECT_EQ(text, exposition);
}

TEST(NetWire, ErrorFrameRoundTripAndRecoverability) {
  std::vector<uint8_t> frame =
      EncodeErrorFrame(42, WireError::kRateLimited, "slow down");
  FrameHeader header;
  size_t frame_bytes = 0;
  WireError parse_err = WireError::kNone;
  ASSERT_EQ(TryParseFrame(frame, kDefaultMaxFrameBytes, &header, &frame_bytes,
                          &parse_err),
            FrameParse::kFrame);
  EXPECT_EQ(header.type, MessageType::kError);
  EXPECT_EQ(header.request_id, 42u);

  WireError code = WireError::kNone;
  std::string message;
  ASSERT_TRUE(DecodeError(
      std::span(frame).subspan(kFrameHeaderBytes, header.payload_bytes),
      &code, &message));
  EXPECT_EQ(code, WireError::kRateLimited);
  EXPECT_EQ(message, "slow down");

  EXPECT_TRUE(IsRecoverable(WireError::kRateLimited));
  EXPECT_TRUE(IsRecoverable(WireError::kQueueFull));
  EXPECT_TRUE(IsRecoverable(WireError::kUnknownType));
  EXPECT_FALSE(IsRecoverable(WireError::kMalformedFrame));
  EXPECT_FALSE(IsRecoverable(WireError::kUnsupportedVersion));
  EXPECT_FALSE(IsRecoverable(WireError::kFrameTooLarge));
}

TEST(NetWire, TryParseFrameEdges) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 4, grid, 53);
  std::vector<uint8_t> frame =
      EncodeJoinBatchFrame(9, MakeBatch(pts, JoinMode::kExact));

  FrameHeader header;
  size_t frame_bytes = 0;
  WireError err = WireError::kNone;
  // Every proper prefix asks for more data — partial reads are normal.
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    ASSERT_EQ(TryParseFrame(std::span(frame).first(cut), kDefaultMaxFrameBytes,
                            &header, &frame_bytes, &err),
              FrameParse::kNeedMoreData)
        << "cut=" << cut;
  }

  // Corrupt magic: protocol error, request id not trusted.
  std::vector<uint8_t> bad_magic = frame;
  bad_magic[0] ^= 0xFF;
  EXPECT_EQ(TryParseFrame(bad_magic, kDefaultMaxFrameBytes, &header,
                          &frame_bytes, &err),
            FrameParse::kProtocolError);
  EXPECT_EQ(err, WireError::kMalformedFrame);
  EXPECT_EQ(header.request_id, 0u);

  // Wrong version: typed, with the id echoed for the error response.
  std::vector<uint8_t> bad_version = frame;
  bad_version[4] = kWireVersion + 1;
  EXPECT_EQ(TryParseFrame(bad_version, kDefaultMaxFrameBytes, &header,
                          &frame_bytes, &err),
            FrameParse::kProtocolError);
  EXPECT_EQ(err, WireError::kUnsupportedVersion);
  EXPECT_EQ(header.request_id, 9u);

  // A v3 client (pre-metrics protocol) stays a *typed* rejection after the
  // v4 bump — old peers get kUnsupportedVersion, not a desync or a crash.
  bad_version[4] = 3;
  EXPECT_EQ(TryParseFrame(bad_version, kDefaultMaxFrameBytes, &header,
                          &frame_bytes, &err),
            FrameParse::kProtocolError);
  EXPECT_EQ(err, WireError::kUnsupportedVersion);
  EXPECT_EQ(header.request_id, 9u);

  // Over-limit payload length: typed before any allocation happens.
  EXPECT_EQ(TryParseFrame(frame, /*max_frame_bytes=*/64, &header,
                          &frame_bytes, &err),
            FrameParse::kProtocolError);
  EXPECT_EQ(err, WireError::kFrameTooLarge);
}

// --- Admission controller --------------------------------------------------

TEST(NetAdmission, RateLimitTokenBucket) {
  AdmissionPolicy policy;
  policy.rate_limit_qps = 1e-6;  // refill is negligible within the test
  policy.rate_burst = 2;
  AdmissionController ac(policy, /*queue_capacity=*/64);

  EXPECT_EQ(ac.TryAdmit(10, 0), Admission::kAdmitted);
  EXPECT_EQ(ac.TryAdmit(10, 0), Admission::kAdmitted);
  EXPECT_EQ(ac.TryAdmit(10, 0), Admission::kRateLimited);
  EXPECT_EQ(ac.TryAdmit(10, 0), Admission::kRateLimited);

  AdmissionController::Counters c = ac.counters();
  EXPECT_EQ(c.admitted, 2u);
  EXPECT_EQ(c.rate_limited, 2u);
  EXPECT_EQ(c.TotalRejected(), 2u);
  // Rate rejections reserve nothing.
  EXPECT_EQ(ac.in_flight_bytes(), 20u);
}

TEST(NetAdmission, InFlightByteBudget) {
  AdmissionPolicy policy;
  policy.max_in_flight_bytes = 100;
  AdmissionController ac(policy, 64);

  EXPECT_EQ(ac.TryAdmit(60, 0), Admission::kAdmitted);
  EXPECT_EQ(ac.TryAdmit(60, 0), Admission::kInFlightBytes);
  ac.Release(60);
  EXPECT_EQ(ac.TryAdmit(60, 0), Admission::kAdmitted);
  // A single request above the whole budget can never be admitted.
  ac.Release(60);
  EXPECT_EQ(ac.TryAdmit(101, 0), Admission::kInFlightBytes);
  EXPECT_EQ(ac.counters().inflight_bytes, 2u);
  EXPECT_EQ(ac.in_flight_bytes(), 0u);
}

TEST(NetAdmission, QueueDepthWatermark) {
  AdmissionPolicy policy;
  policy.queue_watermark = 0.5;
  AdmissionController ac(policy, /*queue_capacity=*/10);

  EXPECT_EQ(ac.TryAdmit(1, /*queue_depth=*/5), Admission::kAdmitted);
  EXPECT_EQ(ac.TryAdmit(1, /*queue_depth=*/6), Admission::kQueueWatermark);
  EXPECT_EQ(ac.counters().queue_watermark, 1u);
}

TEST(NetAdmission, RefundRestoresRateTokenAndBytes) {
  // Refund is the rollback for admissions whose request did no work: it
  // must return the in-flight bytes *and* the rate token (Release only
  // returns the bytes — the token stays spent for completed work).
  AdmissionPolicy policy;
  policy.rate_limit_qps = 1e-6;  // refill is negligible within the test
  policy.rate_burst = 2;
  AdmissionController ac(policy, /*queue_capacity=*/64);

  ASSERT_EQ(ac.TryAdmit(60, 0), Admission::kAdmitted);
  ac.Refund(60);
  EXPECT_EQ(ac.in_flight_bytes(), 0u);
  EXPECT_EQ(ac.counters().refunded, 1u);

  // The refunded token is spendable again: the full burst of 2 is still
  // available, and only the third admission rate-limits.
  ASSERT_EQ(ac.TryAdmit(10, 0), Admission::kAdmitted);
  ASSERT_EQ(ac.TryAdmit(10, 0), Admission::kAdmitted);
  EXPECT_EQ(ac.TryAdmit(10, 0), Admission::kRateLimited);

  // Refund never overfills past the burst ceiling.
  ac.Refund(10);
  ac.Refund(10);
  ASSERT_EQ(ac.TryAdmit(10, 0), Admission::kAdmitted);
  ASSERT_EQ(ac.TryAdmit(10, 0), Admission::kAdmitted);
  EXPECT_EQ(ac.TryAdmit(10, 0), Admission::kRateLimited);
}

TEST(NetAdmission, RateBucketsAreShardedByPeer) {
  // The ROADMAP item this exists for: a greedy client must drain only its
  // own bucket. Peer A exhausts its burst; peer B (and the anonymous ""
  // peer) still admit at full burst, and the per-peer counters attribute
  // every rejection to A.
  AdmissionPolicy policy;
  policy.rate_limit_qps = 1e-6;  // refill is negligible within the test
  policy.rate_burst = 2;
  AdmissionController ac(policy, /*queue_capacity=*/64);

  EXPECT_EQ(ac.TryAdmit(10, 0, "10.0.0.1"), Admission::kAdmitted);
  EXPECT_EQ(ac.TryAdmit(10, 0, "10.0.0.1"), Admission::kAdmitted);
  EXPECT_EQ(ac.TryAdmit(10, 0, "10.0.0.1"), Admission::kRateLimited);
  EXPECT_EQ(ac.TryAdmit(10, 0, "10.0.0.1"), Admission::kRateLimited);

  // A's exhaustion is invisible to B.
  EXPECT_EQ(ac.TryAdmit(10, 0, "10.0.0.2"), Admission::kAdmitted);
  EXPECT_EQ(ac.TryAdmit(10, 0, "10.0.0.2"), Admission::kAdmitted);
  EXPECT_EQ(ac.TryAdmit(10, 0, "10.0.0.2"), Admission::kRateLimited);
  EXPECT_EQ(ac.TryAdmit(10, 0), Admission::kAdmitted);  // "" bucket

  // Refund goes back to the right peer's bucket.
  ac.Refund(10, "10.0.0.1");
  EXPECT_EQ(ac.TryAdmit(10, 0, "10.0.0.1"), Admission::kAdmitted);
  EXPECT_EQ(ac.TryAdmit(10, 0, "10.0.0.2"), Admission::kRateLimited);

  std::vector<service::PeerAdmissionStats> peers = ac.PerPeer();
  ASSERT_EQ(peers.size(), 3u);  // sorted: "", 10.0.0.1, 10.0.0.2
  EXPECT_EQ(peers[0], (service::PeerAdmissionStats{"", 1, 0}));
  EXPECT_EQ(peers[1], (service::PeerAdmissionStats{"10.0.0.1", 3, 2}));
  EXPECT_EQ(peers[2], (service::PeerAdmissionStats{"10.0.0.2", 2, 2}));
  EXPECT_EQ(ac.counters().rate_limited, 4u);  // global view still adds up
}

TEST(NetAdmission, PeerBucketTableIsBoundedWithIdleEviction) {
  // A long-running server must not grow a bucket per peer forever (nor
  // serialize an unbounded table into STATS): at the cap, a new peer
  // evicts the longest-idle bucket. Global counters are unaffected.
  AdmissionPolicy policy;
  policy.rate_limit_qps = 1e-6;
  policy.rate_burst = 1;
  policy.max_peer_buckets = 4;
  AdmissionController ac(policy, /*queue_capacity=*/64);

  for (int i = 0; i < 32; ++i) {
    std::string peer = "10.0.0." + std::to_string(i);
    ASSERT_EQ(ac.TryAdmit(1, 0, peer), Admission::kAdmitted) << peer;
    ac.Release(1);
  }
  EXPECT_LE(ac.PerPeer().size(), 4u);
  EXPECT_EQ(ac.counters().admitted, 32u);  // eviction never loses totals

  // A surviving (recent) peer keeps its drained bucket: the most recent
  // peer was not evicted and is still rate-limited.
  EXPECT_EQ(ac.TryAdmit(1, 0, "10.0.0.31"), Admission::kRateLimited);
}

TEST(NetAdmission, DisabledPolicyAdmitsEverything) {
  AdmissionController ac(AdmissionPolicy{}, 4);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(ac.TryAdmit(1 << 20, /*queue_depth=*/1000),
              Admission::kAdmitted);
  }
  EXPECT_EQ(ac.counters().TotalRejected(), 0u);
}

// --- End-to-end over loopback ----------------------------------------------

struct TestServer {
  std::shared_ptr<const ShardedIndex> index;
  std::unique_ptr<JoinService> service;
  std::unique_ptr<JoinServer> server;

  static TestServer Make(const ServiceOptions& sopts, ServerOptions nopts,
                         int num_shards = 2) {
    Grid grid;
    wl::PolygonDataset ds = wl::Neighborhoods(0.05);
    act::BuildOptions bopts;
    bopts.threads = 1;
    TestServer out;
    out.index =
        BuildShared(ds.polygons, grid, {.num_shards = num_shards,
                                        .build = bopts});
    out.service = std::make_unique<JoinService>(out.index, sopts);
    out.server = std::make_unique<JoinServer>(out.service.get(), nopts);
    std::string error;
    // gtest macros must run on the main thread; Make is only called there.
    EXPECT_TRUE(out.server->Start(&error)) << error;
    return out;
  }
};

TEST(NetServer, LoopbackByteIdenticalToInProcessSubmit) {
  ServiceOptions sopts;
  sopts.worker_threads = 2;
  TestServer ts = TestServer::Make(sopts, ServerOptions{});

  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 1500, grid, 54);

  JoinClient client;
  std::string error;
  ASSERT_TRUE(client.Connect(ts.server->host(), ts.server->port(), &error))
      << error;

  for (JoinMode mode : {JoinMode::kExact, JoinMode::kApproximate}) {
    service::JoinResult want =
        ts.service->Submit(MakeBatch(pts, mode)).get();
    JoinClient::Reply reply = client.Join(MakeBatch(pts, mode));
    ASSERT_TRUE(reply.ok) << reply.message;
    EXPECT_EQ(reply.result.epoch, want.epoch);
    ExpectStatsEqual(reply.result.stats, want.stats);
    EXPECT_GT(reply.result.stats.result_pairs, 0u);
  }

  // The batches also ran against the correct snapshot: spot-check against
  // the index directly.
  act::JoinStats direct =
      ts.index->Join(pts.AsJoinInput(), {JoinMode::kExact, 1});
  JoinClient::Reply reply = client.Join(MakeBatch(pts, JoinMode::kExact));
  ASSERT_TRUE(reply.ok);
  ExpectStatsEqual(reply.result.stats, direct);
}

TEST(NetServer, PingStatsAndShutdownRequest) {
  ServiceOptions sopts;
  sopts.worker_threads = 1;
  TestServer ts = TestServer::Make(sopts, ServerOptions{});

  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 200, grid, 55);

  JoinClient client;
  std::string error;
  ASSERT_TRUE(client.Connect(ts.server->host(), ts.server->port(), &error))
      << error;
  ASSERT_TRUE(client.Ping(&error)) << error;

  ASSERT_TRUE(client.Join(MakeBatch(pts, JoinMode::kExact)).ok);
  service::ServiceStats stats;
  ASSERT_TRUE(client.GetStats(&stats, &error)) << error;
  EXPECT_EQ(stats.completed_requests, 1u);
  EXPECT_EQ(stats.points_served, pts.size());
  EXPECT_EQ(stats.epoch, 1u);
  EXPECT_EQ(stats.rejected_requests, 0u);

  EXPECT_FALSE(ts.server->shutdown_requested());
  ASSERT_TRUE(client.RequestShutdown(&error)) << error;
  ts.server->WaitShutdownRequested();
  EXPECT_TRUE(ts.server->shutdown_requested());
}

TEST(NetServer, RateLimitRejectsTypedAndKeepsConnection) {
  ServiceOptions sopts;
  sopts.worker_threads = 1;
  ServerOptions nopts;
  nopts.admission.rate_limit_qps = 1e-6;  // one-shot bucket for the test
  nopts.admission.rate_burst = 1;
  TestServer ts = TestServer::Make(sopts, nopts);

  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 100, grid, 56);

  JoinClient client;
  std::string error;
  ASSERT_TRUE(client.Connect(ts.server->host(), ts.server->port(), &error))
      << error;

  ASSERT_TRUE(client.Join(MakeBatch(pts, JoinMode::kApproximate)).ok);
  JoinClient::Reply rejected = client.Join(MakeBatch(pts, JoinMode::kExact));
  EXPECT_FALSE(rejected.ok);
  EXPECT_EQ(rejected.error, WireError::kRateLimited);

  // Typed rejection, connection intact: the same socket keeps working.
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Ping(&error)) << error;
  service::ServiceStats stats;
  ASSERT_TRUE(client.GetStats(&stats, &error)) << error;
  EXPECT_EQ(stats.rejected_rate_limit, 1u);
  EXPECT_EQ(stats.rejected_requests, 1u);
  EXPECT_EQ(ts.server->admission_counters().rate_limited, 1u);
}

TEST(NetServer, InFlightByteBudgetRejectsTyped) {
  ServiceOptions sopts;
  sopts.worker_threads = 1;
  ServerOptions nopts;
  nopts.admission.max_in_flight_bytes = 64;  // smaller than any batch here
  TestServer ts = TestServer::Make(sopts, nopts);

  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 100, grid, 57);

  JoinClient client;
  std::string error;
  ASSERT_TRUE(client.Connect(ts.server->host(), ts.server->port(), &error))
      << error;
  JoinClient::Reply reply = client.Join(MakeBatch(pts, JoinMode::kExact));
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.error, WireError::kInFlightBytesExceeded);
  ASSERT_TRUE(client.Ping(&error)) << error;
  service::ServiceStats stats;
  ASSERT_TRUE(client.GetStats(&stats, &error)) << error;
  EXPECT_EQ(stats.rejected_inflight_bytes, 1u);
}

TEST(NetServer, QueueWatermarkAndQueueFullRejectTyped) {
  // The service's pool is held back (autostart=false), so the queue depth
  // is fully deterministic from the submits below.
  ServiceOptions sopts;
  sopts.worker_threads = 1;
  sopts.queue_capacity = 8;
  sopts.autostart = false;
  ServerOptions nopts;
  nopts.admission.queue_watermark = 0.25;  // depth > 2 rejects
  TestServer ts = TestServer::Make(sopts, nopts);

  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 100, grid, 58);

  std::vector<std::future<service::JoinResult>> futures;
  for (int i = 0; i < 3; ++i) {
    futures.push_back(ts.service->Submit(MakeBatch(pts, JoinMode::kExact)));
  }
  ASSERT_EQ(ts.service->QueueDepth(), 3u);

  JoinClient client;
  std::string error;
  ASSERT_TRUE(client.Connect(ts.server->host(), ts.server->port(), &error))
      << error;
  JoinClient::Reply reply = client.Join(MakeBatch(pts, JoinMode::kExact));
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.error, WireError::kQueueWatermark);
  ASSERT_TRUE(client.connected());

  // With the watermark out of the way, the bounded queue itself rejects —
  // through the typed TrySubmit contract, not by blocking the event loop.
  for (int i = 0; i < 5; ++i) {
    futures.push_back(ts.service->Submit(MakeBatch(pts, JoinMode::kExact)));
  }
  ASSERT_EQ(ts.service->QueueDepth(), 8u);  // full
  JoinClient client2;
  ASSERT_TRUE(client2.Connect(ts.server->host(), ts.server->port(), &error))
      << error;
  ServerOptions no_watermark;  // fresh server sharing the service
  JoinServer server2(ts.service.get(), no_watermark);
  ASSERT_TRUE(server2.Start(&error)) << error;
  JoinClient client3;
  ASSERT_TRUE(client3.Connect(server2.host(), server2.port(), &error))
      << error;
  JoinClient::Reply full = client3.Join(MakeBatch(pts, JoinMode::kExact));
  EXPECT_FALSE(full.ok);
  EXPECT_EQ(full.error, WireError::kQueueFull);
  ASSERT_TRUE(client3.Ping(&error)) << error;

  service::ServiceStats stats = server2.StatsWithAdmission();
  EXPECT_EQ(stats.rejected_queue_full, 1u);

  // Let the held-back pool drain the accepted requests before teardown.
  ts.service->Start();
  for (auto& f : futures) f.get();
  server2.Stop();
}

TEST(NetServer, QueueFullBurstDoesNotDrainRateBucket) {
  // Regression: TryAdmit consumed a rate token, and when the service then
  // answered kQueueFull the token was never refunded — a queue-full burst
  // drained the bucket and clients were double-penalized (rejections for
  // requests that did no work, followed by rate-limit rejections once the
  // queue had room again). With the refund, every bounce in the burst
  // stays typed kQueueFull and the bucket is still full afterwards.
  ServiceOptions sopts;
  sopts.worker_threads = 1;
  sopts.queue_capacity = 1;
  sopts.autostart = false;  // held back => the queue stays deterministic
  ServerOptions nopts;
  nopts.admission.rate_limit_qps = 1e-6;  // refill negligible in-test
  nopts.admission.rate_burst = 2;  // a burst any non-refunding server burns
  TestServer ts = TestServer::Make(sopts, nopts);

  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 100, grid, 59);

  // Fill the service queue in-process so every wire join bounces.
  std::vector<std::future<service::JoinResult>> futures;
  futures.push_back(ts.service->Submit(MakeBatch(pts, JoinMode::kExact)));
  ASSERT_EQ(ts.service->QueueDepth(), 1u);

  JoinClient client;
  std::string error;
  ASSERT_TRUE(client.Connect(ts.server->host(), ts.server->port(), &error))
      << error;
  // 5 bounces > burst 2: without the refund, bounce 3 onward would come
  // back kRateLimited instead of kQueueFull.
  for (int i = 0; i < 5; ++i) {
    JoinClient::Reply reply = client.Join(MakeBatch(pts, JoinMode::kExact));
    EXPECT_FALSE(reply.ok);
    EXPECT_EQ(reply.error, WireError::kQueueFull) << "bounce " << i;
  }
  EXPECT_EQ(ts.server->admission_counters().refunded, 5u);
  EXPECT_EQ(ts.server->admission_counters().rate_limited, 0u);

  // Drain the queue; the bucket must still hold its full burst.
  ts.service->Start();
  for (auto& f : futures) f.get();
  JoinClient::Reply served = client.Join(MakeBatch(pts, JoinMode::kExact));
  EXPECT_TRUE(served.ok) << "token was not refunded";
  EXPECT_GT(served.result.stats.num_points, 0u);
}

TEST(NetServer, MalformedFrameAnsweredTypedThenClosed) {
  ServiceOptions sopts;
  sopts.worker_threads = 1;
  TestServer ts = TestServer::Make(sopts, ServerOptions{});

  std::string error;
  UniqueFd raw = ConnectTcp(ts.server->host(), ts.server->port(), &error);
  ASSERT_TRUE(raw.valid()) << error;
  // 24 bytes of garbage: the magic check fails, the server answers with a
  // typed error and then closes (framing is unrecoverable).
  std::vector<uint8_t> garbage(kFrameHeaderBytes, 0xAB);
  ASSERT_TRUE(SendAll(raw.get(), garbage.data(), garbage.size(), &error));

  uint8_t header_bytes[kFrameHeaderBytes];
  ASSERT_TRUE(RecvAll(raw.get(), header_bytes, sizeof(header_bytes), &error))
      << error;
  FrameHeader header;
  size_t frame_bytes = 0;
  WireError parse_err = WireError::kNone;
  ASSERT_NE(TryParseFrame({header_bytes, sizeof(header_bytes)},
                          kDefaultMaxFrameBytes, &header, &frame_bytes,
                          &parse_err),
            FrameParse::kProtocolError);
  ASSERT_EQ(header.type, MessageType::kError);
  std::vector<uint8_t> payload(header.payload_bytes);
  ASSERT_TRUE(RecvAll(raw.get(), payload.data(), payload.size(), &error));
  WireError code = WireError::kNone;
  std::string message;
  ASSERT_TRUE(DecodeError(payload, &code, &message));
  EXPECT_EQ(code, WireError::kMalformedFrame);

  // The server closed its side: the next read is EOF.
  uint8_t byte;
  EXPECT_FALSE(RecvAll(raw.get(), &byte, 1, &error));
}

TEST(NetServer, UnknownTypeIsRecoverableOnSameConnection) {
  ServiceOptions sopts;
  sopts.worker_threads = 1;
  TestServer ts = TestServer::Make(sopts, ServerOptions{});

  std::string error;
  UniqueFd raw = ConnectTcp(ts.server->host(), ts.server->port(), &error);
  ASSERT_TRUE(raw.valid()) << error;
  std::vector<uint8_t> unknown =
      EncodeEmptyFrame(static_cast<MessageType>(99), 5);
  ASSERT_TRUE(SendAll(raw.get(), unknown.data(), unknown.size(), &error));

  uint8_t header_bytes[kFrameHeaderBytes];
  ASSERT_TRUE(RecvAll(raw.get(), header_bytes, sizeof(header_bytes), &error));
  FrameHeader header;
  size_t frame_bytes = 0;
  WireError parse_err = WireError::kNone;
  TryParseFrame({header_bytes, sizeof(header_bytes)}, kDefaultMaxFrameBytes,
                &header, &frame_bytes, &parse_err);
  ASSERT_EQ(header.type, MessageType::kError);
  EXPECT_EQ(header.request_id, 5u);
  std::vector<uint8_t> payload(header.payload_bytes);
  ASSERT_TRUE(RecvAll(raw.get(), payload.data(), payload.size(), &error));
  WireError code = WireError::kNone;
  std::string message;
  ASSERT_TRUE(DecodeError(payload, &code, &message));
  EXPECT_EQ(code, WireError::kUnknownType);

  // Framing stayed intact: a PING on the same socket still answers.
  std::vector<uint8_t> ping = EncodeEmptyFrame(MessageType::kPing, 6);
  ASSERT_TRUE(SendAll(raw.get(), ping.data(), ping.size(), &error));
  ASSERT_TRUE(RecvAll(raw.get(), header_bytes, sizeof(header_bytes), &error));
  TryParseFrame({header_bytes, sizeof(header_bytes)}, kDefaultMaxFrameBytes,
                &header, &frame_bytes, &parse_err);
  EXPECT_EQ(header.type, MessageType::kPong);
  EXPECT_EQ(header.request_id, 6u);
}

TEST(NetServer, ConcurrentClientsAcrossHotSwapsOverLoopback) {
  // The service_test hot-swap contract, but end to end through sockets:
  // every wire result must be exactly right for the epoch that served it.
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  const size_t half_count = ds.polygons.size() / 2;
  std::vector<geom::Polygon> half_set(ds.polygons.begin(),
                                      ds.polygons.begin() + half_count);
  act::BuildOptions bopts;
  bopts.threads = 1;
  auto half = BuildShared(half_set, grid, {.num_shards = 2, .build = bopts});
  auto full = BuildShared(ds.polygons, grid,
                          {.num_shards = 4, .build = bopts});

  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 400, grid, 59);
  uint64_t want_half =
      half->Join(pts.AsJoinInput(), {JoinMode::kExact, 1}).result_pairs;
  uint64_t want_full =
      full->Join(pts.AsJoinInput(), {JoinMode::kExact, 1}).result_pairs;

  ServiceOptions sopts;
  sopts.worker_threads = 2;
  JoinService service(half, sopts);
  ServerOptions nopts;
  nopts.io_threads = 2;
  JoinServer server(&service, nopts);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  constexpr int kSwaps = 8;
  std::vector<uint64_t> want_by_epoch(kSwaps + 2);
  for (int e = 1; e <= kSwaps + 1; ++e) {
    want_by_epoch[static_cast<size_t>(e)] =
        (e % 2 == 1) ? want_half : want_full;
  }

  constexpr int kClients = 3;
  constexpr int kRequestsPerClient = 12;
  struct ClientReport {
    uint64_t transport_errors = 0;
    uint64_t mismatches = 0;
    uint64_t completed = 0;
  };
  std::vector<ClientReport> reports(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  std::string host = server.host();
  uint16_t port = server.port();
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      JoinClient client;
      if (!client.Connect(host, port)) {
        ++reports[static_cast<size_t>(c)].transport_errors;
        return;
      }
      for (int i = 0; i < kRequestsPerClient; ++i) {
        JoinClient::Reply reply =
            client.Join({pts.cell_ids(), pts.points(), JoinMode::kExact});
        ClientReport& report = reports[static_cast<size_t>(c)];
        if (!reply.ok) {
          ++report.transport_errors;
          continue;
        }
        uint64_t epoch = reply.result.epoch;
        if (epoch == 0 || epoch > static_cast<uint64_t>(kSwaps) + 1 ||
            reply.result.stats.result_pairs !=
                want_by_epoch[static_cast<size_t>(epoch)]) {
          ++report.mismatches;
        }
        ++report.completed;
      }
    });
  }

  for (int i = 0; i < kSwaps; ++i) {
    service.SwapIndex(i % 2 == 0 ? full : half);
    std::this_thread::yield();
  }
  for (auto& t : clients) t.join();
  server.Stop();

  for (const ClientReport& report : reports) {
    EXPECT_EQ(report.transport_errors, 0u);
    EXPECT_EQ(report.mismatches, 0u);
    EXPECT_EQ(report.completed,
              static_cast<uint64_t>(kRequestsPerClient));
  }
  ServerCounters counters = server.counters();
  EXPECT_EQ(counters.connections_accepted, static_cast<uint64_t>(kClients));
  EXPECT_GE(counters.responses_sent,
            static_cast<uint64_t>(kClients) * kRequestsPerClient);
  EXPECT_EQ(counters.protocol_errors, 0u);
}

TEST(NetServer, MultiDatasetJoinsRouteByIdAndListDatasets) {
  // Two catalog datasets behind one server: joins route by the header's
  // dataset id (results match each dataset's own index), LIST_DATASETS
  // enumerates the catalog, and an unknown id is a typed, recoverable
  // error on the same connection.
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  const size_t half_count = ds.polygons.size() / 2;
  std::vector<geom::Polygon> half_set(ds.polygons.begin(),
                                      ds.polygons.begin() + half_count);
  act::BuildOptions bopts;
  bopts.threads = 1;
  auto half = BuildShared(half_set, grid, {.num_shards = 2, .build = bopts});
  auto full = BuildShared(ds.polygons, grid,
                          {.num_shards = 4, .build = bopts});

  ServiceOptions sopts;
  sopts.worker_threads = 2;
  JoinService service(half, sopts);  // dataset 0 = "default"
  ASSERT_TRUE(service.catalog().Add("census", full).has_value());
  JoinServer server(&service, ServerOptions{});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 800, grid, 61);
  act::JoinStats want_half =
      half->Join(pts.AsJoinInput(), {JoinMode::kExact, 1});
  act::JoinStats want_full =
      full->Join(pts.AsJoinInput(), {JoinMode::kExact, 1});

  JoinClient client;
  ASSERT_TRUE(client.Connect(server.host(), server.port(), &error)) << error;

  std::vector<service::DatasetInfo> datasets;
  ASSERT_TRUE(client.ListDatasets(&datasets, &error)) << error;
  ASSERT_EQ(datasets.size(), 2u);
  EXPECT_EQ(datasets[0].name, "default");
  EXPECT_EQ(datasets[0].num_polygons, half_set.size());
  EXPECT_EQ(datasets[1].name, "census");
  EXPECT_EQ(datasets[1].num_polygons, ds.polygons.size());

  QueryBatch batch = MakeBatch(pts, JoinMode::kExact);
  batch.dataset_id = 0;
  JoinClient::Reply reply = client.Join(batch);
  ASSERT_TRUE(reply.ok) << reply.message;
  ExpectStatsEqual(reply.result.stats, want_half);
  batch.dataset_id = 1;
  reply = client.Join(batch);
  ASSERT_TRUE(reply.ok) << reply.message;
  ExpectStatsEqual(reply.result.stats, want_full);

  // Unknown id: typed error, connection survives, counter visible.
  batch.dataset_id = 9;
  reply = client.Join(batch);
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.error, WireError::kUnknownDataset);
  EXPECT_TRUE(IsRecoverable(WireError::kUnknownDataset));
  ASSERT_TRUE(client.Ping(&error)) << error;
  service::ServiceStats stats;
  ASSERT_TRUE(client.GetStats(&stats, &error)) << error;
  EXPECT_EQ(stats.rejected_unknown_dataset, 1u);
  EXPECT_EQ(stats.rejected_requests, 1u);
  EXPECT_EQ(stats.num_datasets, 2u);
  EXPECT_EQ(stats.completed_requests, 2u);
}

TEST(NetServer, PerPeerRateLimitIsolatesClients) {
  // One greedy connection drains only its own bucket (PeerKeyPolicy::
  // kIpPort tells loopback clients apart): the second client is admitted
  // at full burst, and STATS attributes every rejection to the greedy
  // peer.
  ServiceOptions sopts;
  sopts.worker_threads = 1;
  ServerOptions nopts;
  nopts.admission.rate_limit_qps = 1e-6;  // refill negligible in-test
  nopts.admission.rate_burst = 2;
  nopts.peer_key = PeerKeyPolicy::kIpPort;
  TestServer ts = TestServer::Make(sopts, nopts);

  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 100, grid, 62);

  JoinClient greedy;
  std::string error;
  ASSERT_TRUE(greedy.Connect(ts.server->host(), ts.server->port(), &error))
      << error;
  int greedy_ok = 0, greedy_limited = 0;
  for (int i = 0; i < 6; ++i) {
    JoinClient::Reply reply = greedy.Join(MakeBatch(pts, JoinMode::kExact));
    if (reply.ok) {
      ++greedy_ok;
    } else {
      ASSERT_EQ(reply.error, WireError::kRateLimited) << "i=" << i;
      ++greedy_limited;
    }
  }
  EXPECT_EQ(greedy_ok, 2);
  EXPECT_EQ(greedy_limited, 4);

  // A different client (different ephemeral port => different bucket)
  // still gets its full burst, after the flood.
  JoinClient second;
  ASSERT_TRUE(second.Connect(ts.server->host(), ts.server->port(), &error))
      << error;
  for (int i = 0; i < 2; ++i) {
    JoinClient::Reply reply = second.Join(MakeBatch(pts, JoinMode::kExact));
    EXPECT_TRUE(reply.ok) << reply.message;
  }

  service::ServiceStats stats;
  ASSERT_TRUE(second.GetStats(&stats, &error)) << error;
  EXPECT_EQ(stats.rejected_rate_limit, 4u);
  ASSERT_EQ(stats.peers.size(), 2u);  // two ip:port keys
  uint64_t limited_total = 0, admitted_total = 0;
  bool greedy_seen = false;
  for (const service::PeerAdmissionStats& peer : stats.peers) {
    limited_total += peer.rate_limited;
    admitted_total += peer.admitted;
    if (peer.rate_limited == 4) {
      greedy_seen = true;
      EXPECT_EQ(peer.admitted, 2u);
    }
  }
  EXPECT_TRUE(greedy_seen) << "one peer must own all rejections";
  EXPECT_EQ(limited_total, 4u);
  EXPECT_EQ(admitted_total, 4u);
}

TEST(NetServer, StopWhileIdleAndDoubleStop) {
  ServiceOptions sopts;
  sopts.worker_threads = 1;
  TestServer ts = TestServer::Make(sopts, ServerOptions{});
  ts.server->Stop();
  ts.server->Stop();  // idempotent
  std::string error;
  EXPECT_FALSE(ts.server->Start(&error));  // not restartable
}

// --- Observability over the wire (v4) --------------------------------------

TEST(NetServer, TracedJoinStagesTileLoopbackWallTime) {
  // The tracing acceptance contract: the seven stages of a traced
  // JOIN_BATCH tile the request's server-side lifetime, and their sum
  // lands within 10% of the wall time a loopback client measures around
  // the call — the remainder is transport. A big exact-mode batch makes
  // the join dominate transport so the bound is meaningful.
  ServiceOptions sopts;
  sopts.worker_threads = 2;
  Grid grid;
  // Stack the neighborhoods set on top of itself: every probe point hits
  // ~12x the references, so the join — not the 30k-point transfer —
  // dominates the client's wall time and the 10% bound is meaningful.
  wl::PolygonDataset ds = wl::Neighborhoods(1.0);
  std::vector<geom::Polygon> stacked;
  for (int copy = 0; copy < 12; ++copy) {
    stacked.insert(stacked.end(), ds.polygons.begin(), ds.polygons.end());
  }
  act::BuildOptions bopts;
  bopts.threads = 1;
  auto index = BuildShared(stacked, grid, {.num_shards = 4,
                                           .build = bopts});
  JoinService service(index, sopts);
  JoinServer server(&service, ServerOptions{});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 30000, grid, 71);
  JoinClient client;
  ASSERT_TRUE(client.Connect(server.host(), server.port(), &error)) << error;

  // Warm the connection first: the initial transfer pays TCP window
  // growth, buffer reallocation, and cold caches — none of which is what
  // the stage breakdown accounts for.
  ASSERT_TRUE(client.Join(MakeBatch(pts, JoinMode::kExact)).ok);

  // Assert the tiling bound on the least-noisy of a few attempts: a
  // scheduler preemption between the client's timer start and the
  // server's frame-complete entry inflates the wall without touching any
  // stage, and must not flake the contract.
  QueryBatch batch = MakeBatch(pts, JoinMode::kExact);
  batch.trace = true;
  JoinClient::Reply reply;
  double wall_us = 0;
  double best_ratio = 0;
  for (int attempt = 0; attempt < 5; ++attempt) {
    util::WallTimer wall;
    JoinClient::Reply r = client.Join(batch);
    const double w = wall.ElapsedSeconds() * 1e6;
    ASSERT_TRUE(r.ok) << r.message;
    ASSERT_TRUE(r.result.trace.enabled);
    const double ratio = r.result.trace.TotalMicros() / w;
    if (ratio > best_ratio) {
      best_ratio = ratio;
      reply = std::move(r);
      wall_us = w;
    }
    if (best_ratio >= 0.9) break;
  }
  const service::TraceContext& trace = reply.result.trace;
  ASSERT_TRUE(trace.enabled);
  EXPECT_NE(trace.request_id, 0u);  // echoes the frame's request id

  for (int s = 0; s < service::kNumTraceStages; ++s) {
    EXPECT_GE(trace.stage_us[static_cast<size_t>(s)], 0.0)
        << service::TraceStageName(static_cast<service::TraceStage>(s));
  }
  // The stages each server layer owns actually ran.
  EXPECT_GT(trace.at(service::TraceStage::kAdmission), 0.0);
  EXPECT_GT(trace.at(service::TraceStage::kDecode), 0.0);
  EXPECT_GT(trace.at(service::TraceStage::kProbe), 0.0);
  EXPECT_GT(trace.at(service::TraceStage::kRespond), 0.0);
  // Queue and join stages agree with the coarse JoinResult figures.
  EXPECT_NEAR(trace.at(service::TraceStage::kQueue),
              reply.result.queue_wait_ms * 1e3, 1e-6);
  EXPECT_NEAR(trace.at(service::TraceStage::kDecompose) +
                  trace.at(service::TraceStage::kProbe) +
                  trace.at(service::TraceStage::kMerge),
              reply.result.service_ms * 1e3,
              1e-6 * std::max(1.0, reply.result.service_ms * 1e3));
  // The acceptance bound: the stage sum explains the client's wall time.
  const double total_us = trace.TotalMicros();
  EXPECT_LE(total_us, wall_us * 1.001);
  EXPECT_GE(total_us, wall_us * 0.9)
      << "stages " << total_us << " us vs wall " << wall_us << " us";

  // Tracing is opt-in per request: the next untraced join on the same
  // connection comes back with a disabled, all-zero context.
  JoinClient::Reply untraced = client.Join(MakeBatch(pts, JoinMode::kExact));
  ASSERT_TRUE(untraced.ok) << untraced.message;
  EXPECT_FALSE(untraced.result.trace.enabled);
  EXPECT_EQ(untraced.result.trace.TotalMicros(), 0.0);
}

TEST(NetServer, StagePerfCountersRideTracedJoins) {
  // ServiceOptions::stage_perf_counters: a traced join comes back with
  // the hardware-counter section — real deltas when the kernel grants
  // perf_event_open, a typed all-zero `unavailable` block when it
  // doesn't. Untraced joins never carry the section either way.
  ServiceOptions sopts;
  sopts.worker_threads = 2;
  sopts.stage_perf_counters = true;
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.4);
  act::BuildOptions bopts;
  bopts.threads = 1;
  auto index = BuildShared(ds.polygons, grid, {.num_shards = 2,
                                               .build = bopts});
  JoinService service(index, sopts);
  JoinServer server(&service, ServerOptions{});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 5000, grid, 13);
  JoinClient client;
  ASSERT_TRUE(client.Connect(server.host(), server.port(), &error)) << error;

  QueryBatch batch = MakeBatch(pts, JoinMode::kExact);
  batch.trace = true;
  JoinClient::Reply reply = client.Join(batch);
  ASSERT_TRUE(reply.ok) << reply.message;
  const service::TraceContext& trace = reply.result.trace;
  ASSERT_TRUE(trace.enabled);
  ASSERT_TRUE(trace.counters_enabled);
  using service::TraceStage;
  // kQueue burns no attributable CPU by construction.
  EXPECT_EQ(trace.counters(TraceStage::kQueue), util::StageCounterSample{});
  if (trace.counters_available) {
    // The worker-side join stages and both front-end sides measured real
    // work: a 5k-point exact join retires instructions everywhere.
    EXPECT_GT(trace.counters(TraceStage::kProbe).cycles, 0u);
    EXPECT_GT(trace.counters(TraceStage::kProbe).instructions, 0u);
    EXPECT_GT(trace.counters(TraceStage::kDecode).cycles, 0u);
    EXPECT_GT(trace.counters(TraceStage::kRespond).cycles, 0u);
  } else {
    // Denied kernel: typed unavailable, never fabricated numbers.
    for (int s = 0; s < service::kNumTraceStages; ++s) {
      EXPECT_EQ(trace.stage_counters[static_cast<size_t>(s)],
                util::StageCounterSample{})
          << service::TraceStageName(static_cast<TraceStage>(s));
    }
  }
  // The registry grew the per-stage histogram families.
  ASSERT_NE(service.metrics(), nullptr);
  const std::string text = service.metrics()->RenderPrometheus();
  EXPECT_NE(text.find("actjoin_stage_cycles"), std::string::npos);

  // Untraced joins on the same connection stay counter-free.
  JoinClient::Reply untraced = client.Join(MakeBatch(pts, JoinMode::kExact));
  ASSERT_TRUE(untraced.ok) << untraced.message;
  EXPECT_FALSE(untraced.result.trace.counters_enabled);
}

TEST(NetServer, StagePerfSimulatedDenialIsTypedAllZero) {
  // The simulate_denied seam forces the denied path even where perf
  // works: the section still rides the response, flagged unavailable,
  // all-zero — the graceful-fallback acceptance criterion.
  ServiceOptions sopts;
  sopts.worker_threads = 1;
  sopts.stage_perf_counters = true;
  sopts.stage_perf_simulate_denied = true;
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.2);
  act::BuildOptions bopts;
  bopts.threads = 1;
  auto index = BuildShared(ds.polygons, grid, {.num_shards = 1,
                                               .build = bopts});
  JoinService service(index, sopts);
  JoinServer server(&service, ServerOptions{});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 1000, grid, 29);
  JoinClient client;
  ASSERT_TRUE(client.Connect(server.host(), server.port(), &error)) << error;
  QueryBatch batch = MakeBatch(pts, JoinMode::kExact);
  batch.trace = true;
  JoinClient::Reply reply = client.Join(batch);
  ASSERT_TRUE(reply.ok) << reply.message;
  ASSERT_TRUE(reply.result.trace.counters_enabled);
  EXPECT_FALSE(reply.result.trace.counters_available);
  for (int s = 0; s < service::kNumTraceStages; ++s) {
    EXPECT_EQ(reply.result.trace.stage_counters[static_cast<size_t>(s)],
              util::StageCounterSample{});
  }
  // The wall-clock stage trace itself is unaffected by the denial.
  EXPECT_GT(reply.result.trace.at(service::TraceStage::kProbe), 0.0);
}

TEST(NetServer, GetMetricsOverLoopbackBothFormats) {
  // One GET_METRICS collects the whole stack — service counters, latency
  // histograms, per-dataset families, net-layer counters, the event ring,
  // and the slow-query dump — in both exposition text and binary form.
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  const size_t half_count = ds.polygons.size() / 2;
  std::vector<geom::Polygon> half_set(ds.polygons.begin(),
                                      ds.polygons.begin() + half_count);
  act::BuildOptions bopts;
  bopts.threads = 1;
  auto half = BuildShared(half_set, grid, {.num_shards = 2, .build = bopts});
  auto full = BuildShared(ds.polygons, grid,
                          {.num_shards = 4, .build = bopts});

  ServiceOptions sopts;
  sopts.worker_threads = 2;
  JoinService service(half, sopts);  // dataset 0 = "default"
  ASSERT_TRUE(service.catalog().Add("census", full).has_value());
  JoinServer server(&service, ServerOptions{});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 500, grid, 72);
  JoinClient client;
  ASSERT_TRUE(client.Connect(server.host(), server.port(), &error)) << error;
  QueryBatch batch = MakeBatch(pts, JoinMode::kExact);
  ASSERT_TRUE(client.Join(batch).ok);
  batch.dataset_id = 1;
  ASSERT_TRUE(client.Join(batch).ok);
  service.SwapIndex(0, half);  // "default" -> epoch 2, lands in the events

  std::string text;
  ASSERT_TRUE(client.GetMetricsText(&text, &error)) << error;
  for (const char* needle :
       {"# TYPE actjoin_requests_completed_total counter",
        "actjoin_requests_completed_total 2",
        "actjoin_dataset_epoch{dataset=\"default\"} 2",
        "actjoin_dataset_epoch{dataset=\"census\"} 1",
        "actjoin_dataset_points_served_total{dataset=\"census\"} 500",
        "# TYPE actjoin_service_seconds histogram",
        "actjoin_service_seconds_bucket{le=\"+Inf\"} 2",
        "actjoin_server_frames_received_total",
        "actjoin_admission_admitted_total 2"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }

  MetricsReport report;
  ASSERT_TRUE(client.GetMetrics(&report, &error)) << error;
  ASSERT_FALSE(report.samples.empty());
  bool saw_completed = false, saw_p99 = false;
  for (const MetricSample& s : report.samples) {
    if (s.name == "requests_completed_total" && s.labels.empty()) {
      saw_completed = true;
      EXPECT_EQ(s.kind, 0);  // counter
      EXPECT_EQ(s.value, 2.0);
    }
    if (s.name == "service_seconds_p99") {
      saw_p99 = true;
      EXPECT_EQ(s.kind, 2);  // flattened from the histogram family
      EXPECT_GT(s.value, 0.0);
    }
  }
  EXPECT_TRUE(saw_completed);
  EXPECT_TRUE(saw_p99);
  bool saw_swap = false;
  for (const util::MetricEvent& e : report.events) {
    if (e.kind == "swap" && e.subject == "default") saw_swap = true;
  }
  EXPECT_TRUE(saw_swap);
  ASSERT_EQ(report.slow_queries.size(), 2u);
  EXPECT_GT(report.slow_queries[0].service_us, 0.0);
  EXPECT_EQ(report.slow_queries[0].num_points, pts.size());

  // STATS carries the v4 per-dataset splits over the wire too.
  service::ServiceStats stats;
  ASSERT_TRUE(client.GetStats(&stats, &error)) << error;
  ASSERT_EQ(stats.dataset_splits.size(), 2u);
  EXPECT_EQ(stats.dataset_splits[0].name, "default");
  EXPECT_EQ(stats.dataset_splits[0].epoch, 2u);
  EXPECT_EQ(stats.dataset_splits[0].points_served, pts.size());
  EXPECT_EQ(stats.dataset_splits[1].name, "census");
  EXPECT_EQ(stats.dataset_splits[1].epoch, 1u);
  EXPECT_EQ(stats.dataset_splits[1].completed_requests, 1u);
}

TEST(NetServer, GetMetricsOnDisabledMetricsServiceAnswersEmpty) {
  // enable_metrics=false is a service configuration, not a protocol
  // change: scrapers get an empty document, not an error.
  ServiceOptions sopts;
  sopts.worker_threads = 1;
  sopts.enable_metrics = false;
  TestServer ts = TestServer::Make(sopts, ServerOptions{});
  JoinClient client;
  std::string error;
  ASSERT_TRUE(client.Connect(ts.server->host(), ts.server->port(), &error))
      << error;
  std::string text = "sentinel";
  ASSERT_TRUE(client.GetMetricsText(&text, &error)) << error;
  EXPECT_TRUE(text.empty());
  MetricsReport report;
  ASSERT_TRUE(client.GetMetrics(&report, &error)) << error;
  EXPECT_TRUE(report.samples.empty());
  EXPECT_TRUE(report.events.empty());
  EXPECT_TRUE(report.slow_queries.empty());
}

// --- Live mutation over the wire (v3) --------------------------------------

TEST(DeltaNet, MutationCodecsRoundTripAndRejectMalformed) {
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);

  // ADD_POLYGONS: the act polygons blob round-trips and carries the
  // dataset id in the frame header.
  std::vector<uint8_t> frame = EncodeAddPolygonsFrame(31, 7, ds.polygons);
  FrameHeader header;
  size_t frame_bytes = 0;
  WireError err = WireError::kNone;
  ASSERT_EQ(TryParseFrame(frame, kDefaultMaxFrameBytes, &header,
                          &frame_bytes, &err),
            FrameParse::kFrame);
  EXPECT_EQ(header.type, MessageType::kAddPolygons);
  EXPECT_EQ(header.dataset_id, 7u);
  EXPECT_EQ(header.request_id, 31u);
  std::vector<geom::Polygon> polys;
  ASSERT_TRUE(DecodeAddPolygons(
      std::span(frame).subspan(kFrameHeaderBytes, header.payload_bytes),
      &polys));
  ASSERT_EQ(polys.size(), ds.polygons.size());
  EXPECT_EQ(polys[0].rings(), ds.polygons[0].rings());
  std::vector<uint8_t> garbage(16, 0xFF);
  EXPECT_FALSE(DecodeAddPolygons(garbage, &polys));

  // REMOVE_POLYGONS: exact-size id list; trailing or missing bytes fail.
  std::vector<uint32_t> ids{5, 0, 99};
  util::ByteWriter w;
  AppendRemovePolygons(ids, &w);
  std::vector<uint32_t> got_ids;
  ASSERT_TRUE(DecodeRemovePolygons(w.bytes(), &got_ids));
  EXPECT_EQ(got_ids, ids);
  std::vector<uint8_t> bytes = w.bytes();
  bytes.push_back(0);
  EXPECT_FALSE(DecodeRemovePolygons(bytes, &got_ids));
  bytes.resize(w.bytes().size() - 1);
  EXPECT_FALSE(DecodeRemovePolygons(bytes, &got_ids));

  // MUTATE_RESULT: the ack round-trips; a response whose op byte is not a
  // mutation request type is malformed.
  MutationAck ack;
  ack.op = MessageType::kRemovePolygons;
  ack.epoch = 12;
  ack.num_polygons = 345;
  ack.first_id = 67;
  util::ByteWriter aw;
  AppendMutationAck(ack, &aw);
  MutationAck got_ack;
  ASSERT_TRUE(DecodeMutationAck(aw.bytes(), &got_ack));
  EXPECT_EQ(got_ack, ack);
  std::vector<uint8_t> bad_op = aw.bytes();
  bad_op[0] = static_cast<uint8_t>(MessageType::kPing);
  EXPECT_FALSE(DecodeMutationAck(bad_op, &got_ack));

  // STATS carries the mutation counters now.
  service::ServiceStats stats;
  stats.mutations_applied = 21;
  stats.rejected_mutations = 4;
  util::ByteWriter sw;
  AppendServiceStats(stats, &sw);
  service::ServiceStats got_stats;
  ASSERT_TRUE(DecodeServiceStats(sw.bytes(), &got_stats));
  EXPECT_EQ(got_stats.mutations_applied, 21u);
  EXPECT_EQ(got_stats.rejected_mutations, 4u);

  // DATASET_LIST: the per-entry flags field carries the tombstone; any
  // unknown flag bit is malformed (reserved for future use, must be 0).
  std::vector<service::DatasetInfo> datasets(2);
  datasets[0].name = "live";
  datasets[1].name = "gone";
  datasets[1].dropped = true;
  util::ByteWriter dw;
  AppendDatasetList(datasets, &dw);
  std::vector<service::DatasetInfo> got_list;
  ASSERT_TRUE(DecodeDatasetList(dw.bytes(), &got_list));
  ASSERT_EQ(got_list.size(), 2u);
  EXPECT_FALSE(got_list[0].dropped);
  EXPECT_TRUE(got_list[1].dropped);

  // The new rejections are recoverable: clients retry on the same socket.
  EXPECT_TRUE(IsRecoverable(WireError::kDatasetDropped));
  EXPECT_TRUE(IsRecoverable(WireError::kInvalidMutation));
}

TEST(DeltaNet, LiveMutationOverLoopbackMatchesFreshBuild) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  const size_t half_count = ds.polygons.size() / 2;
  std::vector<geom::Polygon> half_set(ds.polygons.begin(),
                                      ds.polygons.begin() + half_count);
  std::vector<geom::Polygon> add_set(ds.polygons.begin() + half_count,
                                     ds.polygons.end());
  act::BuildOptions bopts;
  bopts.threads = 1;
  auto half = BuildShared(half_set, grid, {.num_shards = 2, .build = bopts});
  auto full = BuildShared(ds.polygons, grid,
                          {.num_shards = 2, .build = bopts});

  ServiceOptions sopts;
  sopts.worker_threads = 2;
  JoinService service(half, sopts);
  JoinServer server(&service, ServerOptions{});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 800, grid, 66);

  JoinClient client;
  ASSERT_TRUE(client.Connect(server.host(), server.port(), &error)) << error;

  // Streamed add: the served result becomes byte-identical to a fresh
  // build over the final polygon set, in both modes.
  JoinClient::Reply ack = client.AddPolygons(0, add_set);
  ASSERT_TRUE(ack.ok) << ack.message;
  EXPECT_EQ(ack.ack.op, MessageType::kAddPolygons);
  EXPECT_EQ(ack.ack.epoch, 2u);
  EXPECT_EQ(ack.ack.first_id, static_cast<uint32_t>(half_count));
  EXPECT_EQ(ack.ack.num_polygons, ds.polygons.size());
  for (JoinMode mode : {JoinMode::kExact, JoinMode::kApproximate}) {
    act::JoinStats want = full->Join(pts.AsJoinInput(), {mode, 1});
    JoinClient::Reply joined = client.Join(MakeBatch(pts, mode));
    ASSERT_TRUE(joined.ok) << joined.message;
    EXPECT_EQ(joined.result.epoch, 2u);
    ExpectStatsEqual(joined.result.stats, want);
  }

  // Streamed remove: id slots survive; the removed polygon stops matching.
  JoinClient::Reply rm = client.RemovePolygons(0, {0});
  ASSERT_TRUE(rm.ok) << rm.message;
  EXPECT_EQ(rm.ack.op, MessageType::kRemovePolygons);
  EXPECT_EQ(rm.ack.epoch, 3u);
  EXPECT_EQ(rm.ack.num_polygons, ds.polygons.size());
  JoinClient::Reply after_rm = client.Join(MakeBatch(pts, JoinMode::kExact));
  ASSERT_TRUE(after_rm.ok) << after_rm.message;
  ASSERT_EQ(after_rm.result.stats.counts.size(), ds.polygons.size());
  EXPECT_EQ(after_rm.result.stats.counts[0], 0u);

  // Typed content rejections: empty batches and out-of-range removes.
  JoinClient::Reply bad = client.AddPolygons(0, {});
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(bad.error, WireError::kInvalidMutation);
  bad = client.RemovePolygons(
      0, {static_cast<uint32_t>(ds.polygons.size())});
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(bad.error, WireError::kInvalidMutation);
  bad = client.AddPolygons(9, add_set);
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(bad.error, WireError::kUnknownDataset);

  // Drop: acked, then joins and mutations reject typed on the same
  // connection, and the catalog lists the tombstone.
  JoinClient::Reply drop = client.DropDataset(0);
  ASSERT_TRUE(drop.ok) << drop.message;
  EXPECT_EQ(drop.ack.op, MessageType::kDropDataset);
  EXPECT_EQ(drop.ack.epoch, 4u);
  EXPECT_EQ(drop.ack.num_polygons, 0u);
  JoinClient::Reply dead = client.Join(MakeBatch(pts, JoinMode::kExact));
  EXPECT_FALSE(dead.ok);
  EXPECT_EQ(dead.error, WireError::kDatasetDropped);
  dead = client.AddPolygons(0, add_set);
  EXPECT_FALSE(dead.ok);
  EXPECT_EQ(dead.error, WireError::kDatasetDropped);
  std::vector<service::DatasetInfo> datasets;
  ASSERT_TRUE(client.ListDatasets(&datasets, &error)) << error;
  ASSERT_EQ(datasets.size(), 1u);
  EXPECT_TRUE(datasets[0].dropped);

  service::ServiceStats stats;
  ASSERT_TRUE(client.GetStats(&stats, &error)) << error;
  EXPECT_EQ(stats.mutations_applied, 3u);  // add, remove, drop
  // Only rejections that reach the service count here: the empty add and
  // the out-of-range remove. Unknown-dataset and post-drop frames bounce
  // at the server's pre-admission door.
  EXPECT_EQ(stats.rejected_mutations, 2u);
  EXPECT_EQ(stats.completed_requests, 3u);
}

TEST(DeltaNet, FailedMutationsRefundAdmissionExactlyOnce) {
  // The v3 refund regression (the join-path sibling is
  // QueueFullBurstDoesNotDrainRateBucket): a mutation frame that fails
  // after TryAdmit — undecodable payload or the service's typed content
  // rejection — did no index work, so both the rate token and the bytes
  // come back. Without the refund, the garbage burst below would drain a
  // 2-token bucket and the later *valid* mutation would bounce
  // kRateLimited.
  ServiceOptions sopts;
  sopts.worker_threads = 1;
  ServerOptions nopts;
  nopts.admission.rate_limit_qps = 1e-6;  // refill negligible in-test
  nopts.admission.rate_burst = 2;
  TestServer ts = TestServer::Make(sopts, nopts);

  wl::PolygonDataset ds = wl::Neighborhoods(0.05);

  // 5 undecodable ADD_POLYGONS frames > burst 2, over a raw socket (the
  // payload must be garbage, which JoinClient refuses to produce). Each
  // answers kMalformedPayload — recoverable, same socket — and refunds.
  std::string error;
  UniqueFd raw = ConnectTcp(ts.server->host(), ts.server->port(), &error);
  ASSERT_TRUE(raw.valid()) << error;
  for (int i = 0; i < 5; ++i) {
    std::vector<uint8_t> frame = EncodeAddPolygonsFrame(
        100 + static_cast<uint64_t>(i), 0, {});
    // Truncate the payload mid-count: still a valid frame, undecodable
    // payload.
    frame[16] = 4;  // payload_bytes: 4 of the blob's 8-byte count
    frame.resize(kFrameHeaderBytes + 4);
    ASSERT_TRUE(SendAll(raw.get(), frame.data(), frame.size(), &error));
    uint8_t header_bytes[kFrameHeaderBytes];
    ASSERT_TRUE(RecvAll(raw.get(), header_bytes, sizeof(header_bytes),
                        &error))
        << error;
    FrameHeader header;
    size_t frame_bytes = 0;
    WireError parse_err = WireError::kNone;
    // Header-only span: kNeedMoreData, but *header is already filled.
    ASSERT_NE(TryParseFrame({header_bytes, sizeof(header_bytes)},
                            kDefaultMaxFrameBytes, &header, &frame_bytes,
                            &parse_err),
              FrameParse::kProtocolError);
    ASSERT_EQ(header.type, MessageType::kError);
    std::vector<uint8_t> payload(header.payload_bytes);
    ASSERT_TRUE(RecvAll(raw.get(), payload.data(), payload.size(), &error));
    WireError code = WireError::kNone;
    std::string message;
    ASSERT_TRUE(DecodeError(payload, &code, &message));
    EXPECT_EQ(code, WireError::kMalformedPayload) << "bounce " << i;
  }
  EXPECT_EQ(ts.server->admission_counters().refunded, 5u);
  EXPECT_EQ(ts.server->admission_counters().rate_limited, 0u);

  // Typed service rejections refund too: 3 empty adds decode fine, reach
  // the worker, and come back kInvalidMutation — never kRateLimited.
  JoinClient client;
  ASSERT_TRUE(client.Connect(ts.server->host(), ts.server->port(), &error))
      << error;
  for (int i = 0; i < 3; ++i) {
    JoinClient::Reply reply = client.AddPolygons(0, {});
    EXPECT_FALSE(reply.ok);
    EXPECT_EQ(reply.error, WireError::kInvalidMutation) << "bounce " << i;
  }
  EXPECT_EQ(ts.server->admission_counters().refunded, 8u);
  EXPECT_EQ(ts.server->admission_counters().rate_limited, 0u);

  // The bucket still holds its full burst: a real mutation lands.
  JoinClient::Reply ok = client.AddPolygons(0, {ds.polygons[0]});
  ASSERT_TRUE(ok.ok) << "token was not refunded: " << ok.message;
  EXPECT_EQ(ts.server->admission_counters().refunded, 8u);
  service::ServiceStats stats;
  ASSERT_TRUE(client.GetStats(&stats, &error)) << error;
  EXPECT_EQ(stats.mutations_applied, 1u);
}

}  // namespace
}  // namespace actjoin::net
