// Shared test helper: assert that a string parses as Prometheus text
// exposition format under the conventions MetricsRegistry::RenderPrometheus
// guarantees (actjoin_ prefix, trailing newline, `name[{labels}] value`
// samples with strtod-parsable values, TYPE lines naming only counter /
// gauge / histogram). Used by the registry unit tests and the admin
// endpoint's /metrics test — one grammar, checked the same way at both
// layers.

#ifndef ACTJOIN_TESTS_EXPOSITION_TEST_UTIL_H_
#define ACTJOIN_TESTS_EXPOSITION_TEST_UTIL_H_

#include <cstdlib>
#include <set>
#include <string>

#include <gtest/gtest.h>

namespace actjoin::testutil {

// A minimal exposition-format check: every line is a comment or
// `name{labels} value` with the actjoin_ prefix and a strtod-parsable
// value that consumes the rest of the line.
inline void ExpectParsesAsExposition(const std::string& text) {
  std::set<std::string> typed;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    ASSERT_NE(end, std::string::npos) << "missing trailing newline";
    std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.rfind("# TYPE actjoin_", 0) == 0) {
      std::string rest = line.substr(std::string("# TYPE ").size());
      size_t sp = rest.find(' ');
      ASSERT_NE(sp, std::string::npos) << line;
      std::string kind = rest.substr(sp + 1);
      EXPECT_TRUE(kind == "counter" || kind == "gauge" || kind == "histogram")
          << line;
      typed.insert(rest.substr(0, sp));
      continue;
    }
    if (line.rfind("# HELP ", 0) == 0) continue;
    ASSERT_FALSE(line.empty());
    ASSERT_EQ(line.rfind("actjoin_", 0), 0u) << line;
    // name[{labels}] value
    size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    const std::string value = line.substr(sp + 1);
    char* parse_end = nullptr;
    std::strtod(value.c_str(), &parse_end);
    EXPECT_EQ(*parse_end, '\0') << line;
    std::string name = line.substr(0, sp);
    size_t brace = name.find('{');
    if (brace != std::string::npos) {
      EXPECT_EQ(name.back(), '}') << line;
      name = name.substr(0, brace);
    }
  }
  EXPECT_FALSE(typed.empty());
}

}  // namespace actjoin::testutil

#endif  // ACTJOIN_TESTS_EXPOSITION_TEST_UTIL_H_
