// Tests for net::AsyncJoinClient, the pipelined core the blocking
// JoinClient wraps: N interleaved JOIN_BATCH and JOIN_DATASETS requests
// issued on one connection must come back demultiplexed by request id
// with results identical to issuing them sequentially on a fresh
// connection — including across concurrent delta hot swaps and a live
// subscription pushing events down the same socket — and the configured
// receive deadline must turn a silent or half-written response into the
// typed WireError::kTimedOut instead of a hang. Suites are named Async*
// so the TSan CI job's filter runs them under ThreadSanitizer.
//
// Threading discipline: gtest assertions run only on the main thread;
// worker threads and reader-thread handlers record into plain structs
// that are joined and then asserted.
//
// Seeding convention (full rationale in util_test.cc): random data comes
// only from the workload factories with explicit literal seeds.

#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "act/join.h"
#include "geo/grid.h"
#include "net/join_client.h"
#include "net/join_server.h"
#include "net/socket.h"
#include "net/wire.h"
#include "service/join_service.h"
#include "service/sharded_index.h"
#include "workloads/datasets.h"
#include "workloads/polygon_gen.h"

namespace actjoin::net {
namespace {

using act::JoinMode;
using geo::Grid;
using service::JoinService;
using service::QueryBatch;
using service::ServiceOptions;
using service::ShardedIndex;
using service::ShardingOptions;

std::shared_ptr<const ShardedIndex> BuildShared(
    const std::vector<geom::Polygon>& polygons, const Grid& grid,
    int num_shards) {
  ShardingOptions opts;
  opts.num_shards = num_shards;
  return std::make_shared<const ShardedIndex>(
      ShardedIndex::Build(polygons, grid, opts));
}

QueryBatch MakeBatch(const wl::PointSet& pts, JoinMode mode) {
  return {pts.cell_ids(), pts.points(), mode};
}

void ExpectStatsEqual(const act::JoinStats& got, const act::JoinStats& want) {
  EXPECT_EQ(got.num_points, want.num_points);
  EXPECT_EQ(got.matched_points, want.matched_points);
  EXPECT_EQ(got.result_pairs, want.result_pairs);
  EXPECT_EQ(got.true_hit_refs, want.true_hit_refs);
  EXPECT_EQ(got.candidate_refs, want.candidate_refs);
  EXPECT_EQ(got.pip_tests, want.pip_tests);
  EXPECT_EQ(got.pip_hits, want.pip_hits);
  EXPECT_EQ(got.sth_points, want.sth_points);
  EXPECT_EQ(got.counts, want.counts);
}

/// Dataset 0 (Neighborhoods) serves the point joins; dataset `id_b` (a
/// jittered partition over the same MBR) is the crossmatch counterpart.
struct TestServer {
  wl::PolygonDataset ds;
  std::unique_ptr<JoinService> service;
  std::unique_ptr<JoinServer> server;
  uint16_t id_b = 0;

  static TestServer Make(const ServiceOptions& sopts,
                         const ServerOptions& nopts) {
    Grid grid;
    TestServer out;
    out.ds = wl::Neighborhoods(0.05);
    out.service = std::make_unique<JoinService>(
        BuildShared(out.ds.polygons, grid, 2), sopts);
    std::vector<geom::Polygon> pb = wl::JitteredPartition(
        {.mbr = out.ds.mbr, .nx = 5, .ny = 4, .edge_depth = 2, .seed = 3131});
    out.id_b = out.service->catalog()
                   .Add("partition", BuildShared(pb, grid, 2))
                   .value();
    out.server = std::make_unique<JoinServer>(out.service.get(), nopts);
    std::string error;
    // gtest macros must run on the main thread; Make is only called there.
    EXPECT_TRUE(out.server->Start(&error)) << error;
    return out;
  }
};

TEST(AsyncClientPipeline, InterleavedOutOfOrderMatchesSequential) {
  ServiceOptions sopts;
  sopts.worker_threads = 2;
  TestServer ts = TestServer::Make(sopts, ServerOptions{});
  Grid grid;

  JoinClient pipelined, sequential;
  std::string error;
  ASSERT_TRUE(
      pipelined.Connect(ts.server->host(), ts.server->port(), &error))
      << error;
  ASSERT_TRUE(
      sequential.Connect(ts.server->host(), ts.server->port(), &error))
      << error;
  AsyncJoinClient& async = pipelined.async();

  // Twelve requests interleaved on one connection: joins of six distinct
  // point sets and crossmatches in both modes and page sizes. All frames
  // go out before any response is awaited, so with two service workers
  // completions genuinely overlap and may return out of order.
  const int kWaves = 12;
  std::vector<wl::PointSet> points;
  for (int i = 0; i < kWaves / 2; ++i) {
    points.push_back(wl::TaxiPoints(ts.ds.mbr, 700 + 111 * i, grid,
                                    101 + static_cast<uint64_t>(i)));
  }
  std::vector<JoinDatasetsRequest> xreqs = {
      {.dataset_b = ts.id_b, .mode = 0},
      {.dataset_b = ts.id_b, .mode = 1},
      {.dataset_b = ts.id_b, .mode = 0, .page_size = 7},
      {.dataset_b = ts.id_b, .mode = 1, .page_size = 3},
      {.dataset_b = ts.id_b, .mode = 0, .page_size = 1},
      {.dataset_b = ts.id_b, .mode = 1, .page_size = 64},
  };

  std::vector<std::future<AsyncJoinClient::RawReply>> join_futures;
  std::vector<std::future<CrossMatchReply>> cross_futures;
  for (int i = 0; i < kWaves; ++i) {
    if (i % 2 == 0) {
      const wl::PointSet& pts = points[static_cast<size_t>(i / 2)];
      const uint64_t id = async.NextRequestId();
      join_futures.push_back(
          async.Call(EncodeJoinBatchFrame(id, MakeBatch(pts, JoinMode::kExact)),
                     id, MessageType::kJoinResult));
    } else {
      const JoinDatasetsRequest& req = xreqs[static_cast<size_t>(i / 2)];
      const uint64_t id = async.NextRequestId();
      cross_futures.push_back(
          async.CallCrossMatch(EncodeJoinDatasetsFrame(id, 0, req), id));
    }
  }

  // Every pipelined result must be identical to the sequential issue of
  // the same request on the other connection.
  for (size_t i = 0; i < join_futures.size(); ++i) {
    AsyncJoinClient::RawReply raw = join_futures[i].get();
    ASSERT_TRUE(raw.ok) << raw.message;
    service::JoinResult got;
    ASSERT_TRUE(DecodeJoinResult(raw.payload, &got));
    JoinClient::Reply want =
        sequential.Join(MakeBatch(points[i], JoinMode::kExact));
    ASSERT_TRUE(want.ok) << want.message;
    EXPECT_EQ(got.epoch, want.result.epoch);
    ExpectStatsEqual(got.stats, want.result.stats);
    EXPECT_GT(got.stats.result_pairs, 0u);
  }
  for (size_t i = 0; i < cross_futures.size(); ++i) {
    CrossMatchReply got = cross_futures[i].get();
    ASSERT_TRUE(got.ok) << got.message;
    CrossMatchReply want = sequential.CrossMatch(0, xreqs[i]);
    ASSERT_TRUE(want.ok) << want.message;
    EXPECT_EQ(got.pairs, want.pairs);
    EXPECT_EQ(got.stats.candidate_pairs, want.stats.candidate_pairs);
    EXPECT_EQ(got.stats.refined_pairs, want.stats.refined_pairs);
    EXPECT_EQ(got.stats.epoch_a, want.stats.epoch_a);
    EXPECT_EQ(got.stats.epoch_b, want.stats.epoch_b);
    EXPECT_FALSE(got.pairs.empty());
  }
  EXPECT_EQ(async.outstanding_requests(), 0u);

  // The connection is still healthy and the server-side gauge drains.
  // (The gauge is decremented after the completion hook posts the
  // response, so the client can observe its reply a moment before the
  // decrement lands — poll briefly instead of asserting instantly.)
  service::ServiceStats stats;
  ASSERT_TRUE(pipelined.GetStats(&stats, &error)) << error;
  for (int waited = 0; stats.outstanding_requests != 0 && waited < 2000;
       waited += 5) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_TRUE(pipelined.GetStats(&stats, &error)) << error;
  }
  EXPECT_EQ(stats.outstanding_requests, 0u);
}

TEST(AsyncClientPipeline, PipelinesAcrossConcurrentHotSwapsAndPush) {
  ServiceOptions sopts;
  sopts.worker_threads = 2;
  TestServer ts = TestServer::Make(sopts, ServerOptions{});
  Grid grid;

  JoinClient pipelined, mutator;
  std::string error;
  ASSERT_TRUE(
      pipelined.Connect(ts.server->host(), ts.server->port(), &error))
      << error;
  ASSERT_TRUE(mutator.Connect(ts.server->host(), ts.server->port(), &error))
      << error;
  AsyncJoinClient& async = pipelined.async();

  // A live subscription on the pipelining connection: pushed EVENT frames
  // interleave with pipelined responses on one socket. The handlers only
  // record; consistency is asserted after everything quiesces.
  struct PushLog {
    std::mutex mu;
    std::vector<std::pair<uint64_t, uint64_t>> received;  // seq ranges
    std::vector<std::pair<uint64_t, uint64_t>> skipped;
  } push;
  AsyncJoinClient::SubscribeReply sub =
      async
          .Subscribe(
              0, service::SubscriptionSpec{},
              [&push](const service::EventBatch& batch) {
                if (batch.events.empty()) return;
                std::lock_guard<std::mutex> lock(push.mu);
                push.received.emplace_back(
                    batch.first_seq,
                    batch.first_seq + batch.events.size() - 1);
              },
              [&push](const EventGap& gap) {
                std::lock_guard<std::mutex> lock(push.mu);
                push.skipped.emplace_back(gap.first_skipped_seq,
                                          gap.last_skipped_seq);
              })
          .get();
  ASSERT_TRUE(sub.ok) << sub.message;

  // Mutator thread: delta hot swaps over loopback while the main thread
  // pipelines joins — every epoch publish re-evaluates the subscription.
  struct MutatorLog {
    int applied = 0;
    std::string failure;
  } mlog;
  std::vector<geom::Polygon> extra = wl::JitteredPartition(
      {.mbr = ts.ds.mbr, .nx = 2, .ny = 2, .edge_depth = 2, .seed = 5959});
  std::thread mutate([&] {
    for (int round = 0; round < 6; ++round) {
      JoinClient::Reply add = mutator.AddPolygons(0, extra);
      if (!add.ok) {
        mlog.failure = "add: " + add.message;
        return;
      }
      std::vector<uint32_t> ids;
      for (size_t i = 0; i < extra.size(); ++i) {
        ids.push_back(add.ack.first_id + static_cast<uint32_t>(i));
      }
      JoinClient::Reply rm = mutator.RemovePolygons(0, ids);
      if (!rm.ok) {
        mlog.failure = "remove: " + rm.message;
        return;
      }
      mlog.applied += 2;
    }
  });

  // 32 pipelined joins racing the swaps: every one must complete ok, with
  // the right point count, against *some* published epoch.
  const int kJoins = 32;
  std::vector<wl::PointSet> points;
  std::vector<std::future<AsyncJoinClient::RawReply>> futures;
  for (int i = 0; i < kJoins; ++i) {
    points.push_back(
        wl::TaxiPoints(ts.ds.mbr, 400, grid, 201 + static_cast<uint64_t>(i)));
    const uint64_t id = async.NextRequestId();
    futures.push_back(async.Call(
        EncodeJoinBatchFrame(id, MakeBatch(points.back(), JoinMode::kExact)),
        id, MessageType::kJoinResult));
  }
  std::vector<service::JoinResult> results;
  for (auto& fut : futures) {
    AsyncJoinClient::RawReply raw = fut.get();
    ASSERT_TRUE(raw.ok) << raw.message;
    service::JoinResult res;
    ASSERT_TRUE(DecodeJoinResult(raw.payload, &res));
    results.push_back(std::move(res));
  }
  mutate.join();
  ASSERT_TRUE(mlog.failure.empty()) << mlog.failure;
  EXPECT_EQ(mlog.applied, 12);
  for (const service::JoinResult& res : results) {
    EXPECT_EQ(res.stats.num_points, 400u);
  }

  // Quiesced re-issue: the pipelined answers for a settled epoch must be
  // identical to the blocking client's sequential ones.
  for (int i = 0; i < 4; ++i) {
    const uint64_t id = async.NextRequestId();
    AsyncJoinClient::RawReply raw =
        async
            .Call(EncodeJoinBatchFrame(
                      id, MakeBatch(points[static_cast<size_t>(i)],
                                    JoinMode::kExact)),
                  id, MessageType::kJoinResult)
            .get();
    ASSERT_TRUE(raw.ok) << raw.message;
    service::JoinResult got;
    ASSERT_TRUE(DecodeJoinResult(raw.payload, &got));
    JoinClient::Reply want = mutator.Join(
        MakeBatch(points[static_cast<size_t>(i)], JoinMode::kExact));
    ASSERT_TRUE(want.ok) << want.message;
    EXPECT_EQ(got.epoch, want.result.epoch);
    ExpectStatsEqual(got.stats, want.result.stats);
  }

  // Unsubscribe fences the push stream; then the delivered + skipped seq
  // ranges must tile [1, N] for some N — demultiplexing under fire never
  // duplicates or loses an event without announcing it.
  ASSERT_TRUE(async.Unsubscribe(sub.info.id).get().ok);
  std::vector<std::pair<uint64_t, uint64_t>> all;
  {
    std::lock_guard<std::mutex> lock(push.mu);
    all = push.received;
    all.insert(all.end(), push.skipped.begin(), push.skipped.end());
  }
  std::sort(all.begin(), all.end());
  uint64_t next = 1;
  for (const auto& [lo, hi] : all) {
    EXPECT_EQ(lo, next) << "overlap or hole at seq " << next;
    ASSERT_LE(lo, hi);
    next = hi + 1;
  }
  EXPECT_GT(next, 1u) << "joins across epoch swaps should have pushed events";
}

// --- Receive deadline ------------------------------------------------------

/// A server that accepts and then misbehaves: sends `prefix` (possibly
/// nothing, possibly half a frame header) and holds the socket open
/// until told to stop — the hang the receive deadline exists to break.
struct StuckServer {
  UniqueFd listener;
  uint16_t port = 0;
  std::thread accept_thread;
  std::promise<void> release;

  explicit StuckServer(std::vector<uint8_t> prefix) {
    std::string error;
    listener = ListenTcp("127.0.0.1", 0, 4, &port, &error);
    EXPECT_TRUE(listener.valid()) << error;
    std::shared_future<void> released = release.get_future().share();
    int lfd = listener.get();
    accept_thread = std::thread([lfd, prefix, released] {
      int cfd = ::accept(lfd, nullptr, nullptr);
      if (cfd < 0) return;
      if (!prefix.empty()) {
        ::send(cfd, prefix.data(), prefix.size(), MSG_NOSIGNAL);
      }
      released.wait();
      ::close(cfd);
    });
  }
  ~StuckServer() {
    release.set_value();
    accept_thread.join();
  }
};

TEST(AsyncClientTimeout, SilentServerTimesOutTyped) {
  StuckServer stuck({});
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 4, grid, 111);

  JoinClient client;
  std::string error;
  ASSERT_TRUE(client.Connect("127.0.0.1", stuck.port, &error)) << error;
  client.set_recv_timeout_ms(150);
  EXPECT_EQ(client.recv_timeout_ms(), 150);

  JoinClient::Reply reply = client.Join(MakeBatch(pts, JoinMode::kExact));
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.error, WireError::kTimedOut);
  EXPECT_EQ(reply.message, "receive deadline exceeded");
  // kTimedOut is typed but fatal: byte sync cannot be trusted.
  EXPECT_FALSE(client.connected());
}

TEST(AsyncClientTimeout, HalfWrittenFrameTimesOutTyped) {
  // Ten bytes of a valid PONG frame — enough for the reader to buffer a
  // partial frame, never enough to complete one. The deadline must fire
  // even though bytes did arrive.
  std::vector<uint8_t> pong = EncodeEmptyFrame(MessageType::kPong, 1);
  ASSERT_GT(pong.size(), 10u);
  pong.resize(10);
  StuckServer stuck(std::move(pong));
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 4, grid, 112);

  JoinClient client;
  std::string error;
  ASSERT_TRUE(client.Connect("127.0.0.1", stuck.port, &error)) << error;
  client.set_recv_timeout_ms(150);

  JoinClient::Reply reply = client.Join(MakeBatch(pts, JoinMode::kExact));
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(reply.error, WireError::kTimedOut);
  EXPECT_EQ(reply.message, "receive deadline exceeded");
  EXPECT_FALSE(client.connected());

  // Pipelined futures in flight when the deadline fires all fail with the
  // same typed reason (reconnect first: the old connection is dead).
  JoinClient again;
  ASSERT_TRUE(again.Connect("127.0.0.1", stuck.port, &error)) << error;
  // (The stuck server only serves its first accept; this connection gets
  // pure silence, which is fine for the fan-out check.)
  again.set_recv_timeout_ms(150);
  AsyncJoinClient& async = again.async();
  std::vector<std::future<AsyncJoinClient::RawReply>> futures;
  for (int i = 0; i < 3; ++i) {
    const uint64_t id = async.NextRequestId();
    futures.push_back(
        async.Call(EncodeEmptyFrame(MessageType::kPing, id), id,
                   MessageType::kPong));
  }
  for (auto& fut : futures) {
    AsyncJoinClient::RawReply raw = fut.get();
    EXPECT_FALSE(raw.ok);
    EXPECT_EQ(raw.error, WireError::kTimedOut);
  }
  EXPECT_FALSE(again.connected());
}

TEST(AsyncClientTimeout, IdleSubscriptionNeverTimesOut) {
  ServiceOptions sopts;
  sopts.worker_threads = 1;
  TestServer ts = TestServer::Make(sopts, ServerOptions{});
  Grid grid;

  JoinClient client;
  std::string error;
  ASSERT_TRUE(client.Connect(ts.server->host(), ts.server->port(), &error))
      << error;
  client.set_recv_timeout_ms(100);

  struct PushLog {
    std::mutex mu;
    size_t events = 0;
  } push;
  AsyncJoinClient::SubscribeReply sub = client.Subscribe(
      0, service::SubscriptionSpec{}, [&push](const service::EventBatch& b) {
        std::lock_guard<std::mutex> lock(push.mu);
        push.events += b.events.size();
      });
  ASSERT_TRUE(sub.ok) << sub.message;

  // Far longer than the deadline with nothing outstanding: a quiet
  // standing subscription must not trip it.
  std::this_thread::sleep_for(std::chrono::milliseconds(350));
  EXPECT_TRUE(client.connected());
  EXPECT_TRUE(client.Ping(&error)) << error;

  // The channel still delivers after the idle stretch.
  wl::PointSet pts = wl::TaxiPoints(ts.ds.mbr, 64, grid, 113);
  ASSERT_TRUE(client.Join(MakeBatch(pts, JoinMode::kExact)).ok);
  bool delivered = false;
  for (int waited = 0; waited < 5000 && !delivered; waited += 5) {
    {
      std::lock_guard<std::mutex> lock(push.mu);
      delivered = push.events > 0;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(delivered);
}

}  // namespace
}  // namespace actjoin::net
