// Unit and property tests for the geo subsystem: space-filling curves,
// cell-id algebra, and the grid projection.

//
// Seeding convention (full rationale in util_test.cc): random data comes
// only from util::Rng with explicit literal seeds or from the workload
// factories, whose default seeds are fixed compile-time constants -- never
// time- or address-derived -- so every ctest run is bit-reproducible.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "geo/cell_id.h"
#include "geo/curve.h"
#include "geo/grid.h"
#include "geo/latlng.h"
#include "util/random.h"

namespace actjoin::geo {
namespace {

using actjoin::util::Rng;

class CurveTest : public ::testing::TestWithParam<CurveType> {};

INSTANTIATE_TEST_SUITE_P(Curves, CurveTest,
                         ::testing::Values(CurveType::kHilbert,
                                           CurveType::kMorton),
                         [](const auto& info) {
                           return CurveName(info.param);
                         });

TEST_P(CurveTest, RoundTripExhaustiveSmallLevels) {
  CurveType curve = GetParam();
  for (int level = 0; level <= 5; ++level) {
    uint32_t n = uint32_t{1} << level;
    std::vector<bool> seen(uint64_t{1} << (2 * level), false);
    for (uint32_t i = 0; i < n; ++i) {
      for (uint32_t j = 0; j < n; ++j) {
        uint64_t pos = IJToPos(curve, level, i, j);
        ASSERT_LT(pos, uint64_t{1} << (2 * level));
        ASSERT_FALSE(seen[pos]) << "duplicate pos at level " << level;
        seen[pos] = true;
        auto [i2, j2] = PosToIJ(curve, level, pos);
        ASSERT_EQ(i, i2);
        ASSERT_EQ(j, j2);
      }
    }
  }
}

TEST_P(CurveTest, RoundTripRandomDeepLevels) {
  CurveType curve = GetParam();
  Rng rng(123);
  for (int iter = 0; iter < 2000; ++iter) {
    int level = 6 + static_cast<int>(rng.UniformInt(25));  // 6..30
    uint32_t mask = level == 32 ? ~0u : ((uint32_t{1} << level) - 1);
    uint32_t i = static_cast<uint32_t>(rng.Next()) & mask;
    uint32_t j = static_cast<uint32_t>(rng.Next()) & mask;
    uint64_t pos = IJToPos(curve, level, i, j);
    auto [i2, j2] = PosToIJ(curve, level, pos);
    ASSERT_EQ(i, i2);
    ASSERT_EQ(j, j2);
  }
}

TEST_P(CurveTest, PrefixProperty) {
  // The curve position of the parent cell is the child's position shifted
  // right by two bits — the property the whole indexing scheme rests on.
  CurveType curve = GetParam();
  Rng rng(456);
  for (int iter = 0; iter < 2000; ++iter) {
    int level = 1 + static_cast<int>(rng.UniformInt(30));  // 1..30
    uint32_t mask = (level == 32) ? ~0u : ((uint32_t{1} << level) - 1);
    uint32_t i = static_cast<uint32_t>(rng.Next()) & mask;
    uint32_t j = static_cast<uint32_t>(rng.Next()) & mask;
    uint64_t pos = IJToPos(curve, level, i, j);
    uint64_t parent_pos = IJToPos(curve, level - 1, i >> 1, j >> 1);
    ASSERT_EQ(parent_pos, pos >> 2)
        << "level " << level << " i " << i << " j " << j;
  }
}

TEST(HilbertCurve, ConsecutivePositionsAreAdjacent) {
  // The defining Hilbert property (Morton does not have it).
  for (int level : {3, 6}) {
    uint64_t n_pos = uint64_t{1} << (2 * level);
    auto [pi, pj] = PosToIJ(CurveType::kHilbert, level, 0);
    for (uint64_t pos = 1; pos < n_pos; ++pos) {
      auto [i, j] = PosToIJ(CurveType::kHilbert, level, pos);
      int manhattan = std::abs(static_cast<int>(i) - static_cast<int>(pi)) +
                      std::abs(static_cast<int>(j) - static_cast<int>(pj));
      ASSERT_EQ(manhattan, 1) << "level " << level << " pos " << pos;
      pi = i;
      pj = j;
    }
  }
}

TEST(CellIdTest, FaceCellBasics) {
  for (int f = 0; f < CellId::kNumFaces; ++f) {
    CellId c = CellId::FromFace(f);
    EXPECT_TRUE(c.is_valid());
    EXPECT_EQ(c.face(), f);
    EXPECT_EQ(c.level(), 0);
    EXPECT_TRUE(c.is_face());
    EXPECT_FALSE(c.is_leaf());
  }
}

TEST(CellIdTest, InvalidIds) {
  EXPECT_FALSE(CellId().is_valid());
  EXPECT_FALSE(CellId(0).is_valid());
  // Face 6 and 7 are invalid.
  EXPECT_FALSE(CellId(uint64_t{6} << 61 | 1).is_valid());
  EXPECT_FALSE(CellId(~uint64_t{0}).is_valid());
  // Odd trailing-zero count => no sentinel at an even position.
  EXPECT_FALSE(CellId(0b10).is_valid());
}

TEST(CellIdTest, ParentChildRoundTrip) {
  Rng rng(99);
  Grid grid;
  for (int iter = 0; iter < 1000; ++iter) {
    double lat = rng.Uniform(-89, 89);
    double lng = rng.Uniform(-179, 179);
    int level = 1 + static_cast<int>(rng.UniformInt(30));
    CellId c = grid.CellAt({lat, lng}, level);
    ASSERT_TRUE(c.is_valid());
    ASSERT_EQ(c.level(), level);
    CellId p = c.parent();
    ASSERT_EQ(p.level(), level - 1);
    ASSERT_TRUE(p.contains(c));
    int pos = c.child_position(level);
    ASSERT_EQ(p.child(pos), c);
  }
}

TEST(CellIdTest, ChildrenPartitionParentRange) {
  // Leaf ids are odd (their sentinel is bit 0), so id space advances in
  // steps of 2 between consecutive leaves.
  Grid grid;
  CellId c = grid.CellAt({40.7, -74.0}, 10);
  CellId prev_min = c.range_min();
  for (int k = 0; k < 4; ++k) {
    CellId child = c.child(k);
    EXPECT_EQ(child.level(), 11);
    EXPECT_TRUE(c.contains(child));
    EXPECT_EQ(child.range_min(), prev_min);
    prev_min = CellId(child.range_max().id() + 2);
  }
  EXPECT_EQ(prev_min.id(), c.range_max().id() + 2);
}

TEST(CellIdTest, ContainsIsRangeBased) {
  Grid grid;
  CellId big = grid.CellAt({40.7, -74.0}, 8);
  CellId small = grid.CellAt({40.7, -74.0}, 25);
  EXPECT_TRUE(big.contains(small));
  EXPECT_FALSE(small.contains(big));
  EXPECT_TRUE(big.intersects(small));
  EXPECT_TRUE(small.intersects(big));
  EXPECT_TRUE(big.contains(big));
}

TEST(CellIdTest, OwnIdNeverInsideStrictDescendantRange) {
  // The structural property the super-covering builder's range scans rely
  // on: an ancestor's id value is never within a strict descendant's range.
  Grid grid;
  Rng rng(5);
  for (int iter = 0; iter < 500; ++iter) {
    double lat = rng.Uniform(-80, 80);
    double lng = rng.Uniform(-179, 179);
    int lp = static_cast<int>(rng.UniformInt(29));
    int lc = lp + 1 + static_cast<int>(rng.UniformInt(30 - lp));
    CellId parent = grid.CellAt({lat, lng}, lp);
    CellId child = grid.CellAt({lat, lng}, lc);
    ASSERT_TRUE(parent.contains(child));
    ASSERT_FALSE(parent.id() >= child.range_min().id() &&
                 parent.id() <= child.range_max().id());
  }
}

TEST(CellIdTest, NextPrevWalkTheLevel) {
  Grid grid;
  CellId c = grid.CellAt({10.0, 10.0}, 12);
  CellId n = c.next();
  ASSERT_TRUE(n.is_valid());
  EXPECT_EQ(n.level(), 12);
  EXPECT_EQ(n.prev(), c);
  EXPECT_GT(n.id(), c.range_max().id());
}

TEST(CellIdTest, PathKeyLeftAligned) {
  CellId face = CellId::FromFace(3);
  int len = -1;
  uint64_t key = face.PathKey(&len);
  EXPECT_EQ(len, 0);
  EXPECT_EQ(key, 0u);

  CellId child = face.child(2);
  key = child.PathKey(&len);
  EXPECT_EQ(len, 2);
  EXPECT_EQ(key >> 62, 2u);
  EXPECT_EQ(key & ((uint64_t{1} << 62) - 1), 0u);
}

TEST(CellIdTest, SortedOrderMatchesPathKeyOrder) {
  Grid grid;
  Rng rng(31);
  std::vector<CellId> cells;
  for (int iter = 0; iter < 300; ++iter) {
    double lat = rng.Uniform(5, 85);       // northern hemisphere...
    double lng = rng.Uniform(-175, -65);   // ...slab 0 => face 3 only
    cells.push_back(grid.CellAt({lat, lng},
                                5 + static_cast<int>(rng.UniformInt(20))));
  }
  // Drop cells contained in others so the comparison below is well-defined.
  std::sort(cells.begin(), cells.end());
  std::vector<CellId> disjoint;
  for (const CellId& c : cells) {
    while (!disjoint.empty() && c.contains(disjoint.back())) {
      disjoint.pop_back();
    }
    if (!disjoint.empty() &&
        (disjoint.back().contains(c) || disjoint.back() == c)) {
      continue;
    }
    disjoint.push_back(c);
  }
  for (size_t k = 1; k < disjoint.size(); ++k) {
    int la, lb;
    uint64_t ka = disjoint[k - 1].PathKey(&la);
    uint64_t kb = disjoint[k].PathKey(&lb);
    ASSERT_LT(ka, kb);
  }
}

TEST(CellIdTest, ToStringFormat) {
  CellId c = CellId::FromFace(2).child(1).child(3);
  EXPECT_EQ(c.ToString(), "2/13");
  EXPECT_EQ(CellId().ToString(), "(invalid)");
}

TEST(GridTest, FaceSelection) {
  // Faces: southern hemisphere 0..2, northern 3..5, 120-degree slabs.
  EXPECT_EQ(Grid::FaceAt({-10.0, -180.0}), 0);
  EXPECT_EQ(Grid::FaceAt({-10.0, -60.0001}), 0);
  EXPECT_EQ(Grid::FaceAt({-10.0, 0.0}), 1);
  EXPECT_EQ(Grid::FaceAt({-10.0, 100.0}), 2);
  EXPECT_EQ(Grid::FaceAt({40.7, -74.0}), 3);  // NYC
  EXPECT_EQ(Grid::FaceAt({10.0, 0.0}), 4);
  EXPECT_EQ(Grid::FaceAt({10.0, 179.999}), 5);
  EXPECT_EQ(Grid::FaceAt({10.0, 180.0}), 5);  // clamped
  EXPECT_EQ(Grid::FaceAt({0.0, -74.0}), 3);   // equator goes north
}

TEST(GridTest, CellRectContainsGeneratingPoint) {
  Grid grid;
  Rng rng(77);
  for (int iter = 0; iter < 2000; ++iter) {
    LatLng p{rng.Uniform(-89.9, 89.9), rng.Uniform(-179.9, 179.9)};
    int level = static_cast<int>(rng.UniformInt(31));
    CellId c = grid.CellAt(p, level);
    LatLngRect r = grid.CellRect(c);
    ASSERT_TRUE(r.Contains(p))
        << "level " << level << " lat " << p.lat << " lng " << p.lng;
  }
}

TEST(GridTest, ChildRectNestsInParentRect) {
  Grid grid;
  Rng rng(78);
  for (int iter = 0; iter < 500; ++iter) {
    LatLng p{rng.Uniform(-89, 89), rng.Uniform(-179, 179)};
    int level = static_cast<int>(rng.UniformInt(30));
    CellId c = grid.CellAt(p, level);
    LatLngRect pr = grid.CellRect(c);
    for (int k = 0; k < 4; ++k) {
      LatLngRect cr = grid.CellRect(c.child(k));
      ASSERT_GE(cr.lat_lo, pr.lat_lo - 1e-12);
      ASSERT_LE(cr.lat_hi, pr.lat_hi + 1e-12);
      ASSERT_GE(cr.lng_lo, pr.lng_lo - 1e-12);
      ASSERT_LE(cr.lng_hi, pr.lng_hi + 1e-12);
    }
  }
}

TEST(GridTest, SiblingRectsTileParent) {
  Grid grid;
  CellId c = grid.CellAt({40.7, -74.0}, 9);
  LatLngRect pr = grid.CellRect(c);
  double child_area_sum = 0;
  for (int k = 0; k < 4; ++k) {
    LatLngRect cr = grid.CellRect(c.child(k));
    child_area_sum += cr.WidthDeg() * cr.HeightDeg();
  }
  EXPECT_NEAR(child_area_sum, pr.WidthDeg() * pr.HeightDeg(),
              1e-9 * child_area_sum);
}

TEST(GridTest, DiagonalShrinksByHalfPerLevel) {
  Grid grid;
  LatLng nyc{40.7, -74.0};
  double prev = grid.CellDiagonalMeters(grid.CellAt(nyc, 5));
  for (int level = 6; level <= 25; ++level) {
    double d = grid.CellDiagonalMeters(grid.CellAt(nyc, level));
    EXPECT_NEAR(d, prev / 2, prev * 0.02) << "level " << level;
    prev = d;
  }
}

TEST(GridTest, LevelForDiagonalIsSufficient) {
  Grid grid;
  LatLngRect nyc{40.49, 40.92, -74.26, -73.69};
  for (double bound : {60.0, 15.0, 4.0}) {
    int level = grid.LevelForDiagonal(bound, nyc);
    ASSERT_GT(level, 0);
    // Every cell at that level inside the region satisfies the bound.
    Rng rng(101);
    for (int iter = 0; iter < 200; ++iter) {
      LatLng p{rng.Uniform(nyc.lat_lo, nyc.lat_hi),
               rng.Uniform(nyc.lng_lo, nyc.lng_hi)};
      ASSERT_LE(grid.CellDiagonalMeters(grid.CellAt(p, level)), bound);
    }
    // One level coarser must violate it somewhere (tightness).
    double coarse =
        grid.CellDiagonalMeters(grid.CellAt(nyc.Center(), level - 1));
    EXPECT_GT(coarse, bound);
  }
}

TEST(GridTest, PrecisionLevelsMatchPaper) {
  // Paper (S2 projection): 4 m precision <=> level 22. The 120x90-degree
  // faces make cells nearly square at NYC's latitude, matching that level.
  Grid grid;
  LatLngRect nyc{40.49, 40.92, -74.26, -73.69};
  EXPECT_EQ(grid.LevelForDiagonal(4.0, nyc), 22);
  // Cells at NYC are close to square in meters (within ~5%).
  CellId c = grid.CellAt({40.7, -74.0}, 18);
  LatLngRect r = grid.CellRect(c);
  double w = r.WidthDeg() * MetersPerDegreeLng(40.7);
  double h = r.HeightDeg() * kMetersPerDegreeLat;
  EXPECT_NEAR(w / h, 1.0, 0.05);
}

TEST(GridTest, MortonGridAlsoWorks) {
  Grid grid(CurveType::kMorton);
  LatLng p{40.7, -74.0};
  CellId c = grid.CellAt(p, 18);
  EXPECT_TRUE(grid.CellRect(c).Contains(p));
}

TEST(GridTest, PolesAndAntimeridianClamp) {
  Grid grid;
  for (LatLng p : {LatLng{90, 180}, LatLng{-90, -180}, LatLng{90, -180},
                   LatLng{-90, 180}}) {
    CellId c = grid.CellAt(p, 30);
    EXPECT_TRUE(c.is_valid());
  }
}

TEST(LatLngTest, DistanceMeters) {
  // One degree of latitude is ~110.6 km.
  EXPECT_NEAR(DistanceMeters({40.0, -74.0}, {41.0, -74.0}), 110574, 200);
  // One degree of longitude at 40.7N is ~84.4 km.
  double d = DistanceMeters({40.7, -74.0}, {40.7, -73.0});
  EXPECT_NEAR(d, 111320 * std::cos(40.7 * kDegToRad), 300);
  EXPECT_EQ(DistanceMeters({1, 2}, {1, 2}), 0);
}

TEST(LatLngTest, RectDiagonalConservative) {
  LatLngRect r{40.0, 41.0, -74.0, -73.0};
  // Diagonal must be at least the distance between opposite corners.
  double corner = DistanceMeters({40.0, -74.0}, {41.0, -73.0});
  EXPECT_GE(r.DiagonalMeters(), corner * 0.999);
}

}  // namespace
}  // namespace actjoin::geo
