// Tests for the continuous-query layer (wire v6): the SUBSCRIBE /
// SUBSCRIPTION_RESULT / EVENT / EVENT_GAP codecs must round-trip and
// reject malformed bytes, the SubscriptionMatcher must be equivalent to a
// recompute-from-scratch membership oracle (across point motion AND
// epoch swaps from live mutations) with dense per-subscription sequence
// numbers and the documented intra-batch ordering, and the served push
// channel must deliver the same events over loopback — with a bounded
// outbox that answers overflow with a coalesced EVENT_GAP instead of
// blocking the event loop. Suites are named Subscribe* so the TSan CI
// job's filter runs them under ThreadSanitizer.
//
// Threading discipline: gtest assertions run only on the main thread;
// event handlers (which run on client reader / service worker threads)
// record into mutex-protected structs asserted after quiescing.
//
// Seeding convention (full rationale in util_test.cc): random data comes
// only from the workload factories with explicit literal seeds.

#include <netinet/in.h>
#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "act/join.h"
#include "geo/grid.h"
#include "geometry/pip.h"
#include "net/join_client.h"
#include "net/join_server.h"
#include "net/socket.h"
#include "net/wire.h"
#include "service/join_service.h"
#include "service/sharded_index.h"
#include "service/subscription_matcher.h"
#include "workloads/datasets.h"

namespace actjoin::net {
namespace {

using act::JoinMode;
using geo::Grid;
using service::EventBatch;
using service::GeoEvent;
using service::GeoEventKind;
using service::JoinService;
using service::QueryBatch;
using service::ServiceOptions;
using service::ShardedIndex;
using service::ShardingOptions;
using service::SubscriptionInfo;
using service::SubscriptionMatcher;
using service::SubscriptionMode;
using service::SubscriptionSpec;

std::shared_ptr<const ShardedIndex> BuildShared(
    const std::vector<geom::Polygon>& polygons, const Grid& grid,
    int num_shards) {
  ShardingOptions opts;
  opts.num_shards = num_shards;
  return std::make_shared<const ShardedIndex>(
      ShardedIndex::Build(polygons, grid, opts));
}

QueryBatch MakeBatch(const wl::PointSet& pts, JoinMode mode) {
  return {pts.cell_ids(), pts.points(), mode};
}

// --- Wire codec ------------------------------------------------------------

TEST(SubscribeWire, SpecRoundTripAllSelectorsAndModes) {
  std::vector<SubscriptionSpec> specs;
  for (SubscriptionMode mode : {SubscriptionMode::kBoth,
                                SubscriptionMode::kEnterOnly,
                                SubscriptionMode::kLeaveOnly}) {
    SubscriptionSpec all;
    all.mode = mode;
    specs.push_back(all);

    SubscriptionSpec ids;
    ids.selector = SubscriptionSpec::Selector::kPolygonIds;
    ids.polygon_ids = {3, 1, 4, 1, 5};
    ids.mode = mode;
    specs.push_back(ids);

    SubscriptionSpec range;
    range.selector = SubscriptionSpec::Selector::kCellRange;
    range.cell_lo = 100;
    range.cell_hi = 9000;
    range.mode = mode;
    specs.push_back(range);
  }
  for (const SubscriptionSpec& spec : specs) {
    util::ByteWriter w;
    AppendSubscribe(spec, &w);
    SubscriptionSpec got;
    ASSERT_TRUE(DecodeSubscribe(w.bytes(), &got));
    EXPECT_EQ(got.selector, spec.selector);
    EXPECT_EQ(got.mode, spec.mode);
    EXPECT_EQ(got.polygon_ids, spec.polygon_ids);
    EXPECT_EQ(got.cell_lo, spec.cell_lo);
    EXPECT_EQ(got.cell_hi, spec.cell_hi);
  }
}

TEST(SubscribeWire, SpecRejectsMalformedPayloads) {
  SubscriptionSpec spec;
  spec.selector = SubscriptionSpec::Selector::kPolygonIds;
  spec.polygon_ids = {7, 8, 9};
  util::ByteWriter w;
  AppendSubscribe(spec, &w);
  std::vector<uint8_t> good = w.bytes();

  SubscriptionSpec out;
  for (size_t cut = 0; cut < good.size(); ++cut) {
    std::vector<uint8_t> bad(good.begin(),
                             good.begin() + static_cast<ptrdiff_t>(cut));
    EXPECT_FALSE(DecodeSubscribe(bad, &out)) << "cut=" << cut;
  }
  std::vector<uint8_t> padded = good;
  padded.push_back(0);
  EXPECT_FALSE(DecodeSubscribe(padded, &out));

  std::vector<uint8_t> bad_selector = good;
  bad_selector[0] = 3;
  EXPECT_FALSE(DecodeSubscribe(bad_selector, &out));
  std::vector<uint8_t> bad_mode = good;
  bad_mode[1] = 3;
  EXPECT_FALSE(DecodeSubscribe(bad_mode, &out));
  std::vector<uint8_t> bad_reserved = good;
  bad_reserved[2] = 1;
  EXPECT_FALSE(DecodeSubscribe(bad_reserved, &out));
  // A forged count larger than the bytes actually present.
  std::vector<uint8_t> forged = good;
  forged[4] = 0xFF;
  EXPECT_FALSE(DecodeSubscribe(forged, &out));
  // An empty id list is meaningless and refused.
  SubscriptionSpec empty_ids;
  empty_ids.selector = SubscriptionSpec::Selector::kPolygonIds;
  util::ByteWriter we;
  AppendSubscribe(empty_ids, &we);
  EXPECT_FALSE(DecodeSubscribe(we.bytes(), &out));
  // An inverted cell range is refused.
  SubscriptionSpec inverted;
  inverted.selector = SubscriptionSpec::Selector::kCellRange;
  inverted.cell_lo = 9;
  inverted.cell_hi = 3;
  util::ByteWriter wi;
  AppendSubscribe(inverted, &wi);
  EXPECT_FALSE(DecodeSubscribe(wi.bytes(), &out));
}

TEST(SubscribeWire, InfoEventAndGapRoundTrip) {
  SubscriptionInfo info{.id = 42, .epoch = 7, .watched_polygons = 310,
                        .coverage_intervals = 19};
  util::ByteWriter wi;
  AppendSubscriptionInfo(info, &wi);
  SubscriptionInfo info_got;
  ASSERT_TRUE(DecodeSubscriptionInfo(wi.bytes(), &info_got));
  EXPECT_EQ(info_got, info);

  EventBatch batch;
  batch.subscription_id = 42;
  batch.first_seq = 1001;
  batch.epoch = 7;
  batch.events = {{GeoEventKind::kLeave, 3, 17},
                  {GeoEventKind::kEnter, 3, 29},
                  {GeoEventKind::kEnter, 8, 4}};
  util::ByteWriter wb;
  AppendEventBatch(batch, &wb);
  EventBatch batch_got;
  ASSERT_TRUE(DecodeEventBatch(wb.bytes(), &batch_got));
  EXPECT_EQ(batch_got, batch);

  EventGap gap{.subscription_id = 42, .first_skipped_seq = 1004,
               .last_skipped_seq = 1050};
  util::ByteWriter wg;
  AppendEventGap(gap, &wg);
  EventGap gap_got;
  ASSERT_TRUE(DecodeEventGap(wg.bytes(), &gap_got));
  EXPECT_EQ(gap_got, gap);

  // The server-initiated frame builders stamp v6, the push type, and
  // request id 0 (no request is being answered).
  std::vector<uint8_t> frame = EncodeEventFrame(batch);
  FrameHeader header;
  size_t frame_bytes = 0;
  WireError err = WireError::kNone;
  ASSERT_EQ(TryParseFrame(frame, kDefaultMaxFrameBytes, &header, &frame_bytes,
                          &err),
            FrameParse::kFrame);
  EXPECT_EQ(header.version, kWireVersion);
  EXPECT_EQ(header.type, MessageType::kEvent);
  EXPECT_EQ(header.request_id, 0u);
}

TEST(SubscribeWire, EventAndGapRejectMalformedPayloads) {
  EventBatch batch;
  batch.subscription_id = 1;
  batch.first_seq = 1;
  batch.events = {{GeoEventKind::kEnter, 5, 6},
                  {GeoEventKind::kLeave, 5, 6}};
  util::ByteWriter wb;
  AppendEventBatch(batch, &wb);
  std::vector<uint8_t> good = wb.bytes();

  EventBatch out;
  for (size_t cut = 0; cut < good.size(); ++cut) {
    std::vector<uint8_t> bad(good.begin(),
                             good.begin() + static_cast<ptrdiff_t>(cut));
    EXPECT_FALSE(DecodeEventBatch(bad, &out)) << "cut=" << cut;
  }
  std::vector<uint8_t> padded = good;
  padded.push_back(0);
  EXPECT_FALSE(DecodeEventBatch(padded, &out));
  // Reserved u32 after the count must be zero.
  std::vector<uint8_t> bad_reserved = good;
  bad_reserved[28] = 1;
  EXPECT_FALSE(DecodeEventBatch(bad_reserved, &out));
  // An event's kind byte only admits 0 / 1, and its pad bytes only 0.
  std::vector<uint8_t> bad_kind = good;
  bad_kind[32] = 2;
  EXPECT_FALSE(DecodeEventBatch(bad_kind, &out));
  std::vector<uint8_t> bad_pad = good;
  bad_pad[33] = 1;
  EXPECT_FALSE(DecodeEventBatch(bad_pad, &out));
  // A forged count cannot reserve more events than arrived.
  std::vector<uint8_t> forged = good;
  forged[24] = 0xFF;
  EXPECT_FALSE(DecodeEventBatch(forged, &out));

  EventGap gap{.subscription_id = 9, .first_skipped_seq = 2,
               .last_skipped_seq = 5};
  util::ByteWriter wg;
  AppendEventGap(gap, &wg);
  std::vector<uint8_t> ggood = wg.bytes();
  EventGap gout;
  for (size_t cut = 0; cut < ggood.size(); ++cut) {
    std::vector<uint8_t> bad(ggood.begin(),
                             ggood.begin() + static_cast<ptrdiff_t>(cut));
    EXPECT_FALSE(DecodeEventGap(bad, &gout)) << "cut=" << cut;
  }

  uint64_t sub = 0;
  std::vector<uint8_t> seven(7, 0);
  EXPECT_FALSE(DecodeUnsubscribe(seven, &sub));
  std::vector<uint8_t> nine(9, 0);
  EXPECT_FALSE(DecodeUnsubscribe(nine, &sub));
}

// --- Matcher vs recompute-from-scratch oracle ------------------------------

/// The oracle: brute-force point-in-polygon membership over the live
/// polygon map (global id -> polygon), recomputed from scratch at every
/// step — the ground truth the incremental ENTER/LEAVE stream must fold
/// to.
std::set<uint32_t> OracleMembership(
    const std::map<uint32_t, geom::Polygon>& live, const geom::Point& p) {
  std::set<uint32_t> inside;
  for (const auto& [id, poly] : live) {
    if (geom::ContainsPoint(poly, p)) inside.insert(id);
  }
  return inside;
}

/// Collects every delivered batch; folding and assertions happen on the
/// main thread after the driving call returns (OnPointBatch runs before
/// Submit's future resolves, OnEpochSwap inside the mutation call).
struct EventLog {
  std::mutex mu;
  std::vector<EventBatch> batches;

  SubscriptionMatcher::EventSink Sink() {
    return [this](EventBatch&& batch) {
      std::lock_guard<std::mutex> lock(mu);
      batches.push_back(std::move(batch));
    };
  }
  std::vector<EventBatch> Take() {
    std::lock_guard<std::mutex> lock(mu);
    return std::exchange(batches, {});
  }
};

/// Folds one transition's batches into per-track membership, asserting
/// the determinism contract along the way: dense seqs continuing at
/// *next_seq, and within each batch ascending track ids with LEAVEs
/// before ENTERs per track, each group in ascending polygon id.
void FoldAndCheck(const std::vector<EventBatch>& batches, uint64_t* next_seq,
                  std::map<uint32_t, std::set<uint32_t>>* membership) {
  for (const EventBatch& batch : batches) {
    EXPECT_EQ(batch.first_seq, *next_seq);
    *next_seq += batch.events.size();
    for (size_t i = 1; i < batch.events.size(); ++i) {
      const GeoEvent& prev = batch.events[i - 1];
      const GeoEvent& cur = batch.events[i];
      ASSERT_LE(prev.track_id, cur.track_id);
      if (prev.track_id == cur.track_id) {
        if (prev.kind == cur.kind) {
          EXPECT_LT(prev.polygon_id, cur.polygon_id);
        } else {
          // LEAVEs come first within a track.
          EXPECT_EQ(prev.kind, GeoEventKind::kLeave);
          EXPECT_EQ(cur.kind, GeoEventKind::kEnter);
        }
      }
    }
    for (const GeoEvent& e : batch.events) {
      std::set<uint32_t>& inside = (*membership)[e.track_id];
      if (e.kind == GeoEventKind::kEnter) {
        EXPECT_TRUE(inside.insert(e.polygon_id).second)
            << "duplicate ENTER track=" << e.track_id
            << " polygon=" << e.polygon_id;
      } else {
        EXPECT_EQ(inside.erase(e.polygon_id), 1u)
            << "LEAVE without ENTER track=" << e.track_id
            << " polygon=" << e.polygon_id;
      }
    }
  }
}

TEST(SubscribeMatcher, FoldedEventsMatchOracleAcrossMotionAndMutations) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  ServiceOptions sopts;
  sopts.worker_threads = 1;
  JoinService service(BuildShared(ds.polygons, grid, 2),
                      sopts);
  SubscriptionMatcher matcher(&service.catalog());
  service.set_subscription_matcher(&matcher);

  EventLog log;
  auto info = matcher.Add(0, SubscriptionSpec{}, log.Sink());
  ASSERT_TRUE(info.has_value());
  EXPECT_GT(info->id, 0u);
  EXPECT_EQ(info->watched_polygons, ds.polygons.size());
  EXPECT_GT(info->coverage_intervals, 0u);
  EXPECT_EQ(matcher.active_subscriptions(), 1u);

  std::map<uint32_t, geom::Polygon> live;
  for (size_t i = 0; i < ds.polygons.size(); ++i) {
    live.emplace(static_cast<uint32_t>(i), ds.polygons[i]);
  }

  const uint64_t kTracks = 96;
  wl::PointSet pos_a = wl::TaxiPoints(ds.mbr, kTracks, grid, 61);
  wl::PointSet pos_b = wl::TaxiPoints(ds.mbr, kTracks, grid, 62);

  uint64_t next_seq = 1;
  std::map<uint32_t, std::set<uint32_t>> membership;
  auto check_against_oracle = [&](const wl::PointSet& pos) {
    for (uint64_t t = 0; t < kTracks; ++t) {
      std::set<uint32_t> want = OracleMembership(live, pos.points()[t]);
      auto it = membership.find(static_cast<uint32_t>(t));
      std::set<uint32_t> got =
          it == membership.end() ? std::set<uint32_t>{} : it->second;
      EXPECT_EQ(got, want) << "track " << t;
    }
  };

  // Step 1: first sighting of every track — the initial memberships
  // arrive as ENTERs.
  service.Submit(MakeBatch(pos_a, JoinMode::kExact)).get();
  FoldAndCheck(log.Take(), &next_seq, &membership);
  check_against_oracle(pos_a);

  // Step 2: every track moves — the diff against the previous positions.
  service.Submit(MakeBatch(pos_b, JoinMode::kExact)).get();
  FoldAndCheck(log.Take(), &next_seq, &membership);
  check_against_oracle(pos_b);

  // Step 3: REMOVE_POLYGONS publishes a new epoch — LEAVEs with no point
  // traffic at all (the epoch swap re-evaluates every known track).
  std::vector<uint32_t> removed = {0, 1, 2, 3, 4, 5, 6, 7};
  ASSERT_EQ(service.RemovePolygons(0, removed).status,
            service::MutationStatus::kApplied);
  for (uint32_t id : removed) live.erase(id);
  FoldAndCheck(log.Take(), &next_seq, &membership);
  check_against_oracle(pos_b);

  // Step 4: ADD_POLYGONS re-adds them under fresh ids — ENTERs appear for
  // tracks inside (a watch-all subscription picks up later additions).
  std::vector<geom::Polygon> readd;
  for (uint32_t id : removed) readd.push_back(ds.polygons[id]);
  service::MutationResult add = service.AddPolygons(0, readd);
  ASSERT_EQ(add.status, service::MutationStatus::kApplied);
  for (size_t i = 0; i < readd.size(); ++i) {
    live.emplace(add.first_id + static_cast<uint32_t>(i), readd[i]);
  }
  FoldAndCheck(log.Take(), &next_seq, &membership);
  check_against_oracle(pos_b);

  // Step 5: move everything back — still consistent after the swaps.
  service.Submit(MakeBatch(pos_a, JoinMode::kExact)).get();
  FoldAndCheck(log.Take(), &next_seq, &membership);
  check_against_oracle(pos_a);

  EXPECT_EQ(matcher.events_emitted(), next_seq - 1);
  EXPECT_TRUE(matcher.Remove(info->id));
  EXPECT_FALSE(matcher.Remove(info->id));
  EXPECT_EQ(matcher.active_subscriptions(), 0u);
}

TEST(SubscribeMatcher, ModeFilterIsEmissionOnlyAndSeqsStayDense) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  ServiceOptions sopts;
  sopts.worker_threads = 1;
  JoinService service(BuildShared(ds.polygons, grid, 2),
                      sopts);
  SubscriptionMatcher matcher(&service.catalog());
  service.set_subscription_matcher(&matcher);

  EventLog both_log, enter_log, leave_log;
  SubscriptionSpec both, enter, leave;
  enter.mode = SubscriptionMode::kEnterOnly;
  leave.mode = SubscriptionMode::kLeaveOnly;
  auto both_info = matcher.Add(0, both, both_log.Sink());
  auto enter_info = matcher.Add(0, enter, enter_log.Sink());
  auto leave_info = matcher.Add(0, leave, leave_log.Sink());
  ASSERT_TRUE(both_info && enter_info && leave_info);

  const uint64_t kTracks = 64;
  for (uint64_t seed : {71, 72, 73}) {
    wl::PointSet pos = wl::TaxiPoints(ds.mbr, kTracks, grid, seed);
    service.Submit(MakeBatch(pos, JoinMode::kExact)).get();
  }

  auto flatten = [](const std::vector<EventBatch>& batches,
                    uint64_t* final_seq) {
    std::vector<GeoEvent> events;
    uint64_t next = 1;
    for (const EventBatch& b : batches) {
      EXPECT_EQ(b.first_seq, next);  // dense: filter runs before numbering
      next += b.events.size();
      events.insert(events.end(), b.events.begin(), b.events.end());
    }
    *final_seq = next;
    return events;
  };
  uint64_t both_seq = 0, enter_seq = 0, leave_seq = 0;
  std::vector<GeoEvent> all = flatten(both_log.Take(), &both_seq);
  std::vector<GeoEvent> enters = flatten(enter_log.Take(), &enter_seq);
  std::vector<GeoEvent> leaves = flatten(leave_log.Take(), &leave_seq);

  // The filtered streams are exactly the kind-restricted subsequences of
  // the unfiltered one: filtering never reorders, drops, or invents.
  std::vector<GeoEvent> want_enters, want_leaves;
  for (const GeoEvent& e : all) {
    (e.kind == GeoEventKind::kEnter ? want_enters : want_leaves).push_back(e);
  }
  EXPECT_EQ(enters, want_enters);
  EXPECT_EQ(leaves, want_leaves);
  EXPECT_FALSE(all.empty());
  EXPECT_FALSE(leaves.empty()) << "motion should produce some LEAVEs";
  EXPECT_EQ(both_seq - 1, all.size());
  EXPECT_EQ(enter_seq - 1, enters.size());
  EXPECT_EQ(leave_seq - 1, leaves.size());
}

TEST(SubscribeMatcher, EpochTagsNeverRegressUnderConcurrentSwaps) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  ServiceOptions sopts;
  sopts.worker_threads = 4;
  JoinService service(BuildShared(ds.polygons, grid, 2), sopts);
  SubscriptionMatcher matcher(&service.catalog());
  service.set_subscription_matcher(&matcher);

  EventLog log;
  auto info = matcher.Add(0, SubscriptionSpec{}, log.Sink());
  ASSERT_TRUE(info.has_value());

  const uint64_t kTracks = 64;
  wl::PointSet pos_a = wl::TaxiPoints(ds.mbr, kTracks, grid, 95);
  wl::PointSet pos_b = wl::TaxiPoints(ds.mbr, kTracks, grid, 96);

  // Point batches race live mutations: a worker that acquired its
  // snapshot just before a swap (or behind a faster worker at the new
  // epoch) must not roll the subscription back to the older epoch —
  // the regression rebuilt coverage against the stale index and emitted
  // phantom LEAVE/ENTER flaps the next batch reversed. The black-box
  // signature of that rollback is a delivered batch tagged with a lower
  // epoch than one already delivered.
  std::thread mutator([&] {
    for (size_t i = 0; i < 24; ++i) {
      service.AddPolygons(0, {ds.polygons[i % ds.polygons.size()]});
    }
  });
  std::vector<std::future<service::JoinResult>> in_flight;
  for (int i = 0; i < 48; ++i) {
    in_flight.push_back(
        service.Submit(MakeBatch(i % 2 == 0 ? pos_a : pos_b,
                                 JoinMode::kExact)));
  }
  for (auto& f : in_flight) f.get();
  mutator.join();

  uint64_t prev_epoch = 0;
  uint64_t next_seq = 1;
  for (const EventBatch& b : log.Take()) {
    EXPECT_GE(b.epoch, prev_epoch) << "delivered epoch regressed";
    prev_epoch = std::max(prev_epoch, b.epoch);
    EXPECT_EQ(b.first_seq, next_seq) << "seq space tore under the race";
    next_seq += b.events.size();
  }
  EXPECT_EQ(matcher.events_emitted(), next_seq - 1);
}

TEST(SubscribeMatcher, AddRefusesUnknownDatasetAndOutOfRangeIds) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  JoinService service(BuildShared(ds.polygons, grid, 2), {});
  SubscriptionMatcher matcher(&service.catalog());

  EventLog log;
  EXPECT_FALSE(matcher.Add(77, SubscriptionSpec{}, log.Sink()).has_value());

  SubscriptionSpec bad_ids;
  bad_ids.selector = SubscriptionSpec::Selector::kPolygonIds;
  bad_ids.polygon_ids = {0, static_cast<uint32_t>(ds.polygons.size())};
  EXPECT_FALSE(matcher.Add(0, bad_ids, log.Sink()).has_value());

  SubscriptionSpec good_ids;
  good_ids.selector = SubscriptionSpec::Selector::kPolygonIds;
  good_ids.polygon_ids = {0, 1, 2};
  auto info = matcher.Add(0, good_ids, log.Sink());
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->watched_polygons, 3u);
}

// --- Served push channel over loopback -------------------------------------

struct TestServer {
  wl::PolygonDataset ds;
  std::shared_ptr<const ShardedIndex> index;
  std::unique_ptr<JoinService> service;
  std::unique_ptr<JoinServer> server;

  static TestServer Make(const ServiceOptions& sopts, ServerOptions nopts) {
    Grid grid;
    TestServer out;
    out.ds = wl::Neighborhoods(0.05);
    out.index = BuildShared(out.ds.polygons, grid, 2);
    out.service = std::make_unique<JoinService>(out.index, sopts);
    out.server = std::make_unique<JoinServer>(out.service.get(), nopts);
    std::string error;
    // gtest macros must run on the main thread; Make is only called there.
    EXPECT_TRUE(out.server->Start(&error)) << error;
    return out;
  }
};

/// Client-side event collector: handlers run on the reader thread, the
/// main thread waits for an expected count and then asserts.
struct ClientLog {
  std::mutex mu;
  std::vector<EventBatch> batches;
  std::vector<EventGap> gaps;
  size_t events = 0;

  AsyncJoinClient::EventHandler OnEvents() {
    return [this](const EventBatch& batch) {
      std::lock_guard<std::mutex> lock(mu);
      events += batch.events.size();
      batches.push_back(batch);
    };
  }
  AsyncJoinClient::GapHandler OnGap() {
    return [this](const EventGap& gap) {
      std::lock_guard<std::mutex> lock(mu);
      gaps.push_back(gap);
    };
  }
  bool WaitForEvents(size_t want, int timeout_ms = 10000) {
    for (int waited = 0; waited < timeout_ms; waited += 5) {
      {
        std::lock_guard<std::mutex> lock(mu);
        if (events >= want) return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    std::lock_guard<std::mutex> lock(mu);
    return events >= want;
  }
};

TEST(SubscribeServer, EndToEndEnterLeaveOverLoopback) {
  ServiceOptions sopts;
  sopts.worker_threads = 2;
  TestServer ts = TestServer::Make(sopts, ServerOptions{});
  Grid grid;

  JoinClient client;
  std::string error;
  ASSERT_TRUE(client.Connect(ts.server->host(), ts.server->port(), &error))
      << error;

  ClientLog log;
  AsyncJoinClient::SubscribeReply sub =
      client.Subscribe(0, SubscriptionSpec{}, log.OnEvents(), log.OnGap());
  ASSERT_TRUE(sub.ok) << sub.message;
  EXPECT_GT(sub.info.id, 0u);
  EXPECT_EQ(sub.info.watched_polygons, ts.ds.polygons.size());

  std::map<uint32_t, geom::Polygon> live;
  for (size_t i = 0; i < ts.ds.polygons.size(); ++i) {
    live.emplace(static_cast<uint32_t>(i), ts.ds.polygons[i]);
  }
  const uint64_t kTracks = 64;
  wl::PointSet pos_a = wl::TaxiPoints(ts.ds.mbr, kTracks, grid, 81);
  wl::PointSet pos_b = wl::TaxiPoints(ts.ds.mbr, kTracks, grid, 82);

  // Expected transition sizes come from the oracle, so the waits are for
  // exact counts, not sleeps-and-hopes.
  size_t inside_a = 0, diff_ab = 0;
  for (uint64_t t = 0; t < kTracks; ++t) {
    std::set<uint32_t> in_a = OracleMembership(live, pos_a.points()[t]);
    std::set<uint32_t> in_b = OracleMembership(live, pos_b.points()[t]);
    inside_a += in_a.size();
    std::vector<uint32_t> sym;
    std::set_symmetric_difference(in_a.begin(), in_a.end(), in_b.begin(),
                                  in_b.end(), std::back_inserter(sym));
    diff_ab += sym.size();
  }
  ASSERT_GT(inside_a, 0u);
  ASSERT_GT(diff_ab, 0u);

  ASSERT_TRUE(client.Join(MakeBatch(pos_a, JoinMode::kExact)).ok);
  ASSERT_TRUE(log.WaitForEvents(inside_a));
  ASSERT_TRUE(client.Join(MakeBatch(pos_b, JoinMode::kExact)).ok);
  ASSERT_TRUE(log.WaitForEvents(inside_a + diff_ab));

  // Fold the pushed stream and compare against the oracle at B.
  uint64_t next_seq = 1;
  std::map<uint32_t, std::set<uint32_t>> membership;
  std::vector<EventBatch> batches;
  {
    std::lock_guard<std::mutex> lock(log.mu);
    batches = log.batches;
    EXPECT_EQ(log.events, inside_a + diff_ab);
    EXPECT_TRUE(log.gaps.empty());
  }
  for (const EventBatch& b : batches) {
    EXPECT_EQ(b.subscription_id, sub.info.id);
  }
  FoldAndCheck(batches, &next_seq, &membership);
  for (uint64_t t = 0; t < kTracks; ++t) {
    std::set<uint32_t> want = OracleMembership(live, pos_b.points()[t]);
    auto it = membership.find(static_cast<uint32_t>(t));
    std::set<uint32_t> got =
        it == membership.end() ? std::set<uint32_t>{} : it->second;
    EXPECT_EQ(got, want) << "track " << t;
  }

  // The standing query shows up in STATS, as do the push counters.
  service::ServiceStats stats;
  ASSERT_TRUE(client.GetStats(&stats, &error)) << error;
  EXPECT_EQ(stats.active_subscriptions, 1u);
  EXPECT_EQ(stats.events_pushed, inside_a + diff_ab);
  EXPECT_EQ(stats.events_dropped, 0u);

  // Unsubscribe acks (id echoed, figures zeroed) and silences the stream.
  AsyncJoinClient::SubscribeReply unsub = client.Unsubscribe(sub.info.id);
  ASSERT_TRUE(unsub.ok) << unsub.message;
  EXPECT_EQ(unsub.info.id, sub.info.id);
  EXPECT_EQ(unsub.info.watched_polygons, 0u);
  ASSERT_TRUE(client.Join(MakeBatch(pos_a, JoinMode::kExact)).ok);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  {
    std::lock_guard<std::mutex> lock(log.mu);
    EXPECT_EQ(log.events, inside_a + diff_ab);
  }
  ASSERT_TRUE(client.GetStats(&stats, &error)) << error;
  EXPECT_EQ(stats.active_subscriptions, 0u);

  // Unsubscribing an id that was never assigned is a recoverable error.
  AsyncJoinClient::SubscribeReply bogus = client.Unsubscribe(4242);
  EXPECT_FALSE(bogus.ok);
  EXPECT_EQ(bogus.error, WireError::kUnknownSubscription);
  EXPECT_TRUE(client.Ping(&error)) << error;
}

TEST(SubscribeServer, PushInstrumentsExportedToRegistry) {
  // The push-path instruments ride the service's MetricsRegistry: outbox
  // depth as a gauge, gap markers as a counter, and delivery lag as a
  // histogram that records once per fully-flushed EVENT frame.
  ServiceOptions sopts;
  sopts.worker_threads = 1;
  TestServer ts = TestServer::Make(sopts, ServerOptions{});
  Grid grid;

  JoinClient client;
  std::string error;
  ASSERT_TRUE(client.Connect(ts.server->host(), ts.server->port(), &error))
      << error;
  ClientLog log;
  AsyncJoinClient::SubscribeReply sub =
      client.Subscribe(0, SubscriptionSpec{}, log.OnEvents(), log.OnGap());
  ASSERT_TRUE(sub.ok) << sub.message;

  // Enough tracks that some point lands inside some polygon, so at least
  // one EVENT frame is queued, flushed, and lag-stamped.
  wl::PointSet pos = wl::TaxiPoints(ts.ds.mbr, 256, grid, 93);
  ASSERT_TRUE(client.Join(MakeBatch(pos, JoinMode::kExact)).ok);
  ASSERT_TRUE(log.WaitForEvents(1));

  const std::string text = ts.service->metrics()->RenderPrometheus();
  EXPECT_NE(text.find("# TYPE actjoin_server_event_outbox_frames gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE actjoin_server_event_gap_frames_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE actjoin_server_event_delivery_lag_us histogram"),
            std::string::npos);
  // The flushed EVENT frame recorded a delivery-lag sample.
  const size_t count_at = text.find("actjoin_server_event_delivery_lag_us_count ");
  ASSERT_NE(count_at, std::string::npos);
  EXPECT_GE(std::strtod(text.c_str() +
                            count_at +
                            std::string("actjoin_server_event_delivery_lag_us_count ")
                                .size(),
                        nullptr),
            1.0);
  // Flushed means drained: with the client reading freely the depth gauge
  // is back to zero, and nothing ever overflowed into a gap.
  EXPECT_NE(text.find("actjoin_server_event_outbox_frames 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("actjoin_server_event_gap_frames_total 0\n"),
            std::string::npos);
  EXPECT_EQ(ts.server->counters().gap_frames, 0u);
}

TEST(SubscribeServer, PerConnectionSubscriptionCapIsTyped) {
  ServerOptions nopts;
  nopts.max_subscriptions_per_connection = 2;
  TestServer ts = TestServer::Make({}, nopts);

  JoinClient client;
  std::string error;
  ASSERT_TRUE(client.Connect(ts.server->host(), ts.server->port(), &error))
      << error;
  ClientLog log;
  AsyncJoinClient::SubscribeReply a =
      client.Subscribe(0, SubscriptionSpec{}, log.OnEvents());
  AsyncJoinClient::SubscribeReply b =
      client.Subscribe(0, SubscriptionSpec{}, log.OnEvents());
  ASSERT_TRUE(a.ok && b.ok);
  AsyncJoinClient::SubscribeReply c =
      client.Subscribe(0, SubscriptionSpec{}, log.OnEvents());
  EXPECT_FALSE(c.ok);
  EXPECT_EQ(c.error, WireError::kSubscriptionLimit);
  // Recoverable: dropping one admits the next.
  ASSERT_TRUE(client.Unsubscribe(a.info.id).ok);
  AsyncJoinClient::SubscribeReply d =
      client.Subscribe(0, SubscriptionSpec{}, log.OnEvents());
  EXPECT_TRUE(d.ok) << d.message;
}

/// Reads one frame from a raw blocking socket (accumulating buffer +
/// TryParseFrame, the same discipline every real reader uses).
bool ReadFrame(int fd, std::vector<uint8_t>* buf, FrameHeader* header,
               std::vector<uint8_t>* payload) {
  while (true) {
    size_t frame_bytes = 0;
    WireError err = WireError::kNone;
    FrameParse parse =
        TryParseFrame(*buf, kDefaultMaxFrameBytes, header, &frame_bytes, &err);
    if (parse == FrameParse::kProtocolError) return false;
    if (parse == FrameParse::kFrame) {
      payload->assign(buf->begin() + kFrameHeaderBytes,
                      buf->begin() + static_cast<ptrdiff_t>(frame_bytes));
      buf->erase(buf->begin(), buf->begin() + static_cast<ptrdiff_t>(frame_bytes));
      return true;
    }
    uint8_t chunk[4096];
    ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) return false;
    buf->insert(buf->end(), chunk, chunk + n);
  }
}

TEST(SubscribeServer, OverflowCoalescesIntoEventGapWithoutBlocking) {
  ServiceOptions sopts;
  sopts.worker_threads = 1;
  ServerOptions nopts;
  nopts.event_outbox_frames = 1;  // overflow on the second queued frame
  TestServer ts = TestServer::Make(sopts, nopts);
  Grid grid;

  // A raw socket with a tiny receive buffer (set before connect, so the
  // advertised window stays small) that deliberately stops reading: the
  // slow-reader the bounded outbox exists for.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  int rcvbuf = 4096;
  ASSERT_EQ(::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof rcvbuf),
            0);
  struct timeval tv{.tv_sec = 30, .tv_usec = 0};
  ASSERT_EQ(::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv), 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ts.server->port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);

  std::string error;
  std::vector<uint8_t> frame =
      EncodeSubscribeFrame(1, 0, SubscriptionSpec{});
  ASSERT_TRUE(SendAll(fd, frame.data(), frame.size(), &error)) << error;
  std::vector<uint8_t> buf, payload;
  FrameHeader header;
  ASSERT_TRUE(ReadFrame(fd, &buf, &header, &payload));
  ASSERT_EQ(header.type, MessageType::kSubscriptionResult);
  SubscriptionInfo info;
  ASSERT_TRUE(DecodeSubscriptionInfo(payload, &info));

  // Alternate every track between two positions without reading a byte:
  // each batch is one EVENT frame, and once the socket backs up the
  // bounded outbox must start dropping its oldest frames. Keep pushing
  // well past the first drop — sustained overflow against a reader that
  // never drains is exactly the case where the outbox must stay bounded
  // (every drop-and-flush cycle widens the one queued gap marker in
  // place instead of queueing another undroppable frame).
  const uint64_t kTracks = 2048;
  wl::PointSet pos_a = wl::TaxiPoints(ts.ds.mbr, kTracks, grid, 91);
  wl::PointSet pos_b = wl::TaxiPoints(ts.ds.mbr, kTracks, grid, 92);
  bool dropped = false;
  int batches_after_drop = 0;
  for (int i = 0; i < 300 && batches_after_drop < 100; ++i) {
    const wl::PointSet& pos = (i % 2 == 0) ? pos_a : pos_b;
    ts.service->Submit(MakeBatch(pos, JoinMode::kExact)).get();
    dropped = ts.server->counters().events_dropped > 0;
    if (dropped) ++batches_after_drop;
  }
  ASSERT_TRUE(dropped) << "outbox never overflowed";
  ASSERT_GE(batches_after_drop, 100) << "sustained-overflow phase cut short";

  // UNSUBSCRIBE flushes the coalesced pending gap before its ack, so the
  // ack is a fence: once it arrives, every event and gap is in hand.
  // Emission is already quiescent (Submit().get() returned), so the seq
  // space is final.
  std::vector<uint8_t> unsub = EncodeUnsubscribeFrame(2, info.id);
  ASSERT_TRUE(SendAll(fd, unsub.data(), unsub.size(), &error)) << error;

  const uint64_t total = ts.service->subscription_matcher()->events_emitted();
  ASSERT_GT(total, 0u);
  std::vector<std::pair<uint64_t, uint64_t>> received, skipped, arrival;
  bool saw_ack = false;
  while (ReadFrame(fd, &buf, &header, &payload)) {
    if (header.type == MessageType::kEvent) {
      EventBatch batch;
      ASSERT_TRUE(DecodeEventBatch(payload, &batch));
      EXPECT_EQ(batch.subscription_id, info.id);
      if (!batch.events.empty()) {
        received.emplace_back(batch.first_seq,
                              batch.first_seq + batch.events.size() - 1);
        arrival.push_back(received.back());
      }
    } else if (header.type == MessageType::kEventGap) {
      EventGap gap;
      ASSERT_TRUE(DecodeEventGap(payload, &gap));
      EXPECT_EQ(gap.subscription_id, info.id);
      ASSERT_LE(gap.first_skipped_seq, gap.last_skipped_seq);
      skipped.emplace_back(gap.first_skipped_seq, gap.last_skipped_seq);
      arrival.push_back(skipped.back());
    } else {
      ASSERT_EQ(header.type, MessageType::kSubscriptionResult);
      EXPECT_EQ(header.request_id, 2u);
      saw_ack = true;
      break;
    }
  }
  ASSERT_TRUE(saw_ack) << "unsubscribe ack never arrived";
  ASSERT_FALSE(skipped.empty()) << "drops recorded but no EVENT_GAP frame";

  // Boundedness: gap markers are undroppable, so if every drop-and-flush
  // cycle queued a fresh one, ~100 sustained-overflow batches would leak
  // ~100 frames into the outbox of a connection that never drains. The
  // in-place widening caps the stream at a handful of markers (one per
  // stretch of uninterrupted stall, not one per drop).
  EXPECT_LE(skipped.size(), 8u)
      << "sustained overflow queued a gap marker per drop";

  // Ordering: within one subscription the hole is announced before the
  // first event that jumps past it, so the frames arrive in seq order —
  // adjacent arrival ranges never go backwards.
  for (size_t i = 1; i < arrival.size(); ++i) {
    EXPECT_GT(arrival[i].first, arrival[i - 1].second)
        << "frame " << i << " arrived out of seq order";
  }

  // Delivered and skipped ranges must tile the seq space [1, total]
  // exactly: every emitted event is accounted for exactly once.
  std::vector<std::pair<uint64_t, uint64_t>> all = received;
  all.insert(all.end(), skipped.begin(), skipped.end());
  std::sort(all.begin(), all.end());
  uint64_t next = 1;
  for (const auto& [lo, hi] : all) {
    EXPECT_EQ(lo, next) << "overlap or hole at seq " << next;
    next = hi + 1;
  }
  EXPECT_EQ(next, total + 1);

  uint64_t skipped_total = 0;
  for (const auto& [lo, hi] : skipped) skipped_total += hi - lo + 1;
  EXPECT_EQ(ts.server->counters().events_dropped, skipped_total);
  EXPECT_EQ(ts.server->counters().events_pushed, total);
  // gap_frames counts holes announced (new markers), not drops: one per
  // EVENT_GAP frame that reached the wire.
  EXPECT_EQ(ts.server->counters().gap_frames, skipped.size());

  ::close(fd);
}

}  // namespace
}  // namespace actjoin::net
