// Tests for the HTTP admin plane (net/admin_server.h) and the sampling
// CPU profiler behind /profilez (util/cpu_profiler.h).
//
// AdminHttpTest drives the real socket path — connect, one GET, read to
// close — because the framing contract (Content-Length, Connection:
// close, status lines) is exactly what Prometheus and load balancers
// depend on; route logic alone is additionally covered through
// HandleRequest. ProfilerTest pins the profiler's contract: a busy,
// exported frame shows up by name in collapsed output, and concurrent
// profile requests serialize instead of double-arming the timer.
//
// Suites are named AdminHttp* / Profiler* so the TSan CI filter runs the
// concurrent-scrape and concurrent-profile cases under the race detector.

#include <sys/socket.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exposition_test_util.h"
#include "geo/grid.h"
#include "net/admin_server.h"
#include "net/socket.h"
#include "service/join_service.h"
#include "service/sharded_index.h"
#include "util/cpu_profiler.h"
#include "workloads/datasets.h"

namespace actjoin {

/// External linkage + noinline on purpose: -rdynamic only exports
/// non-static symbols, and the profiler test asserts this frame resolves
/// by name in collapsed stacks.
__attribute__((noinline)) uint64_t AdminTestBusyLoop(
    const std::atomic<bool>& stop) {
  volatile uint64_t acc = 1;
  while (!stop.load(std::memory_order_relaxed)) {
    for (int i = 0; i < 4096; ++i) acc = acc * 6364136223846793005ULL + 1442;
  }
  return acc;
}

namespace net {
namespace {

using service::JoinService;
using service::QueryBatch;
using service::ShardedIndex;

std::shared_ptr<const ShardedIndex> SmallSnapshot() {
  geo::Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.15);
  return std::make_shared<const ShardedIndex>(ShardedIndex::Build(
      ds.polygons, grid, {.num_shards = 2, .build = {.threads = 1}}));
}

QueryBatch SmallBatch(bool trace = false) {
  geo::Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.15);
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 400, grid, 7);
  QueryBatch batch{pts.cell_ids(), pts.points(), act::JoinMode::kExact};
  batch.trace = trace;
  batch.trace_id = 42;
  return batch;
}

/// One blocking HTTP GET: send the request, read to connection close,
/// return the raw response (status line + headers + body).
std::string HttpGet(uint16_t port, const std::string& target) {
  std::string error;
  UniqueFd fd = ConnectTcp("127.0.0.1", port, &error);
  if (!fd.valid()) return "connect failed: " + error;
  const std::string request =
      "GET " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  if (!SendAll(fd.get(), reinterpret_cast<const uint8_t*>(request.data()),
               request.size(), &error)) {
    return "send failed: " + error;
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = recv(fd.get(), buf, sizeof(buf), 0);
    if (n <= 0) break;  // close (the framing contract) or error
    response.append(buf, static_cast<size_t>(n));
  }
  return response;
}

std::string StatusLine(const std::string& response) {
  return response.substr(0, response.find("\r\n"));
}

std::string Body(const std::string& response) {
  const size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? std::string() : response.substr(pos + 4);
}

TEST(AdminHttpTest, HealthzAndReadyzOverRealSockets) {
  JoinService service(SmallSnapshot());
  service.Start();
  AdminServer admin(&service);
  std::string error;
  ASSERT_TRUE(admin.Start(&error)) << error;
  ASSERT_NE(admin.port(), 0);

  const std::string health = HttpGet(admin.port(), "/healthz");
  EXPECT_EQ(StatusLine(health), "HTTP/1.1 200 OK");
  EXPECT_EQ(Body(health), "ok\n");
  EXPECT_NE(health.find("Connection: close\r\n"), std::string::npos);
  EXPECT_NE(health.find("Content-Length: 3\r\n"), std::string::npos);

  const std::string ready = HttpGet(admin.port(), "/readyz");
  EXPECT_EQ(StatusLine(ready), "HTTP/1.1 200 OK");
  EXPECT_EQ(Body(ready), "ready\n");

  admin.Stop();
  service.Shutdown();
}

TEST(AdminHttpTest, ReadyzReports503WithNoServableDataset) {
  // The catalog-less boot path: ids may exist but nothing is published.
  JoinService service{service::ServiceOptions{}};
  service.Start();
  AdminServer admin(&service);
  ASSERT_TRUE(admin.Start());

  const std::string ready = HttpGet(admin.port(), "/readyz");
  EXPECT_EQ(StatusLine(ready), "HTTP/1.1 503 Service Unavailable");
  EXPECT_EQ(Body(ready), "no servable dataset\n");
  // Liveness is orthogonal to readiness.
  EXPECT_EQ(StatusLine(HttpGet(admin.port(), "/healthz")), "HTTP/1.1 200 OK");

  admin.Stop();
  service.Shutdown();
}

TEST(AdminHttpTest, MetricsScrapeParsesAsExposition) {
  JoinService service(SmallSnapshot());
  service.Start();
  for (int i = 0; i < 3; ++i) service.Submit(SmallBatch()).get();
  AdminServer admin(&service);
  ASSERT_TRUE(admin.Start());

  const std::string response = HttpGet(admin.port(), "/metrics");
  EXPECT_EQ(StatusLine(response), "HTTP/1.1 200 OK");
  EXPECT_NE(
      response.find("Content-Type: text/plain; version=0.0.4; charset=utf-8"),
      std::string::npos);
  const std::string body = Body(response);
  testutil::ExpectParsesAsExposition(body);
  EXPECT_NE(body.find("actjoin_dataset_requests_completed_total"),
            std::string::npos);

  admin.Stop();
  service.Shutdown();
}

TEST(AdminHttpTest, StatuszShowsDatasetsStagesAndWireCounters) {
  JoinService service(SmallSnapshot());
  service.Start();
  service.Submit(SmallBatch(/*trace=*/true)).get();
  AdminServer admin(&service);
  ASSERT_TRUE(admin.Start());

  const std::string body = Body(HttpGet(admin.port(), "/statusz"));
  EXPECT_NE(body.find("actjoin statusz"), std::string::npos);
  EXPECT_NE(body.find("[service]"), std::string::npos);
  EXPECT_NE(body.find("completed_requests: 1"), std::string::npos);
  EXPECT_NE(body.find("[datasets]"), std::string::npos);
  EXPECT_NE(body.find("default epoch=1"), std::string::npos);
  EXPECT_NE(body.find("[stage_perf_counters]"), std::string::npos);
  // No JoinServer attached: the wire section is absent.
  EXPECT_EQ(body.find("[wire]"), std::string::npos);

  admin.Stop();
  service.Shutdown();
}

TEST(AdminHttpTest, TracezListsSlowQueriesAndEvents) {
  JoinService service(SmallSnapshot());
  service.Start();
  for (int i = 0; i < 2; ++i) service.Submit(SmallBatch()).get();
  AdminServer admin(&service);
  ASSERT_TRUE(admin.Start());

  const std::string body = Body(HttpGet(admin.port(), "/tracez"));
  EXPECT_NE(body.find("[slow_queries]"), std::string::npos);
  // Every completed request qualifies while the top-K ring is filling.
  EXPECT_NE(body.find("req="), std::string::npos);
  EXPECT_NE(body.find("[events]"), std::string::npos);

  admin.Stop();
  service.Shutdown();
}

TEST(AdminHttpTest, UnknownRouteAndBadMethod) {
  JoinService service(SmallSnapshot());
  service.Start();
  AdminServer admin(&service);
  ASSERT_TRUE(admin.Start());

  EXPECT_EQ(StatusLine(HttpGet(admin.port(), "/nope")),
            "HTTP/1.1 404 Not Found");

  // Route dispatch directly: non-GET must 405 and advertise the allowed
  // method.
  const std::string post = admin.HandleRequest("POST", "/metrics");
  EXPECT_EQ(StatusLine(post), "HTTP/1.1 405 Method Not Allowed");
  EXPECT_NE(post.find("Allow: GET\r\n"), std::string::npos);

  admin.Stop();
  service.Shutdown();
}

TEST(AdminHttpTest, ConcurrentScrapesUnderLoad) {
  // Scrapes race live joins; TSan watches the snapshot-style reads.
  JoinService service(SmallSnapshot());
  service.Start();
  AdminServer admin(&service);
  ASSERT_TRUE(admin.Start());

  std::atomic<bool> stop{false};
  std::thread load([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      service.Submit(SmallBatch()).get();
    }
  });
  std::vector<std::thread> scrapers;
  std::atomic<int> bad{0};
  for (int t = 0; t < 3; ++t) {
    scrapers.emplace_back([&, t] {
      const char* target = t == 0 ? "/metrics" : t == 1 ? "/statusz" : "/tracez";
      for (int i = 0; i < 8; ++i) {
        if (StatusLine(HttpGet(admin.port(), target)) != "HTTP/1.1 200 OK") {
          bad.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : scrapers) t.join();
  stop.store(true, std::memory_order_relaxed);
  load.join();
  EXPECT_EQ(bad.load(), 0);

  admin.Stop();
  service.Shutdown();
}

TEST(ProfilerTest, BusyFrameAppearsInCollapsedStacks) {
  if (!util::CpuProfiler::Supported()) {
    GTEST_SKIP() << "SIGPROF profiling unsupported on this platform";
  }
  std::atomic<bool> stop{false};
  std::thread busy([&] { AdminTestBusyLoop(stop); });
  util::CpuProfiler::Options opts;
  opts.hz = 400;  // short window, so sample densely
  const std::string collapsed = util::CpuProfiler::ProfileFor(0.3, opts);
  stop.store(true, std::memory_order_relaxed);
  busy.join();

  ASSERT_FALSE(collapsed.empty());
  EXPECT_GT(util::CpuProfiler::last_sample_count(), 0);
  // The exported busy frame must resolve by name, not as raw hex.
  EXPECT_NE(collapsed.find("AdminTestBusyLoop"), std::string::npos)
      << collapsed;
  // Collapsed-stack grammar: every line is "frame[;frame...] count".
  size_t start = 0;
  while (start < collapsed.size()) {
    size_t end = collapsed.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    const std::string line = collapsed.substr(start, end - start);
    start = end + 1;
    const size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    EXPECT_GT(std::stoull(line.substr(sp + 1)), 0u) << line;
  }
}

TEST(ProfilerTest, ProfilezEndpointServesProfileWhileSaturated) {
  JoinService service(SmallSnapshot());
  service.Start();
  AdminServer admin(&service);
  ASSERT_TRUE(admin.Start());

  std::atomic<bool> stop{false};
  std::thread busy([&] { AdminTestBusyLoop(stop); });
  const std::string response = HttpGet(admin.port(), "/profilez?seconds=0.2");
  stop.store(true, std::memory_order_relaxed);
  busy.join();

  if (!util::CpuProfiler::Supported()) {
    EXPECT_EQ(StatusLine(response), "HTTP/1.1 503 Service Unavailable");
  } else {
    EXPECT_EQ(StatusLine(response), "HTTP/1.1 200 OK");
    EXPECT_NE(response.find("X-Profile-Samples: "), std::string::npos);
    EXPECT_FALSE(Body(response).empty());
  }

  admin.Stop();
  service.Shutdown();
}

TEST(ProfilerTest, ConcurrentProfileRequestsSerialize) {
  if (!util::CpuProfiler::Supported()) {
    GTEST_SKIP() << "SIGPROF profiling unsupported on this platform";
  }
  // Two simultaneous ProfileFor calls must queue on the internal mutex —
  // never double-arm ITIMER_PROF, never crash — and both complete.
  std::atomic<bool> stop{false};
  std::thread busy([&] { AdminTestBusyLoop(stop); });
  std::atomic<int> done{0};
  std::vector<std::thread> profilers;
  for (int i = 0; i < 2; ++i) {
    profilers.emplace_back([&] {
      util::CpuProfiler::ProfileFor(0.1);
      done.fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (std::thread& t : profilers) t.join();
  stop.store(true, std::memory_order_relaxed);
  busy.join();
  EXPECT_EQ(done.load(), 2);
}

}  // namespace
}  // namespace net
}  // namespace actjoin
