// Tests for runtime index updates (paper Sec. 3.1.2 outlook): adding and
// removing polygons from a live PolygonIndex. The contract under test:
// after any update sequence, the exact join equals the brute-force oracle
// over the active polygon set, the covering stays disjoint, and — in
// approximate mode — the precision bound still holds.

//
// Seeding convention (full rationale in util_test.cc): random data comes
// only from util::Rng with explicit literal seeds or from the workload
// factories, whose default seeds are fixed compile-time constants -- never
// time- or address-derived -- so every ctest run is bit-reproducible.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "act/pipeline.h"
#include "geo/grid.h"
#include "geometry/pip.h"
#include "util/random.h"
#include "workloads/datasets.h"
#include "workloads/polygon_gen.h"

namespace actjoin::act {
namespace {

using geo::Grid;

// Brute force restricted to a subset of active polygon ids.
std::vector<std::pair<uint64_t, uint32_t>> OracleActive(
    const JoinInput& input, const std::vector<geom::Polygon>& polys,
    const std::vector<bool>& active) {
  std::vector<std::pair<uint64_t, uint32_t>> out;
  for (uint64_t p = 0; p < input.size(); ++p) {
    for (uint32_t pid = 0; pid < polys.size(); ++pid) {
      if (active[pid] && geom::ContainsPoint(polys[pid], input.points[p])) {
        out.emplace_back(p, pid);
      }
    }
  }
  return out;
}

TEST(Updates, AddPolygonsMatchesFromScratch) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.08);
  const size_t half = ds.polygons.size() / 2;
  std::vector<geom::Polygon> first_half(ds.polygons.begin(),
                                        ds.polygons.begin() + half);
  std::vector<geom::Polygon> second_half(ds.polygons.begin() + half,
                                         ds.polygons.end());

  BuildOptions opts;
  opts.threads = 1;
  PolygonIndex index = PolygonIndex::Build(first_half, grid, opts);
  uint32_t first_new = index.AddPolygons(second_half);
  EXPECT_EQ(first_new, half);
  EXPECT_EQ(index.polygons().size(), ds.polygons.size());
  ASSERT_TRUE(index.covering().IsDisjoint());

  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 3000, grid, 31);
  auto got = index.JoinPairs(pts.AsJoinInput(), JoinMode::kExact);
  auto want = BruteForceJoinPairs(pts.AsJoinInput(), ds.polygons);
  ASSERT_EQ(got, want);
}

TEST(Updates, AddPolygonsIncrementalSingles) {
  // One polygon at a time, joining after each step.
  Grid grid;
  wl::PartitionSpec spec;
  spec.mbr = wl::NycMbr();
  spec.nx = spec.ny = 3;
  spec.edge_depth = 2;
  spec.seed = 5;
  std::vector<geom::Polygon> polys = wl::JitteredPartition(spec);

  BuildOptions opts;
  opts.threads = 1;
  std::vector<geom::Polygon> initial{polys[0]};
  PolygonIndex index = PolygonIndex::Build(initial, grid, opts);
  wl::PointSet pts = wl::SyntheticUniformPoints(spec.mbr, 1500, grid, 32);

  std::vector<geom::Polygon> active{polys[0]};
  for (size_t k = 1; k < polys.size(); ++k) {
    index.AddPolygons(std::span(&polys[k], 1));
    active.push_back(polys[k]);
    auto got = index.JoinPairs(pts.AsJoinInput(), JoinMode::kExact);
    auto want = BruteForceJoinPairs(pts.AsJoinInput(), active);
    ASSERT_EQ(got, want) << "after adding polygon " << k;
    ASSERT_TRUE(index.covering().IsDisjoint());
  }
}

TEST(Updates, AddKeepsPrecisionBound) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  const size_t half = ds.polygons.size() / 2;
  std::vector<geom::Polygon> first_half(ds.polygons.begin(),
                                        ds.polygons.begin() + half);
  std::vector<geom::Polygon> second_half(ds.polygons.begin() + half,
                                         ds.polygons.end());
  const double bound_m = 150.0;

  BuildOptions opts;
  opts.threads = 1;
  opts.precision_bound_m = bound_m;
  PolygonIndex index = PolygonIndex::Build(first_half, grid, opts);
  index.AddPolygons(second_half);

  // Boundary cells still satisfy the bound after the update.
  for (size_t i = 0; i < index.covering().size(); ++i) {
    if (HasCandidate(index.covering().refs(i))) {
      ASSERT_LE(grid.CellDiagonalMeters(index.covering().cell(i)), bound_m);
    }
  }
  // And approximate false positives stay within the bound.
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 2500, grid, 33);
  auto approx = index.JoinPairs(pts.AsJoinInput(), JoinMode::kApproximate);
  auto exact = BruteForceJoinPairs(pts.AsJoinInput(), ds.polygons);
  ASSERT_TRUE(std::includes(approx.begin(), approx.end(), exact.begin(),
                            exact.end()));
  std::vector<std::pair<uint64_t, uint32_t>> extras;
  std::set_difference(approx.begin(), approx.end(), exact.begin(),
                      exact.end(), std::back_inserter(extras));
  for (const auto& [pi, pid] : extras) {
    ASSERT_LE(geom::DistanceToPolygonMeters(ds.polygons[pid],
                                            pts.points()[pi]),
              bound_m * 1.01);
  }
}

TEST(Updates, RemovePolygons) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.08);
  BuildOptions opts;
  opts.threads = 1;
  PolygonIndex index = PolygonIndex::Build(ds.polygons, grid, opts);

  std::vector<bool> active(ds.polygons.size(), true);
  std::vector<uint32_t> to_remove;
  for (uint32_t pid = 0; pid < ds.polygons.size(); pid += 3) {
    to_remove.push_back(pid);
    active[pid] = false;
  }
  index.RemovePolygons(to_remove);
  ASSERT_TRUE(index.covering().IsDisjoint());

  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 3000, grid, 34);
  auto got = index.JoinPairs(pts.AsJoinInput(), JoinMode::kExact);
  auto want = OracleActive(pts.AsJoinInput(), ds.polygons, active);
  ASSERT_EQ(got, want);

  // Removed ids never reappear.
  for (const auto& [pi, pid] : got) {
    ASSERT_TRUE(active[pid]);
  }
}

TEST(Updates, RemoveAllThenAddBack) {
  Grid grid;
  wl::PartitionSpec spec;
  spec.mbr = wl::NycMbr();
  spec.nx = spec.ny = 2;
  spec.edge_depth = 1;
  spec.seed = 6;
  std::vector<geom::Polygon> polys = wl::JitteredPartition(spec);

  BuildOptions opts;
  opts.threads = 1;
  PolygonIndex index = PolygonIndex::Build(polys, grid, opts);
  std::vector<uint32_t> all{0, 1, 2, 3};
  index.RemovePolygons(all);
  EXPECT_EQ(index.covering().size(), 0u);

  wl::PointSet pts = wl::SyntheticUniformPoints(spec.mbr, 500, grid, 35);
  auto empty = index.JoinPairs(pts.AsJoinInput(), JoinMode::kExact);
  EXPECT_TRUE(empty.empty());

  // Re-adding as new ids resurrects the areas.
  uint32_t first = index.AddPolygons(polys);
  EXPECT_EQ(first, 4u);
  auto got = index.JoinPairs(pts.AsJoinInput(), JoinMode::kExact);
  EXPECT_EQ(got.size(),
            BruteForceJoinPairs(pts.AsJoinInput(), polys).size());
}

TEST(Updates, TrainAfterAddStillExact) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  const size_t half = ds.polygons.size() / 2;
  std::vector<geom::Polygon> first_half(ds.polygons.begin(),
                                        ds.polygons.begin() + half);
  std::vector<geom::Polygon> second_half(ds.polygons.begin() + half,
                                         ds.polygons.end());

  BuildOptions opts;
  opts.threads = 1;
  PolygonIndex index = PolygonIndex::Build(first_half, grid, opts);
  index.AddPolygons(second_half);
  wl::PointSet history = wl::TaxiPoints(ds.mbr, 15000, grid, 36);
  index.Train(history.AsJoinInput());

  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 2500, grid, 37);
  EXPECT_EQ(index.JoinPairs(pts.AsJoinInput(), JoinMode::kExact),
            BruteForceJoinPairs(pts.AsJoinInput(), ds.polygons));
}

TEST(Updates, AddOverlappingPolygonSharesCells) {
  // The new polygon overlaps existing ones: conflict resolution must merge
  // references rather than lose either polygon.
  Grid grid;
  std::vector<geom::Polygon> base;
  base.push_back(geom::Polygon(
      {{-74.05, 40.70}, {-73.95, 40.70}, {-73.95, 40.80}, {-74.05, 40.80}}));
  BuildOptions opts;
  opts.threads = 1;
  PolygonIndex index = PolygonIndex::Build(base, grid, opts);

  std::vector<geom::Polygon> overlap;
  overlap.push_back(geom::Polygon(
      {{-74.00, 40.75}, {-73.90, 40.75}, {-73.90, 40.85}, {-74.00, 40.85}}));
  index.AddPolygons(overlap);

  // A point in the intersection joins with both.
  geom::Point p{-73.97, 40.77};
  std::vector<uint64_t> ids{grid.CellAt({p.y, p.x}).id()};
  std::vector<geom::Point> pv{p};
  auto got = index.JoinPairs({ids, pv}, JoinMode::kExact);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].second, 0u);
  EXPECT_EQ(got[1].second, 1u);
}

}  // namespace
}  // namespace actjoin::act
