// Tests for cell unions (normalize / difference) and the region coverer.

//
// Seeding convention (full rationale in util_test.cc): random data comes
// only from util::Rng with explicit literal seeds or from the workload
// factories, whose default seeds are fixed compile-time constants -- never
// time- or address-derived -- so every ctest run is bit-reproducible.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cover/cell_union.h"
#include "cover/coverer.h"
#include "geo/grid.h"
#include "geometry/pip.h"
#include "util/random.h"
#include "workloads/polygon_gen.h"

namespace actjoin::cover {
namespace {

using actjoin::util::Rng;
using actjoin::wl::RandomStarPolygon;
using geo::CellId;
using geo::Grid;
using geo::LatLng;

bool AreDisjointSorted(const std::vector<CellId>& cells) {
  for (size_t i = 1; i < cells.size(); ++i) {
    if (cells[i].range_min() <= cells[i - 1].range_max()) return false;
  }
  return true;
}

TEST(Normalize, RemovesDuplicatesAndContained) {
  Grid grid;
  CellId big = grid.CellAt({40.7, -74.0}, 8);
  CellId small = grid.CellAt({40.7, -74.0}, 15);
  CellId other = grid.CellAt({10.0, 30.0}, 12);
  std::vector<CellId> cells{small, big, other, big, small};
  Normalize(&cells);
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_TRUE(std::is_sorted(cells.begin(), cells.end()));
  EXPECT_TRUE(AreDisjointSorted(cells));
  EXPECT_NE(std::find(cells.begin(), cells.end(), big), cells.end());
}

TEST(Normalize, MergesCompleteSiblingGroups) {
  Grid grid;
  CellId parent = grid.CellAt({40.7, -74.0}, 9);
  std::vector<CellId> cells;
  for (int k = 0; k < 4; ++k) cells.push_back(parent.child(k));
  Normalize(&cells, /*merge_siblings=*/true);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0], parent);
}

TEST(Normalize, MergesRecursively) {
  Grid grid;
  CellId parent = grid.CellAt({40.7, -74.0}, 9);
  std::vector<CellId> cells;
  // Children 1..3 plus all four children of child 0: merges to parent.
  for (int k = 1; k < 4; ++k) cells.push_back(parent.child(k));
  for (int k = 0; k < 4; ++k) cells.push_back(parent.child(0).child(k));
  Normalize(&cells, /*merge_siblings=*/true);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0], parent);
}

TEST(Normalize, NoMergeWithoutFlag) {
  Grid grid;
  CellId parent = grid.CellAt({40.7, -74.0}, 9);
  std::vector<CellId> cells;
  for (int k = 0; k < 4; ++k) cells.push_back(parent.child(k));
  Normalize(&cells, /*merge_siblings=*/false);
  EXPECT_EQ(cells.size(), 4u);
}

TEST(NormalizedContains, FindsAncestors) {
  Grid grid;
  CellId a = grid.CellAt({40.7, -74.0}, 10);
  CellId b = grid.CellAt({-20.0, 100.0}, 14);
  std::vector<CellId> cells{a, b};
  Normalize(&cells);
  EXPECT_TRUE(NormalizedContains(cells, grid.CellAt({40.7, -74.0}, 30)));
  EXPECT_TRUE(NormalizedContains(cells, a));
  EXPECT_TRUE(NormalizedContains(cells, grid.CellAt({-20.0, 100.0}, 20)));
  EXPECT_FALSE(NormalizedContains(cells, grid.CellAt({0.0, 0.0}, 25)));
}

TEST(CellDifference, CountIsThreePerLevel) {
  Grid grid;
  for (int delta = 1; delta <= 6; ++delta) {
    CellId c1 = grid.CellAt({40.7, -74.0}, 10);
    CellId c2 = grid.CellAt({40.7, -74.0}, 10 + delta);
    std::vector<CellId> d;
    CellDifference(c1, c2, &d);
    EXPECT_EQ(d.size(), static_cast<size_t>(3 * delta));
  }
}

TEST(CellDifference, UnionReassemblesAncestor) {
  Grid grid;
  Rng rng(17);
  for (int iter = 0; iter < 200; ++iter) {
    LatLng p{rng.Uniform(-80, 80), rng.Uniform(-179, 179)};
    int l1 = static_cast<int>(rng.UniformInt(25));
    int l2 = l1 + 1 + static_cast<int>(rng.UniformInt(5));
    CellId c1 = grid.CellAt(p, l1);
    CellId c2 = grid.CellAt(p, l2);
    std::vector<CellId> parts;
    CellDifference(c1, c2, &parts);
    parts.push_back(c2);
    // Disjoint and union == c1: sorted ranges must tile c1's range exactly.
    std::sort(parts.begin(), parts.end());
    ASSERT_TRUE(AreDisjointSorted(parts));
    ASSERT_EQ(parts.front().range_min(), c1.range_min());
    ASSERT_EQ(parts.back().range_max(), c1.range_max());
    for (size_t k = 1; k < parts.size(); ++k) {
      // Leaf ids are odd; consecutive ranges are 2 apart in id space.
      ASSERT_EQ(parts[k].range_min().id(),
                parts[k - 1].range_max().id() + 2);
    }
  }
}

TEST(CellDifferenceMulti, MultipleHoles) {
  Grid grid;
  CellId c = grid.CellAt({40.7, -74.0}, 8);
  // Two grandchildren in different children.
  CellId h1 = c.child(0).child(1);
  CellId h2 = c.child(3).child(2);
  std::vector<CellId> holes{h1, h2};
  std::sort(holes.begin(), holes.end());
  std::vector<CellId> parts;
  CellDifferenceMulti(c, holes, &parts);
  // Tiles c minus holes: parts + holes must tile c's range.
  for (const CellId& h : holes) parts.push_back(h);
  std::sort(parts.begin(), parts.end());
  ASSERT_TRUE(AreDisjointSorted(parts));
  ASSERT_EQ(parts.front().range_min(), c.range_min());
  ASSERT_EQ(parts.back().range_max(), c.range_max());
  for (size_t k = 1; k < parts.size(); ++k) {
    ASSERT_EQ(parts[k].range_min().id(), parts[k - 1].range_max().id() + 2);
  }
}

TEST(CellDifferenceMulti, NoHolesYieldsSelf) {
  Grid grid;
  CellId c = grid.CellAt({40.7, -74.0}, 12);
  std::vector<CellId> parts;
  CellDifferenceMulti(c, {}, &parts);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], c);
}

// ---------------------------------------------------------------------------
// Coverer properties
// ---------------------------------------------------------------------------

class CovererPropertyTest : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Seeds, CovererPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST_P(CovererPropertyTest, CoveringContainsPolygonPoints) {
  Grid grid;
  geom::Polygon poly = RandomStarPolygon({-74.0, 40.7}, 0.08, 16, GetParam());
  Coverer coverer(poly, grid);
  auto covering = coverer.Covering({128, 30, 0});
  ASSERT_FALSE(covering.empty());
  ASSERT_LE(covering.size(), 128u);
  ASSERT_TRUE(AreDisjointSorted(covering));

  // Every point of the polygon must fall in some covering cell.
  Rng rng(GetParam() * 100);
  const geom::Rect& mbr = poly.mbr();
  for (int s = 0; s < 1000; ++s) {
    geom::Point q{rng.Uniform(mbr.lo.x, mbr.hi.x),
                  rng.Uniform(mbr.lo.y, mbr.hi.y)};
    if (!geom::ContainsPoint(poly, q)) continue;
    CellId leaf = grid.CellAt({q.y, q.x});
    ASSERT_TRUE(NormalizedContains(covering, leaf))
        << "point (" << q.x << "," << q.y << ") escaped the covering";
  }
}

TEST_P(CovererPropertyTest, InteriorCoveringInsidePolygon) {
  Grid grid;
  geom::Polygon poly = RandomStarPolygon({-74.0, 40.7}, 0.08, 16, GetParam());
  Coverer coverer(poly, grid);
  auto interior = coverer.InteriorCovering({256, 20, 0});
  ASSERT_TRUE(AreDisjointSorted(interior));
  ASSERT_LE(interior.size(), 256u);

  Rng rng(GetParam() * 200);
  for (const CellId& cell : interior) {
    geo::LatLngRect r = grid.CellRect(cell);
    for (int s = 0; s < 20; ++s) {
      geom::Point q{rng.Uniform(r.lng_lo, r.lng_hi),
                    rng.Uniform(r.lat_lo, r.lat_hi)};
      ASSERT_TRUE(geom::ContainsPoint(poly, q))
          << "interior cell " << cell.ToString() << " leaks outside";
    }
  }
}

TEST_P(CovererPropertyTest, InteriorIsSubsetOfCoveringArea) {
  Grid grid;
  geom::Polygon poly = RandomStarPolygon({-74.0, 40.7}, 0.08, 16, GetParam());
  Coverer coverer(poly, grid);
  auto covering = coverer.Covering({128, 30, 0});
  auto interior = coverer.InteriorCovering({256, 20, 0});
  for (const CellId& cell : interior) {
    // Sample leaves of the interior cell: all must be in the covering.
    ASSERT_TRUE(NormalizedContains(covering, cell.range_min()));
    ASSERT_TRUE(NormalizedContains(covering, cell.range_max()));
  }
}

TEST(Coverer, RespectsMaxLevel) {
  Grid grid;
  geom::Polygon poly = RandomStarPolygon({-74.0, 40.7}, 0.05, 10, 42);
  Coverer coverer(poly, grid);
  for (int max_level : {8, 12, 16}) {
    auto covering = coverer.Covering({256, max_level, 0});
    for (const CellId& c : covering) {
      ASSERT_LE(c.level(), max_level);
    }
  }
}

TEST(Coverer, RespectsMinLevel) {
  Grid grid;
  geom::Polygon poly = RandomStarPolygon({-74.0, 40.7}, 0.05, 10, 43);
  Coverer coverer(poly, grid);
  auto covering = coverer.Covering({512, 30, 10});
  for (const CellId& c : covering) {
    ASSERT_GE(c.level(), 10);
  }
}

TEST(Coverer, MoreCellsMeansTighterApproximation) {
  Grid grid;
  geom::Polygon poly = RandomStarPolygon({-74.0, 40.7}, 0.08, 16, 44);
  Coverer coverer(poly, grid);
  double poly_area_deg = poly.Area();
  double prev_area = 1e100;
  for (int max_cells : {8, 32, 128, 512}) {
    auto covering = coverer.Covering({max_cells, 30, 0});
    double area = 0;
    for (const CellId& c : covering) {
      geo::LatLngRect r = grid.CellRect(c);
      area += r.WidthDeg() * r.HeightDeg();
    }
    EXPECT_LE(area, prev_area * 1.001);
    EXPECT_GE(area, poly_area_deg * 0.999);
    prev_area = area;
  }
}

TEST(Coverer, ClassifyMatchesGeometry) {
  Grid grid;
  geom::Polygon poly = RandomStarPolygon({-74.0, 40.7}, 0.08, 12, 45);
  Coverer coverer(poly, grid);
  Rng rng(46);
  for (int iter = 0; iter < 300; ++iter) {
    LatLng p{rng.Uniform(40.5, 40.9), rng.Uniform(-74.2, -73.8)};
    CellId cell = grid.CellAt(p, 8 + static_cast<int>(rng.UniformInt(12)));
    geo::LatLngRect r = grid.CellRect(cell);
    geom::Rect rect = geom::Rect::Of(r.lng_lo, r.lat_lo, r.lng_hi, r.lat_hi);
    ASSERT_EQ(coverer.Classify(cell), geom::Classify(poly, rect));
  }
}

TEST(Coverer, TinyBudgetStillCovers) {
  Grid grid;
  geom::Polygon poly = RandomStarPolygon({-74.0, 40.7}, 0.08, 16, 47);
  Coverer coverer(poly, grid);
  auto covering = coverer.Covering({4, 30, 0});
  ASSERT_FALSE(covering.empty());
  ASSERT_LE(covering.size(), 4u);
  Rng rng(48);
  const geom::Rect& mbr = poly.mbr();
  for (int s = 0; s < 300; ++s) {
    geom::Point q{rng.Uniform(mbr.lo.x, mbr.hi.x),
                  rng.Uniform(mbr.lo.y, mbr.hi.y)};
    if (!geom::ContainsPoint(poly, q)) continue;
    ASSERT_TRUE(NormalizedContains(covering, grid.CellAt({q.y, q.x})));
  }
}

TEST(Coverer, MultiFacePolygonCovered) {
  // A polygon straddling the face boundary at lng = -60 (north).
  Grid grid;
  geom::Polygon poly({{-61, 10}, {-59, 10}, {-59, 12}, {-61, 12}});
  Coverer coverer(poly, grid);
  auto covering = coverer.Covering({64, 30, 0});
  ASSERT_FALSE(covering.empty());
  bool face3 = false, face4 = false;
  for (const CellId& c : covering) {
    face3 |= c.face() == 3;
    face4 |= c.face() == 4;
  }
  EXPECT_TRUE(face3);
  EXPECT_TRUE(face4);
  Rng rng(49);
  for (int s = 0; s < 500; ++s) {
    geom::Point q{rng.Uniform(-61, -59), rng.Uniform(10, 12)};
    ASSERT_TRUE(NormalizedContains(covering, grid.CellAt({q.y, q.x})));
  }
}

}  // namespace
}  // namespace actjoin::cover
