// Tests for the serving layer (src/service/): sharded joins must be
// byte-identical to the single-index join, snapshot swaps must never be
// observable as torn or missing state by concurrent readers, and the
// service's queue/lifecycle edges (full, never-started, shutdown) must be
// deterministic. The concurrency tests here are the workload the TSan CI
// preset exists for.
//
// Threading discipline: gtest assertions run only on the main thread;
// worker threads record observations into plain structs that are joined
// and then asserted.
//
// Seeding convention (full rationale in util_test.cc): random data comes
// only from the workload factories with explicit literal seeds -- never
// time- or address-derived -- so every ctest run is bit-reproducible.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "act/join.h"
#include "act/pipeline.h"
#include "geo/grid.h"
#include "service/hot_cell_cache.h"
#include "service/index_registry.h"
#include "service/join_service.h"
#include "service/sharded_index.h"
#include "util/latency_histogram.h"
#include "util/mpmc_queue.h"
#include "util/work_stealing_pool.h"
#include "workloads/datasets.h"

namespace actjoin::service {
namespace {

using act::JoinMode;
using geo::Grid;

std::shared_ptr<const ShardedIndex> BuildShared(
    const std::vector<geom::Polygon>& polygons, const Grid& grid,
    ShardingOptions opts) {
  return std::make_shared<const ShardedIndex>(
      ShardedIndex::Build(polygons, grid, opts));
}

// --- ShardedIndex ----------------------------------------------------------

TEST(ServiceSharding, ExactJoinByteIdenticalToUnsharded) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.08);
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 4000, grid, 41);

  act::BuildOptions bopts;
  bopts.threads = 1;
  act::PolygonIndex single = act::PolygonIndex::Build(ds.polygons, grid, bopts);
  auto want_pairs = single.JoinPairs(pts.AsJoinInput(), JoinMode::kExact);
  act::JoinStats want =
      single.Join(pts.AsJoinInput(), {JoinMode::kExact, /*threads=*/1});

  for (int shards : {1, 2, 5, 8}) {
    ShardedIndex sharded = ShardedIndex::Build(
        ds.polygons, grid, {.num_shards = shards, .build = bopts});
    EXPECT_EQ(sharded.num_shards(), shards);

    auto got_pairs = sharded.JoinPairs(pts.AsJoinInput(), JoinMode::kExact);
    EXPECT_EQ(got_pairs, want_pairs) << shards << " shards";

    for (int threads : {1, 4}) {
      act::JoinStats got =
          sharded.Join(pts.AsJoinInput(), {JoinMode::kExact, threads});
      EXPECT_EQ(got.counts, want.counts) << shards << " shards, " << threads
                                         << " threads";
      EXPECT_EQ(got.result_pairs, want.result_pairs);
      EXPECT_EQ(got.matched_points, want.matched_points);
      EXPECT_EQ(got.num_points, want.num_points);
    }
  }
}

TEST(ServiceSharding, ApproximateStaysWithinPrecisionBound) {
  // Sharded approximate joins keep the paper's guarantee (every emitted
  // pair within bound_m of the polygon) and never miss a true hit. They
  // may emit fewer false positives than the unsharded index, so the
  // comparison is containment, not equality.
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.06);
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 2500, grid, 42);
  const double bound_m = 100.0;

  act::BuildOptions bopts;
  bopts.threads = 1;
  bopts.precision_bound_m = bound_m;
  act::PolygonIndex single = act::PolygonIndex::Build(ds.polygons, grid, bopts);
  auto unsharded =
      single.JoinPairs(pts.AsJoinInput(), JoinMode::kApproximate);
  auto exact = act::BruteForceJoinPairs(pts.AsJoinInput(), ds.polygons);

  ShardedIndex sharded = ShardedIndex::Build(ds.polygons, grid,
                                             {.num_shards = 4, .build = bopts});
  auto approx = sharded.JoinPairs(pts.AsJoinInput(), JoinMode::kApproximate);

  ASSERT_TRUE(std::includes(approx.begin(), approx.end(), exact.begin(),
                            exact.end()));
  ASSERT_TRUE(std::includes(unsharded.begin(), unsharded.end(),
                            approx.begin(), approx.end()));
  for (const auto& [pi, pid] : approx) {
    ASSERT_LE(geom::DistanceToPolygonMeters(ds.polygons[pid],
                                            pts.points()[pi]),
              bound_m * 1.01);
  }
}

TEST(ServiceSharding, EveryPolygonAssignedAndRouterTotal) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.08);
  act::BuildOptions bopts;
  bopts.threads = 1;
  ShardedIndex sharded = ShardedIndex::Build(ds.polygons, grid,
                                             {.num_shards = 6, .build = bopts});

  std::vector<bool> assigned(ds.polygons.size(), false);
  for (int s = 0; s < sharded.num_shards(); ++s) {
    for (uint32_t pid : sharded.shard_polygon_ids(s)) {
      ASSERT_LT(pid, ds.polygons.size());
      assigned[pid] = true;
    }
  }
  for (size_t pid = 0; pid < assigned.size(); ++pid) {
    EXPECT_TRUE(assigned[pid]) << "polygon " << pid << " in no shard";
  }

  // The router is total: every leaf cell id maps to a valid shard.
  wl::PointSet pts = wl::SyntheticUniformPoints(ds.mbr, 2000, grid, 43);
  for (uint64_t id : pts.cell_ids()) {
    int s = sharded.ShardOf(id);
    ASSERT_GE(s, 0);
    ASSERT_LT(s, sharded.num_shards());
  }
}

// All deterministic JoinStats fields (everything but wall-clock seconds).
void ExpectStatsEqual(const act::JoinStats& got, const act::JoinStats& want) {
  EXPECT_EQ(got.num_points, want.num_points);
  EXPECT_EQ(got.matched_points, want.matched_points);
  EXPECT_EQ(got.result_pairs, want.result_pairs);
  EXPECT_EQ(got.true_hit_refs, want.true_hit_refs);
  EXPECT_EQ(got.candidate_refs, want.candidate_refs);
  EXPECT_EQ(got.pip_tests, want.pip_tests);
  EXPECT_EQ(got.pip_hits, want.pip_hits);
  EXPECT_EQ(got.sth_points, want.sth_points);
  EXPECT_EQ(got.counts, want.counts);
}

QueryBatch MakeBatch(const wl::PointSet& pts, JoinMode mode) {
  return {pts.cell_ids(), pts.points(), mode};
}

// Builds a batch of `total` points where >= `frac` of them route to the
// index's most-populated shard — the hot-shard shape the work-stealing
// executor exists for. Points are recycled from `pts` by routing verdict.
QueryBatch MakeSkewedBatch(const ShardedIndex& index, const wl::PointSet& pts,
                           size_t total, double frac, JoinMode mode) {
  std::vector<size_t> per_shard(index.num_shards(), 0);
  for (uint64_t id : pts.cell_ids()) ++per_shard[index.ShardOf(id)];
  const int hot = static_cast<int>(
      std::max_element(per_shard.begin(), per_shard.end()) -
      per_shard.begin());

  std::vector<size_t> hot_points, cold_points;
  for (size_t i = 0; i < pts.size(); ++i) {
    (index.ShardOf(pts.cell_ids()[i]) == hot ? hot_points : cold_points)
        .push_back(i);
  }
  // Tiny datasets can route everything to one shard; a hot-only batch is
  // still a valid (maximal) skew.
  if (cold_points.empty()) cold_points = hot_points;

  QueryBatch batch;
  batch.mode = mode;
  batch.cell_ids.reserve(total);
  batch.points.reserve(total);
  const size_t hot_count = static_cast<size_t>(total * frac);
  for (size_t k = 0; k < total; ++k) {
    const std::vector<size_t>& from =
        k < hot_count ? hot_points : cold_points;
    size_t i = from[k % from.size()];
    batch.cell_ids.push_back(pts.cell_ids()[i]);
    batch.points.push_back(pts.points()[i]);
  }
  return batch;
}

// --- Work-stealing executor ------------------------------------------------

TEST(ServiceExecutor, StealingAndStaticSplitByteIdentical) {
  // The determinism contract of the executor swap: the work-stealing Join,
  // the retired static-split executor, and the unsharded index all agree
  // bit for bit, at every thread count, in both modes.
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.08);
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 5000, grid, 71);

  act::BuildOptions bopts;
  bopts.threads = 1;
  act::PolygonIndex single = act::PolygonIndex::Build(ds.polygons, grid, bopts);
  ShardedIndex sharded = ShardedIndex::Build(
      ds.polygons, grid, {.num_shards = 8, .build = bopts});

  for (JoinMode mode : {JoinMode::kExact, JoinMode::kApproximate}) {
    act::JoinStats want_single =
        single.Join(pts.AsJoinInput(), {mode, /*threads=*/1});
    act::JoinStats serial =
        sharded.Join(pts.AsJoinInput(), {mode, /*threads=*/1});
    if (mode == JoinMode::kExact) {
      // Exact sharded results equal the unsharded index; approximate may
      // legitimately emit fewer false positives (covered elsewhere).
      ExpectStatsEqual(serial, want_single);
    }
    for (int threads : {2, 4, 8}) {
      act::JoinStats stealing =
          sharded.Join(pts.AsJoinInput(), {mode, threads});
      act::JoinStats static_split =
          sharded.JoinStaticSplit(pts.AsJoinInput(), {mode, threads});
      ExpectStatsEqual(stealing, serial);
      ExpectStatsEqual(static_split, serial);
    }
  }
}

TEST(ServiceExecutor, JoinPairsParallelByteIdenticalToSerial) {
  // JoinPairs used to be hard-serial; it now honors a thread budget and an
  // external pool. Pin the contract: identical pairs at every width.
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.08);
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 5000, grid, 72);
  act::BuildOptions bopts;
  bopts.threads = 1;
  ShardedIndex sharded = ShardedIndex::Build(
      ds.polygons, grid, {.num_shards = 5, .build = bopts});

  util::WorkStealingPool pool(3);
  for (JoinMode mode : {JoinMode::kExact, JoinMode::kApproximate}) {
    auto serial = sharded.JoinPairs(pts.AsJoinInput(), mode);  // threads = 1
    for (int threads : {2, 8}) {
      EXPECT_EQ(sharded.JoinPairs(pts.AsJoinInput(), mode, threads), serial)
          << threads << " threads";
    }
    EXPECT_EQ(sharded.JoinPairs(pts.AsJoinInput(), mode, /*threads=*/1,
                                &pool),
              serial)
        << "shared pool";
  }
}

TEST(ServiceExecutor, SkewedBatchResultsExactAtFullWidth) {
  // >= 90% of the batch routed to one shard: the stealing executor runs
  // the hot shard with the whole budget. Results must still match the
  // unsharded index exactly.
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.08);
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 6000, grid, 73);
  act::BuildOptions bopts;
  bopts.threads = 1;
  act::PolygonIndex single = act::PolygonIndex::Build(ds.polygons, grid, bopts);
  ShardedIndex sharded = ShardedIndex::Build(
      ds.polygons, grid, {.num_shards = 8, .build = bopts});

  QueryBatch batch =
      MakeSkewedBatch(sharded, pts, 6000, 0.9, JoinMode::kExact);
  size_t hot_max = 0;
  std::vector<size_t> per_shard(sharded.num_shards(), 0);
  for (uint64_t id : batch.cell_ids) {
    hot_max = std::max(hot_max, ++per_shard[sharded.ShardOf(id)]);
  }
  ASSERT_GE(hot_max, batch.cell_ids.size() * 9 / 10);

  act::JoinInput input{batch.cell_ids, batch.points};
  act::JoinStats want = single.Join(input, {JoinMode::kExact, 1});
  for (int threads : {1, 8}) {
    ExpectStatsEqual(sharded.Join(input, {JoinMode::kExact, threads}), want);
    ExpectStatsEqual(sharded.JoinStaticSplit(input, {JoinMode::kExact,
                                                     threads}),
                     want);
  }
}

TEST(ServiceExecutor, SkewedBatchStressAcrossHotSwapsUnderSharedPool) {
  // The TSan workload for the new pool: a service whose workers share one
  // WorkStealingPool serves heavily skewed batches from concurrent clients
  // while the writer hot-swaps the index. Exercises concurrent Run()
  // submitters, the steal path (hot shard >= 90% of each batch), and
  // epoch pinning, all at once. Assertions run on the main thread only.
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  const size_t half_count = ds.polygons.size() / 2;
  std::vector<geom::Polygon> half_set(ds.polygons.begin(),
                                      ds.polygons.begin() + half_count);
  act::BuildOptions bopts;
  bopts.threads = 1;
  auto half = BuildShared(half_set, grid, {.num_shards = 8, .build = bopts});
  auto full = BuildShared(ds.polygons, grid,
                          {.num_shards = 8, .build = bopts});

  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 3000, grid, 74);
  QueryBatch batch = MakeSkewedBatch(*full, pts, 3000, 0.92, JoinMode::kExact);
  act::JoinInput input{batch.cell_ids, batch.points};
  uint64_t want_half = half->Join(input, {JoinMode::kExact, 1}).result_pairs;
  uint64_t want_full = full->Join(input, {JoinMode::kExact, 1}).result_pairs;

  constexpr int kSwaps = 8;
  std::vector<uint64_t> want_by_epoch(kSwaps + 2);
  for (int e = 1; e <= kSwaps + 1; ++e) {
    want_by_epoch[e] = (e % 2 == 1) ? want_half : want_full;
  }

  ServiceOptions sopts;
  sopts.worker_threads = 3;
  sopts.queue_capacity = 16;
  sopts.shared_pool_workers = 3;
  JoinService service(half, sopts);

  constexpr int kClients = 2;
  constexpr int kRequestsPerClient = 12;
  struct ClientReport {
    uint64_t mismatches = 0;
    uint64_t completed = 0;
  };
  std::vector<ClientReport> reports(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        QueryBatch copy = batch;
        JoinResult result = service.Submit(std::move(copy)).get();
        if (result.epoch == 0 ||
            result.epoch > static_cast<uint64_t>(kSwaps) + 1 ||
            result.stats.result_pairs != want_by_epoch[result.epoch]) {
          ++reports[c].mismatches;
        }
        ++reports[c].completed;
      }
    });
  }

  for (int i = 0; i < kSwaps; ++i) {
    service.SwapIndex(i % 2 == 0 ? full : half);
    std::this_thread::yield();
  }
  for (auto& t : clients) t.join();
  service.Shutdown();

  for (const ClientReport& report : reports) {
    EXPECT_EQ(report.mismatches, 0u);
    EXPECT_EQ(report.completed,
              static_cast<uint64_t>(kRequestsPerClient));
  }
  EXPECT_EQ(service.Stats().completed_requests,
            static_cast<uint64_t>(kClients) * kRequestsPerClient);
}

TEST(ServiceExecutor, SharedPoolCachedJoinHonorsBudgetAndStaysIdentical) {
  // The cache-assisted path also routes through the shared pool; results
  // must stay byte-identical to the plain (uncached, serial) service.
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.06);
  act::BuildOptions bopts;
  bopts.threads = 1;
  bopts.precision_bound_m = 80.0;  // boundary cells => candidate refs exist
  auto index = BuildShared(ds.polygons, grid,
                           {.num_shards = 3, .build = bopts});
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 3000, grid, 75);

  ServiceOptions pooled_opts;
  pooled_opts.worker_threads = 1;
  pooled_opts.shared_pool_workers = 3;
  pooled_opts.cell_cache_capacity = 4096;
  JoinService pooled(index, pooled_opts);
  ServiceOptions plain_opts;
  plain_opts.worker_threads = 1;
  JoinService plain(index, plain_opts);

  for (JoinMode mode : {JoinMode::kExact, JoinMode::kApproximate}) {
    JoinResult want = plain.Submit(MakeBatch(pts, mode)).get();
    for (int round = 0; round < 2; ++round) {  // cold cache, then warm
      JoinResult got = pooled.Submit(MakeBatch(pts, mode)).get();
      ExpectStatsEqual(got.stats, want.stats);
    }
  }
  EXPECT_GT(pooled.Stats().cache_hits, 0u);
}

// --- PolygonIndex snapshot hooks ------------------------------------------

TEST(ServiceRegistry, CloneIsIndependentOfOriginal) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.06);
  const size_t half = ds.polygons.size() / 2;
  std::vector<geom::Polygon> first_half(ds.polygons.begin(),
                                        ds.polygons.begin() + half);
  std::vector<geom::Polygon> second_half(ds.polygons.begin() + half,
                                         ds.polygons.end());

  act::BuildOptions bopts;
  bopts.threads = 1;
  act::PolygonIndex original =
      act::PolygonIndex::Build(first_half, grid, bopts);
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 2000, grid, 44);
  auto before = original.JoinPairs(pts.AsJoinInput(), JoinMode::kExact);

  // Mutating the clone (the updater's side of a snapshot swap) must not
  // disturb the original that readers are still probing.
  act::PolygonIndex clone = original.Clone();
  clone.AddPolygons(second_half);

  EXPECT_EQ(original.JoinPairs(pts.AsJoinInput(), JoinMode::kExact), before);
  EXPECT_EQ(clone.JoinPairs(pts.AsJoinInput(), JoinMode::kExact),
            act::BruteForceJoinPairs(pts.AsJoinInput(), ds.polygons));
}

TEST(ServiceRegistry, PublishBumpsEpochAndSwapsSnapshot) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  act::BuildOptions bopts;
  bopts.threads = 1;

  IndexRegistry registry;
  uint64_t epoch = 99;
  EXPECT_EQ(registry.Acquire(&epoch), nullptr);
  EXPECT_EQ(epoch, 0u);

  auto a = std::make_shared<const act::PolygonIndex>(
      act::PolygonIndex::Build(ds.polygons, grid, bopts));
  EXPECT_EQ(registry.Publish(a), 1u);
  EXPECT_EQ(registry.Acquire(&epoch), a);
  EXPECT_EQ(epoch, 1u);

  auto b = a->CloneShared();
  EXPECT_EQ(registry.Publish(b), 2u);
  EXPECT_EQ(registry.Acquire(&epoch), b);
  EXPECT_EQ(epoch, 2u);
  EXPECT_EQ(registry.epoch(), 2u);
}

TEST(ServiceRegistry, ReadersHammeredBySwaps) {
  // Reader threads continuously acquire snapshots and join against them
  // while the writer republishes; every acquired snapshot must be intact
  // (correct join result for whichever version was pinned) and epochs must
  // be monotone per reader. This is the core data-race workload for TSan.
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  const size_t half_count = ds.polygons.size() / 2;
  std::vector<geom::Polygon> half_set(ds.polygons.begin(),
                                      ds.polygons.begin() + half_count);

  act::BuildOptions bopts;
  bopts.threads = 1;
  auto half = std::make_shared<const act::PolygonIndex>(
      act::PolygonIndex::Build(half_set, grid, bopts));
  auto full = std::make_shared<const act::PolygonIndex>(
      act::PolygonIndex::Build(ds.polygons, grid, bopts));

  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 300, grid, 45);
  auto want_half = half->JoinPairs(pts.AsJoinInput(), JoinMode::kExact);
  auto want_full = full->JoinPairs(pts.AsJoinInput(), JoinMode::kExact);

  IndexRegistry registry;
  registry.Publish(half);

  struct ReaderReport {
    uint64_t iterations = 0;
    uint64_t wrong_results = 0;
    uint64_t null_snapshots = 0;
    uint64_t epoch_regressions = 0;
  };
  constexpr int kReaders = 4;
  std::atomic<bool> stop{false};
  std::vector<ReaderReport> reports(kReaders);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      ReaderReport& report = reports[r];
      uint64_t last_epoch = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        uint64_t epoch = 0;
        auto snap = registry.Acquire(&epoch);
        if (snap == nullptr) {
          ++report.null_snapshots;
          continue;
        }
        if (epoch < last_epoch) ++report.epoch_regressions;
        last_epoch = epoch;
        auto got = snap->JoinPairs(pts.AsJoinInput(), JoinMode::kExact);
        const auto& want =
            snap->polygons().size() == half_count ? want_half : want_full;
        if (got != want) ++report.wrong_results;
        ++report.iterations;
      }
    });
  }

  constexpr int kSwaps = 40;
  for (int i = 0; i < kSwaps; ++i) {
    registry.Publish(i % 2 == 0 ? full : half);
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();

  uint64_t total_iterations = 0;
  for (const ReaderReport& report : reports) {
    EXPECT_EQ(report.wrong_results, 0u);
    EXPECT_EQ(report.null_snapshots, 0u);
    EXPECT_EQ(report.epoch_regressions, 0u);
    total_iterations += report.iterations;
  }
  EXPECT_GT(total_iterations, 0u);
  EXPECT_EQ(registry.epoch(), static_cast<uint64_t>(kSwaps) + 1);
}

// --- util building blocks used by the service -----------------------------

TEST(ServiceQueue, FifoAndTryPushBounds) {
  util::MpmcQueue<int> q(3);
  EXPECT_EQ(q.capacity(), 3u);
  for (int v : {10, 11, 12}) {
    int item = v;
    EXPECT_TRUE(q.TryPush(item));
  }
  int overflow = 13;
  EXPECT_FALSE(q.TryPush(overflow));  // full
  EXPECT_EQ(overflow, 13);            // refused push leaves the item alone
  EXPECT_EQ(q.size(), 3u);

  EXPECT_EQ(q.Pop(), 10);  // FIFO
  EXPECT_EQ(q.Pop(), 11);

  q.Close();
  int after_close = 14;
  EXPECT_FALSE(q.TryPush(after_close));
  EXPECT_FALSE(q.Push(15));
  EXPECT_EQ(q.Pop(), 12);            // close still drains the backlog
  EXPECT_EQ(q.Pop(), std::nullopt);  // drained + closed
  EXPECT_TRUE(q.closed());
}

TEST(ServiceQueue, BlockingHandoffAcrossThreads) {
  // A tiny capacity forces the producer to block on backpressure; all
  // items must still arrive exactly once, in order.
  constexpr int kItems = 200;
  util::MpmcQueue<int> q(4);
  std::vector<int> received;
  received.reserve(kItems);
  std::thread consumer([&] {
    while (auto item = q.Pop()) received.push_back(*item);
  });
  for (int i = 0; i < kItems; ++i) {
    ASSERT_TRUE(q.Push(i));
  }
  q.Close();
  consumer.join();
  ASSERT_EQ(received.size(), static_cast<size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(received[i], i);
}

TEST(ServiceStatsSuite, LatencyHistogramQuantiles) {
  util::LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.P50Micros(), 0.0);

  for (int us = 1; us <= 1000; ++us) h.Record(us);
  EXPECT_EQ(h.count(), 1000u);
  // Log-bucketed: quantile edges over-report by at most one bucket
  // (2^(1/16) ~= 4.4%); the 1.1 factor leaves slack on top of that.
  EXPECT_GE(h.P50Micros(), 500.0);
  EXPECT_LE(h.P50Micros(), 500.0 * 1.1);
  EXPECT_GE(h.P99Micros(), 990.0);
  EXPECT_LE(h.P99Micros(), 990.0 * 1.1);
  EXPECT_NEAR(h.MeanMicros(), 500.5, 0.01);
  EXPECT_EQ(h.MaxMicros(), 1000.0);

  util::LatencyHistogram other;
  other.Record(5000.0);
  h.Merge(other);
  EXPECT_EQ(h.count(), 1001u);
  EXPECT_EQ(h.MaxMicros(), 5000.0);
  EXPECT_GE(h.QuantileMicros(1.0), 5000.0);
}

// --- JoinService lifecycle -------------------------------------------------

TEST(ServiceLifecycle, QueueFullThenStartDrains) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  act::BuildOptions bopts;
  bopts.threads = 1;
  auto index = BuildShared(ds.polygons, grid,
                           {.num_shards = 2, .build = bopts});
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 500, grid, 46);
  act::JoinStats want = index->Join(pts.AsJoinInput(), {JoinMode::kExact, 1});

  ServiceOptions sopts;
  sopts.worker_threads = 2;
  sopts.queue_capacity = 4;
  sopts.autostart = false;
  JoinService service(index, sopts);

  // With no workers running the bounded queue fills deterministically.
  std::vector<std::future<JoinResult>> futures;
  for (int i = 0; i < 4; ++i) {
    std::future<JoinResult> f;
    ASSERT_EQ(service.TrySubmit(MakeBatch(pts, JoinMode::kExact), &f),
              SubmitStatus::kAccepted);
    futures.push_back(std::move(f));
  }
  EXPECT_EQ(service.QueueDepth(), 4u);
  std::future<JoinResult> rejected;
  EXPECT_EQ(service.TrySubmit(MakeBatch(pts, JoinMode::kExact), &rejected),
            SubmitStatus::kQueueFull);
  EXPECT_EQ(service.Stats().rejected_requests, 1u);
  EXPECT_EQ(service.Stats().rejected_queue_full, 1u);

  service.Start();
  for (auto& f : futures) {
    JoinResult result = f.get();
    EXPECT_EQ(result.stats.counts, want.counts);
    EXPECT_EQ(result.stats.result_pairs, want.result_pairs);
    EXPECT_EQ(result.epoch, 1u);
  }

  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.completed_requests, 4u);
  EXPECT_EQ(stats.points_served, 4u * pts.size());
  EXPECT_EQ(stats.queue_depth, 0u);

  service.Shutdown();
  service.Shutdown();  // idempotent
  auto dead = service.Submit(MakeBatch(pts, JoinMode::kExact));
  EXPECT_THROW(dead.get(), std::runtime_error);
}

TEST(ServiceLifecycle, ShutdownDrainsAcceptedRequestsWithoutStart) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  act::BuildOptions bopts;
  bopts.threads = 1;
  auto index = BuildShared(ds.polygons, grid,
                           {.num_shards = 1, .build = bopts});
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 300, grid, 47);

  ServiceOptions sopts;
  sopts.worker_threads = 1;
  sopts.queue_capacity = 8;
  sopts.autostart = false;
  JoinService service(index, sopts);

  std::vector<std::future<JoinResult>> futures;
  for (int i = 0; i < 3; ++i) {
    futures.push_back(service.Submit(MakeBatch(pts, JoinMode::kApproximate)));
  }
  // Accepted work is a promise: shutdown must complete it, started or not.
  service.Shutdown();
  for (auto& f : futures) {
    EXPECT_EQ(f.get().stats.num_points, pts.size());
  }
}

TEST(ServiceLifecycle, ConcurrentClientsAcrossHotSwaps) {
  // Clients submit while the writer hot-swaps the index; every result must
  // be exactly right for the epoch that served it — the "safe index
  // replacement while queries are in flight" contract.
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  const size_t half_count = ds.polygons.size() / 2;
  std::vector<geom::Polygon> half_set(ds.polygons.begin(),
                                      ds.polygons.begin() + half_count);

  act::BuildOptions bopts;
  bopts.threads = 1;
  auto half = BuildShared(half_set, grid, {.num_shards = 2, .build = bopts});
  auto full = BuildShared(ds.polygons, grid,
                          {.num_shards = 4, .build = bopts});

  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 800, grid, 48);
  uint64_t want_half =
      half->Join(pts.AsJoinInput(), {JoinMode::kExact, 1}).result_pairs;
  uint64_t want_full =
      full->Join(pts.AsJoinInput(), {JoinMode::kExact, 1}).result_pairs;

  constexpr int kSwaps = 12;
  // Epoch e serves `full` for even e, `half` for odd e (epoch 1 = initial
  // half index, each swap alternates). Precomputed so client threads can
  // validate without touching gtest.
  std::vector<uint64_t> want_by_epoch(kSwaps + 2);
  for (int e = 1; e <= kSwaps + 1; ++e) {
    want_by_epoch[e] = (e % 2 == 1) ? want_half : want_full;
  }

  ServiceOptions sopts;
  sopts.worker_threads = 3;
  sopts.queue_capacity = 16;
  JoinService service(half, sopts);

  constexpr int kClients = 2;
  constexpr int kRequestsPerClient = 25;
  struct ClientReport {
    uint64_t mismatches = 0;
    uint64_t completed = 0;
  };
  std::vector<ClientReport> reports(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        JoinResult result =
            service.Submit(MakeBatch(pts, JoinMode::kExact)).get();
        if (result.epoch == 0 ||
            result.epoch > static_cast<uint64_t>(kSwaps) + 1 ||
            result.stats.result_pairs != want_by_epoch[result.epoch]) {
          ++reports[c].mismatches;
        }
        ++reports[c].completed;
      }
    });
  }

  for (int i = 0; i < kSwaps; ++i) {
    uint64_t epoch = service.SwapIndex(i % 2 == 0 ? full : half);
    EXPECT_EQ(epoch, static_cast<uint64_t>(i) + 2);
    std::this_thread::yield();
  }
  for (auto& t : clients) t.join();
  service.Shutdown();

  for (const ClientReport& report : reports) {
    EXPECT_EQ(report.mismatches, 0u);
    EXPECT_EQ(report.completed, static_cast<uint64_t>(kRequestsPerClient));
  }
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.completed_requests,
            static_cast<uint64_t>(kClients) * kRequestsPerClient);
  EXPECT_EQ(stats.epoch, static_cast<uint64_t>(kSwaps) + 1);
  EXPECT_GT(stats.service_p50_ms, 0.0);
  EXPECT_GE(stats.service_p99_ms, stats.service_p50_ms);
}

// --- Typed submit + async hook ---------------------------------------------

TEST(ServiceLifecycle, TrySubmitAsyncDeliversOnWorkerAndRejectsTyped) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  act::BuildOptions bopts;
  bopts.threads = 1;
  auto index = BuildShared(ds.polygons, grid,
                           {.num_shards = 2, .build = bopts});
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 400, grid, 61);
  act::JoinStats want = index->Join(pts.AsJoinInput(), {JoinMode::kExact, 1});

  ServiceOptions sopts;
  sopts.worker_threads = 1;
  sopts.queue_capacity = 2;
  sopts.autostart = false;
  JoinService service(index, sopts);

  std::promise<JoinResult> delivered;
  ASSERT_EQ(service.TrySubmitAsync(
                MakeBatch(pts, JoinMode::kExact),
                [&](JoinResult r) { delivered.set_value(std::move(r)); }),
            SubmitStatus::kAccepted);
  // Fill the rest of the queue, then observe the typed queue-full verdict
  // (the hook must be dropped, not invoked).
  ASSERT_EQ(service.TrySubmitAsync(MakeBatch(pts, JoinMode::kExact),
                                   [](JoinResult) {}),
            SubmitStatus::kAccepted);
  bool rejected_hook_ran = false;
  EXPECT_EQ(service.TrySubmitAsync(
                MakeBatch(pts, JoinMode::kExact),
                [&](JoinResult) { rejected_hook_ran = true; }),
            SubmitStatus::kQueueFull);
  EXPECT_EQ(service.Stats().rejected_queue_full, 1u);

  service.Start();
  JoinResult result = delivered.get_future().get();
  EXPECT_EQ(result.stats.counts, want.counts);
  EXPECT_EQ(result.epoch, 1u);
  EXPECT_FALSE(rejected_hook_ran);

  service.Shutdown();
  EXPECT_EQ(service.TrySubmitAsync(MakeBatch(pts, JoinMode::kExact),
                                   [](JoinResult) {}),
            SubmitStatus::kShutDown);
  EXPECT_EQ(service.Stats().rejected_shutdown, 1u);
}

// --- Hot-cell result cache -------------------------------------------------

TEST(ServiceCache, ResultsIdenticalToUncachedForBothModes) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.06);
  act::BuildOptions bopts;
  bopts.threads = 1;
  bopts.precision_bound_m = 80.0;  // boundary cells => candidate refs exist
  auto index = BuildShared(ds.polygons, grid,
                           {.num_shards = 3, .build = bopts});
  // Taxi skew: many points share hot cells, the workload the cache is for.
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 3000, grid, 62);

  ServiceOptions cached_opts;
  cached_opts.worker_threads = 1;
  cached_opts.cell_cache_capacity = 4096;
  JoinService cached(index, cached_opts);
  ServiceOptions plain_opts;
  plain_opts.worker_threads = 1;
  JoinService plain(index, plain_opts);

  for (JoinMode mode : {JoinMode::kExact, JoinMode::kApproximate}) {
    JoinResult want = plain.Submit(MakeBatch(pts, mode)).get();
    // Twice: the first run fills the cache, the second hits it; both must
    // be byte-identical to the uncached service.
    for (int round = 0; round < 2; ++round) {
      JoinResult got = cached.Submit(MakeBatch(pts, mode)).get();
      EXPECT_EQ(got.stats.counts, want.stats.counts);
      EXPECT_EQ(got.stats.result_pairs, want.stats.result_pairs);
      EXPECT_EQ(got.stats.matched_points, want.stats.matched_points);
      EXPECT_EQ(got.stats.true_hit_refs, want.stats.true_hit_refs);
      EXPECT_EQ(got.stats.candidate_refs, want.stats.candidate_refs);
      EXPECT_EQ(got.stats.pip_tests, want.stats.pip_tests);
      EXPECT_EQ(got.stats.pip_hits, want.stats.pip_hits);
      EXPECT_EQ(got.stats.sth_points, want.stats.sth_points);
    }
  }

  ServiceStats stats = cached.Stats();
  EXPECT_GT(stats.cache_hits, 0u);
  EXPECT_GT(stats.cache_misses, 0u);
  // Round two of each mode replays round one's cells: clustered points
  // mean far more lookups hit than probe.
  EXPECT_GT(stats.cache_hits, stats.cache_misses);
  // The uncached service never touches a cache.
  EXPECT_EQ(plain.Stats().cache_hits, 0u);
  EXPECT_EQ(plain.Stats().cache_misses, 0u);
}

TEST(ServiceCache, HotSwapInvalidatesByEpochTag) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  const size_t half_count = ds.polygons.size() / 2;
  std::vector<geom::Polygon> half_set(ds.polygons.begin(),
                                      ds.polygons.begin() + half_count);
  act::BuildOptions bopts;
  bopts.threads = 1;
  auto half = BuildShared(half_set, grid, {.num_shards = 2, .build = bopts});
  auto full = BuildShared(ds.polygons, grid,
                          {.num_shards = 2, .build = bopts});
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 800, grid, 63);
  act::JoinStats want_half =
      half->Join(pts.AsJoinInput(), {JoinMode::kExact, 1});
  act::JoinStats want_full =
      full->Join(pts.AsJoinInput(), {JoinMode::kExact, 1});

  ServiceOptions sopts;
  sopts.worker_threads = 1;
  sopts.cell_cache_capacity = 4096;
  JoinService service(half, sopts);

  // Warm the cache on epoch 1, swap, and verify epoch 2 results are the
  // new index's — a stale cache entry must never leak across the swap.
  EXPECT_EQ(service.Submit(MakeBatch(pts, JoinMode::kExact)).get().stats
                .counts,
            want_half.counts);
  service.SwapIndex(full);
  JoinResult after = service.Submit(MakeBatch(pts, JoinMode::kExact)).get();
  EXPECT_EQ(after.epoch, 2u);
  EXPECT_EQ(after.stats.counts, want_full.counts);
  // And back again, onto cells now cached under epoch 2.
  service.SwapIndex(half);
  JoinResult back = service.Submit(MakeBatch(pts, JoinMode::kExact)).get();
  EXPECT_EQ(back.epoch, 3u);
  EXPECT_EQ(back.stats.counts, want_half.counts);
}

TEST(ServiceCache, CapacityDistributesRemainderAcrossShards) {
  // Regression: capacity / shards used to floor per shard, silently
  // shrinking a 100-entry budget over 64 shards to 64 entries. The
  // remainder is now distributed, so capacity() >= the requested budget
  // for every awkward combination (shard counts round up to powers of
  // two; each shard keeps at least one entry).
  struct Combo {
    size_t capacity;
    int shards;       // pre-rounding
    size_t rounded;   // post-rounding shard count
  };
  for (const Combo& c : {Combo{100, 64, 64}, Combo{100, 8, 8},
                         Combo{1000, 64, 64}, Combo{7, 2, 2}, Combo{1, 1, 1},
                         Combo{3, 8, 8}, Combo{65, 64, 64}, Combo{64, 64, 64},
                         Combo{129, 33, 64}, Combo{0, 4, 4}}) {
    HotCellCache cache(c.capacity, c.shards);
    EXPECT_GE(cache.capacity(), std::max<size_t>(1, c.capacity))
        << c.capacity << " entries over " << c.shards << " shards";
    // The floor only lifts the budget when there are more shards than
    // entries; otherwise the distribution is exact.
    EXPECT_EQ(cache.capacity(),
              std::max(std::max<size_t>(1, c.capacity), c.rounded))
        << c.capacity << " entries over " << c.shards << " shards";
  }
}

TEST(ServiceCache, CapacityIsEnforcedPerShardUnderLoad) {
  // Fill far past the budget: size() must stay within capacity() and the
  // cache must keep serving correct entries (LRU within each shard).
  HotCellCache cache(/*capacity=*/100, /*num_shards=*/64);
  ASSERT_EQ(cache.capacity(), 100u);
  std::vector<CellRef> refs{{7, true}};
  for (uint64_t cell = 0; cell < 10'000; ++cell) {
    cache.Insert(/*dataset=*/0, cell, /*epoch=*/1, refs);
  }
  EXPECT_LE(cache.size(), cache.capacity());
  EXPECT_GT(cache.size(), 0u);

  // Whatever survived must read back intact.
  std::vector<CellRef> got;
  uint64_t readable = 0;
  for (uint64_t cell = 0; cell < 10'000; ++cell) {
    if (cache.Lookup(/*dataset=*/0, cell, 1, &got)) {
      ++readable;
      ASSERT_EQ(got.size(), 1u);
      ASSERT_EQ(got[0].local_pid, 7u);
      ASSERT_TRUE(got[0].interior);
    }
  }
  EXPECT_EQ(readable, cache.size());
}

TEST(ServiceCache, LruEvictsUnderTinyCapacity) {
  // A cache far smaller than the working set must still be correct — only
  // slower (every lookup can miss).
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.05);
  act::BuildOptions bopts;
  bopts.threads = 1;
  auto index = BuildShared(ds.polygons, grid,
                           {.num_shards = 1, .build = bopts});
  wl::PointSet pts = wl::SyntheticUniformPoints(ds.mbr, 2000, grid, 64);
  act::JoinStats want = index->Join(pts.AsJoinInput(), {JoinMode::kExact, 1});

  ServiceOptions sopts;
  sopts.worker_threads = 1;
  sopts.cell_cache_capacity = 8;  // uniform points thrash 8 entries
  sopts.cell_cache_shards = 2;
  JoinService service(index, sopts);
  for (int round = 0; round < 2; ++round) {
    JoinResult got = service.Submit(MakeBatch(pts, JoinMode::kExact)).get();
    EXPECT_EQ(got.stats.counts, want.counts);
  }
  ServiceStats stats = service.Stats();
  EXPECT_GT(stats.cache_misses, 0u);
}

// --- Live mutation (delta apply, journal, cache migration) -----------------

TEST(DeltaService, ApplyDeltaAddByteIdenticalToFreshBuild) {
  // The shard router is a static Hilbert-range split, so a delta-applied
  // index and a from-scratch build over the final polygon set must agree
  // shard by shard — byte-identical pairs in both modes, not merely
  // equivalent results.
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.08);
  const size_t half = ds.polygons.size() / 2;
  std::vector<geom::Polygon> base_set(ds.polygons.begin(),
                                      ds.polygons.begin() +
                                          static_cast<ptrdiff_t>(half));
  std::vector<geom::Polygon> add_set(ds.polygons.begin() +
                                         static_cast<ptrdiff_t>(half),
                                     ds.polygons.end());

  act::BuildOptions bopts;
  bopts.threads = 1;
  bopts.precision_bound_m = 80.0;
  auto base = BuildShared(base_set, grid, {.num_shards = 3, .build = bopts});
  auto fresh = BuildShared(ds.polygons, grid,
                           {.num_shards = 3, .build = bopts});

  ShardedIndex::Delta delta;
  delta.add = add_set;
  ShardedIndex::DeltaResult res = ShardedIndex::ApplyDelta(*base, delta);
  ASSERT_NE(res.index, nullptr);
  EXPECT_EQ(res.first_added_id, static_cast<uint32_t>(half));
  EXPECT_EQ(res.index->num_polygons(), ds.polygons.size());
  EXPECT_FALSE(res.touched_ranges.empty());
  // The invalidation set must be sorted and coalesced — the cache's
  // binary search depends on it.
  for (size_t i = 0; i < res.touched_ranges.size(); ++i) {
    EXPECT_LE(res.touched_ranges[i].first, res.touched_ranges[i].second);
    if (i > 0) {
      EXPECT_GT(res.touched_ranges[i].first,
                res.touched_ranges[i - 1].second);
    }
  }

  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 3000, grid, 71);
  for (JoinMode mode : {JoinMode::kExact, JoinMode::kApproximate}) {
    EXPECT_EQ(res.index->JoinPairs(pts.AsJoinInput(), mode),
              fresh->JoinPairs(pts.AsJoinInput(), mode));
  }
  ExpectStatsEqual(res.index->Join(pts.AsJoinInput(), {JoinMode::kExact, 1}),
                   fresh->Join(pts.AsJoinInput(), {JoinMode::kExact, 1}));
}

TEST(DeltaService, RemoveKeepsIdSlotsAndFiltersPairs) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.08);
  act::BuildOptions bopts;
  bopts.threads = 1;
  auto full = BuildShared(ds.polygons, grid,
                          {.num_shards = 4, .build = bopts});

  std::vector<uint32_t> removed;
  for (uint32_t gid = 1; gid < ds.polygons.size(); gid += 3) {
    removed.push_back(gid);
  }
  ShardedIndex::Delta delta;
  delta.remove = removed;
  ShardedIndex::DeltaResult res = ShardedIndex::ApplyDelta(*full, delta);
  ASSERT_NE(res.index, nullptr);
  // Ids are assign-only: a remove never shrinks the id space (a survivor
  // keeps its global id; removed slots just count zero forever).
  EXPECT_EQ(res.index->num_polygons(), ds.polygons.size());

  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 3000, grid, 72);
  auto all_pairs = full->JoinPairs(pts.AsJoinInput(), JoinMode::kExact);
  decltype(all_pairs) want_pairs;
  std::vector<bool> is_removed(ds.polygons.size(), false);
  for (uint32_t gid : removed) is_removed[gid] = true;
  for (const auto& pair : all_pairs) {
    if (!is_removed[pair.second]) want_pairs.push_back(pair);
  }
  EXPECT_EQ(res.index->JoinPairs(pts.AsJoinInput(), JoinMode::kExact),
            want_pairs);

  act::JoinStats stats =
      res.index->Join(pts.AsJoinInput(), {JoinMode::kExact, 1});
  ASSERT_EQ(stats.counts.size(), ds.polygons.size());
  for (uint32_t gid : removed) EXPECT_EQ(stats.counts[gid], 0u);
}

TEST(DeltaService, LiveMutationsTypedVerdictsAndDropLifecycle) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.06);
  const size_t half = ds.polygons.size() / 2;
  std::vector<geom::Polygon> base_set(ds.polygons.begin(),
                                      ds.polygons.begin() +
                                          static_cast<ptrdiff_t>(half));
  std::vector<geom::Polygon> add_set(ds.polygons.begin() +
                                         static_cast<ptrdiff_t>(half),
                                     ds.polygons.end());
  act::BuildOptions bopts;
  bopts.threads = 1;
  auto base = BuildShared(base_set, grid, {.num_shards = 2, .build = bopts});
  auto fresh = BuildShared(ds.polygons, grid,
                           {.num_shards = 2, .build = bopts});
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 800, grid, 73);
  act::JoinStats want_full =
      fresh->Join(pts.AsJoinInput(), {JoinMode::kExact, 1});

  ServiceOptions sopts;
  sopts.worker_threads = 1;
  JoinService service(base, sopts);  // dataset 0 at epoch 1

  // Applied add: contiguous ids from the previous num_polygons, epoch
  // bumped, joins serve the union immediately.
  MutationResult add = service.AddPolygons(0, add_set);
  ASSERT_EQ(add.status, MutationStatus::kApplied);
  EXPECT_EQ(add.epoch, 2u);
  EXPECT_EQ(add.first_id, static_cast<uint32_t>(half));
  EXPECT_EQ(add.num_polygons, ds.polygons.size());
  JoinResult joined = service.Submit(MakeBatch(pts, JoinMode::kExact)).get();
  EXPECT_EQ(joined.epoch, 2u);
  EXPECT_EQ(joined.stats.counts, want_full.counts);

  // Typed rejections leave the dataset untouched: empty batches,
  // out-of-range removes, unassigned ids.
  EXPECT_EQ(service.AddPolygons(0, {}).status,
            MutationStatus::kInvalidMutation);
  EXPECT_EQ(service
                .RemovePolygons(
                    0, {static_cast<uint32_t>(ds.polygons.size())})
                .status,
            MutationStatus::kInvalidMutation);
  EXPECT_EQ(service.RemovePolygons(0, {}).status,
            MutationStatus::kInvalidMutation);
  EXPECT_EQ(service.AddPolygons(9, add_set).status,
            MutationStatus::kUnknownDataset);
  EXPECT_EQ(service.epoch(), 2u);

  // Applied remove: id slots survive (counts vector keeps its length).
  MutationResult rm = service.RemovePolygons(0, {0});
  ASSERT_EQ(rm.status, MutationStatus::kApplied);
  EXPECT_EQ(rm.epoch, 3u);
  EXPECT_EQ(rm.num_polygons, ds.polygons.size());
  JoinResult after_rm =
      service.Submit(MakeBatch(pts, JoinMode::kExact)).get();
  ASSERT_EQ(after_rm.stats.counts.size(), ds.polygons.size());
  EXPECT_EQ(after_rm.stats.counts[0], 0u);

  // Drop: tombstoned, joins and mutations reject typed, id stays assigned.
  MutationResult drop = service.DropDataset(0);
  ASSERT_EQ(drop.status, MutationStatus::kApplied);
  EXPECT_EQ(drop.epoch, 4u);
  EXPECT_EQ(drop.num_polygons, 0u);
  EXPECT_TRUE(service.catalog().IsDropped(0));
  EXPECT_FALSE(service.catalog().Servable(0));
  EXPECT_EQ(service.AddPolygons(0, add_set).status,
            MutationStatus::kDropped);
  EXPECT_EQ(service.DropDataset(0).status, MutationStatus::kDropped);

  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.mutations_applied, 3u);  // add, remove, drop
  EXPECT_EQ(stats.rejected_mutations, 6u);

  // A full publish resurrects the slot: tombstone cleared, joins serve.
  uint64_t epoch = service.SwapIndex(fresh);
  EXPECT_EQ(epoch, 5u);
  EXPECT_FALSE(service.catalog().IsDropped(0));
  JoinResult revived =
      service.Submit(MakeBatch(pts, JoinMode::kExact)).get();
  EXPECT_EQ(revived.stats.counts, want_full.counts);
  service.Shutdown();
}

TEST(DeltaService, CachedJoinsIdenticalToUncachedAcrossMutations) {
  // End-to-end gate on InvalidateRanges: a cached service must stay
  // byte-identical to an uncached one across live adds and removes — a
  // carried-forward entry that should have been evicted would diverge
  // here on the post-mutation rounds.
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.06);
  const size_t half = ds.polygons.size() / 2;
  std::vector<geom::Polygon> base_set(ds.polygons.begin(),
                                      ds.polygons.begin() +
                                          static_cast<ptrdiff_t>(half));
  std::vector<geom::Polygon> add_set(ds.polygons.begin() +
                                         static_cast<ptrdiff_t>(half),
                                     ds.polygons.end());
  act::BuildOptions bopts;
  bopts.threads = 1;
  bopts.precision_bound_m = 80.0;
  auto base = BuildShared(base_set, grid, {.num_shards = 2, .build = bopts});
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 2000, grid, 74);

  ServiceOptions cached_opts;
  cached_opts.worker_threads = 1;
  cached_opts.cell_cache_capacity = 4096;
  JoinService cached(base, cached_opts);
  ServiceOptions plain_opts;
  plain_opts.worker_threads = 1;
  JoinService plain(base, plain_opts);

  auto expect_identical = [&](const char* stage) {
    for (JoinMode mode : {JoinMode::kExact, JoinMode::kApproximate}) {
      JoinResult want = plain.Submit(MakeBatch(pts, mode)).get();
      for (int round = 0; round < 2; ++round) {  // fill, then hit
        JoinResult got = cached.Submit(MakeBatch(pts, mode)).get();
        EXPECT_EQ(got.stats.counts, want.stats.counts)
            << stage << " round " << round;
        EXPECT_EQ(got.stats.result_pairs, want.stats.result_pairs);
        EXPECT_EQ(got.stats.matched_points, want.stats.matched_points);
      }
    }
  };

  expect_identical("baseline");
  ASSERT_EQ(cached.AddPolygons(0, add_set).status,
            MutationStatus::kApplied);
  ASSERT_EQ(plain.AddPolygons(0, add_set).status, MutationStatus::kApplied);
  expect_identical("after add");
  std::vector<uint32_t> removed;
  for (uint32_t gid = 0; gid < ds.polygons.size(); gid += 2) {
    removed.push_back(gid);
  }
  ASSERT_EQ(cached.RemovePolygons(0, removed).status,
            MutationStatus::kApplied);
  ASSERT_EQ(plain.RemovePolygons(0, removed).status,
            MutationStatus::kApplied);
  expect_identical("after remove");
  EXPECT_GT(cached.Stats().cache_hits, 0u);
  cached.Shutdown();
  plain.Shutdown();
}

TEST(DeltaCache, InvalidateRangesEvictsExactlyTouchedEntries) {
  HotCellCache cache(/*capacity=*/1024, /*num_shards=*/4);
  std::vector<CellRef> refs{{3, false}};
  for (uint64_t cell = 0; cell < 100; ++cell) {
    cache.Insert(/*dataset=*/0, cell, /*epoch=*/1, refs);
    cache.Insert(/*dataset=*/1, cell, /*epoch=*/1, refs);
  }
  // Dataset 0 publishes epoch 2 touching [10,19] and [50,59]; dataset 1
  // is untouched.
  cache.InvalidateRanges(0, /*old_epoch=*/1, /*new_epoch=*/2,
                         {{10, 19}, {50, 59}});

  std::vector<CellRef> got;
  for (uint64_t cell = 0; cell < 100; ++cell) {
    const bool touched = (cell >= 10 && cell <= 19) ||
                         (cell >= 50 && cell <= 59);
    // Touched entries are gone at every epoch; untouched ones were carried
    // forward to epoch 2 (they no longer answer for epoch 1).
    EXPECT_FALSE(cache.Lookup(0, cell, 1, &got)) << cell;
    EXPECT_EQ(cache.Lookup(0, cell, 2, &got), !touched) << cell;
    // The other dataset's entries are untouched at their old epoch.
    EXPECT_TRUE(cache.Lookup(1, cell, 1, &got)) << cell;
  }

  // Drop: every entry of the dataset goes, at every epoch.
  cache.InvalidateDataset(1);
  for (uint64_t cell = 0; cell < 100; ++cell) {
    EXPECT_FALSE(cache.Lookup(1, cell, 1, &got)) << cell;
  }
  EXPECT_GT(cache.size(), 0u);  // dataset 0's survivors remain
}

TEST(DeltaCache, RefreshRaceNeverServesStaleRefsAtNewEpoch) {
  // Regression for the in-place epoch refresh: Insert used to overwrite
  // an entry's refs and epoch separately, so a reader at the new epoch
  // could observe the new epoch paired with the old refs (and an old
  // writer could downgrade a newer entry). Hammered under TSan by the
  // Delta* CI preset.
  HotCellCache cache(/*capacity=*/64, /*num_shards=*/2);
  constexpr uint64_t kCell = 42;
  const std::vector<CellRef> old_refs{{1, false}, {2, false}};
  const std::vector<CellRef> new_refs{{7, true}};

  std::atomic<bool> stop{false};
  struct Observation {
    uint64_t hits = 0;
    uint64_t stale = 0;
  };
  Observation obs;
  std::thread old_writer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      cache.Insert(0, kCell, /*epoch=*/1, old_refs);
    }
  });
  std::thread new_writer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      cache.Insert(0, kCell, /*epoch=*/2, new_refs);
    }
  });
  std::thread reader([&] {
    std::vector<CellRef> got;
    for (int i = 0; i < 100'000; ++i) {
      if (cache.Lookup(0, kCell, /*epoch=*/2, &got)) {
        ++obs.hits;
        if (got.size() != 1 || got[0].local_pid != 7 || !got[0].interior) {
          ++obs.stale;
        }
      }
    }
    stop.store(true, std::memory_order_relaxed);
  });
  reader.join();
  old_writer.join();
  new_writer.join();

  EXPECT_GT(obs.hits, 0u);
  EXPECT_EQ(obs.stale, 0u);
}

}  // namespace
}  // namespace actjoin::service
