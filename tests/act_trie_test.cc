// Tests for the Adaptive Cell Trie: probe correctness against the
// super-covering reference probe across all fanouts, key extension, root
// prefix handling, multi-face trees, and structural stats.

//
// Seeding convention (full rationale in util_test.cc): random data comes
// only from util::Rng with explicit literal seeds or from the workload
// factories, whose default seeds are fixed compile-time constants -- never
// time- or address-derived -- so every ctest run is bit-reproducible.

#include <gtest/gtest.h>

#include <vector>

#include "act/act.h"
#include "act/classifier.h"
#include "act/pipeline.h"
#include "act/super_covering.h"
#include "geo/grid.h"
#include "util/random.h"
#include "workloads/datasets.h"
#include "workloads/polygon_gen.h"

namespace actjoin::act {
namespace {

using actjoin::util::Rng;
using geo::CellId;
using geo::Grid;

RefList OneRef(uint32_t pid, bool interior) {
  RefList l;
  l.push_back({pid, interior});
  return l;
}

// Decodes an entry's refs into a normalized form for comparison.
std::vector<std::pair<uint32_t, bool>> DecodeRefs(TaggedEntry e,
                                                  const LookupTable& table) {
  std::vector<std::pair<uint32_t, bool>> out;
  if (e == kSentinelEntry) return out;
  switch (KindOf(e)) {
    case EntryKind::kOneRef: {
      PolygonRef r = FirstRefOf(e);
      out.emplace_back(r.polygon_id, r.interior);
      break;
    }
    case EntryKind::kTwoRefs: {
      PolygonRef a = FirstRefOf(e);
      PolygonRef b = SecondRefOf(e);
      out.emplace_back(a.polygon_id, a.interior);
      out.emplace_back(b.polygon_id, b.interior);
      break;
    }
    case EntryKind::kTableOffset:
      table.VisitEntry(TableOffsetOf(e), [&](uint32_t pid, bool th) {
        out.emplace_back(pid, th);
      });
      break;
    case EntryKind::kPointer:
      break;
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<uint32_t, bool>> ReferenceRefs(const SuperCovering& sc,
                                                     const CellId& leaf) {
  std::vector<std::pair<uint32_t, bool>> out;
  int64_t idx = sc.FindContaining(leaf);
  if (idx < 0) return out;
  for (const auto& r : sc.refs(idx)) {
    out.emplace_back(r.polygon_id, r.interior);
  }
  std::sort(out.begin(), out.end());
  return out;
}

class TrieFanoutTest : public ::testing::TestWithParam<int> {};

// 2/4/8 bits = the paper's ACT1/ACT2/ACT4; the odd widths exercise the
// ragged key-extension path (60 path bits not divisible by the width).
INSTANTIATE_TEST_SUITE_P(Fanouts, TrieFanoutTest,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8),
                         [](const auto& info) {
                           return "bits" + std::to_string(info.param);
                         });

TEST_P(TrieFanoutTest, ProbeMatchesReferenceOnRandomCells) {
  Grid grid;
  Rng rng(2024);
  SuperCoveringBuilder b;
  // Random cells at many levels, including conflicts.
  for (int k = 0; k < 500; ++k) {
    geo::LatLng p{rng.Uniform(40.4, 41.0), rng.Uniform(-74.3, -73.7)};
    int level = 3 + static_cast<int>(rng.UniformInt(25));
    b.Insert(grid.CellAt(p, level),
             OneRef(static_cast<uint32_t>(rng.UniformInt(20)),
                    rng.NextDouble() < 0.5));
  }
  SuperCovering sc = b.Build();
  ASSERT_TRUE(sc.IsDisjoint());
  EncodedCovering enc = Encode(sc);
  AdaptiveCellTrie trie(enc, {.bits_per_level = GetParam()});

  for (int s = 0; s < 5000; ++s) {
    geo::LatLng p{rng.Uniform(40.3, 41.1), rng.Uniform(-74.4, -73.6)};
    CellId leaf = grid.CellAt(p);
    ASSERT_EQ(DecodeRefs(trie.Probe(leaf.id()), enc.table),
              ReferenceRefs(sc, leaf))
        << "leaf " << leaf.ToString();
  }
}

TEST_P(TrieFanoutTest, AllIndexedLevelsProbeCorrectly) {
  // One disjoint cell per level 0..30, exercising key extension at every
  // alignment: level 0 gets its own face; levels 1..30 form a staircase on
  // face 1 (cell at level l is child(1) of the level-(l-1) spine node, the
  // spine continues through child(0)).
  Grid grid;
  SuperCoveringBuilder b;
  std::vector<CellId> cells;
  cells.push_back(CellId::FromFace(0));
  CellId spine = CellId::FromFace(1);
  for (int level = 1; level <= 30; ++level) {
    cells.push_back(spine.child(1));
    if (level < 30) spine = spine.child(0);
  }
  for (int level = 0; level <= 30; ++level) {
    ASSERT_EQ(cells[level].level(), level);
    b.Insert(cells[level],
             OneRef(static_cast<uint32_t>(level), level % 2 == 0));
  }
  SuperCovering sc = b.Build();
  ASSERT_EQ(sc.size(), 31u);  // no conflicts by construction
  EncodedCovering enc = Encode(sc);
  AdaptiveCellTrie trie(enc, {.bits_per_level = GetParam()});

  Rng rng(1);
  for (int level = 0; level <= 30; ++level) {
    const CellId& c = cells[level];
    // Probe several leaves inside the cell.
    for (int s = 0; s < 30; ++s) {
      uint64_t span = c.range_max().id() - c.range_min().id();
      uint64_t leaf_id =
          c.range_min().id() + (span == 0 ? 0 : rng.UniformInt(span + 1));
      leaf_id |= 1;
      TaggedEntry e = trie.Probe(leaf_id);
      ASSERT_NE(e, kSentinelEntry) << "level " << level;
      ASSERT_EQ(FirstRefOf(e).polygon_id, static_cast<uint32_t>(level));
    }
    // And just outside.
    CellId neighbor = c.next();
    if (neighbor.is_valid() && sc.FindContaining(neighbor.range_min()) < 0) {
      EXPECT_EQ(trie.Probe(neighbor.range_min().id() | 1), kSentinelEntry);
    }
  }
}

TEST_P(TrieFanoutTest, RootPrefixOnOffEquivalent) {
  Grid grid;
  Rng rng(31337);
  SuperCoveringBuilder b;
  // A tightly clustered covering: long shared prefix.
  for (int k = 0; k < 200; ++k) {
    geo::LatLng p{rng.Uniform(40.70, 40.71), rng.Uniform(-74.01, -74.00)};
    b.Insert(grid.CellAt(p, 18 + static_cast<int>(rng.UniformInt(10))),
             OneRef(static_cast<uint32_t>(k % 7), k % 3 == 0));
  }
  SuperCovering sc = b.Build();
  EncodedCovering enc = Encode(sc);
  AdaptiveCellTrie with(enc, {.bits_per_level = GetParam(),
                              .use_root_prefix = true});
  AdaptiveCellTrie without(enc, {.bits_per_level = GetParam(),
                                 .use_root_prefix = false});
  EXPECT_LT(with.stats().node_count, without.stats().node_count);
  for (int s = 0; s < 3000; ++s) {
    geo::LatLng p{rng.Uniform(40.69, 40.72), rng.Uniform(-74.02, -73.99)};
    uint64_t leaf = grid.CellAt(p).id();
    ASSERT_EQ(DecodeRefs(with.Probe(leaf), enc.table),
              DecodeRefs(without.Probe(leaf), enc.table));
  }
}

TEST(Trie, EmptyishSingleCellFace) {
  Grid grid;
  SuperCoveringBuilder b;
  CellId only = grid.CellAt({40.7, -74.0}, 14);
  b.Insert(only, OneRef(9, true));
  SuperCovering sc = b.Build();
  EncodedCovering enc = Encode(sc);
  for (int bits : {2, 4, 8}) {
    AdaptiveCellTrie trie(enc, {.bits_per_level = bits});
    // With root prefix the whole key collapses: probe inside hits...
    EXPECT_NE(trie.Probe(only.range_min().id() | 1), kSentinelEntry);
    EXPECT_NE(trie.Probe(only.range_max().id()), kSentinelEntry);
    // ...and probes outside miss (different prefix or sentinel).
    EXPECT_EQ(trie.Probe(grid.CellAt({0.0, 0.0}).id()), kSentinelEntry);
    EXPECT_EQ(trie.Probe(only.next().range_min().id() | 1), kSentinelEntry);
  }
}

TEST(Trie, FaceLevelCellValueAtRoot) {
  SuperCoveringBuilder b;
  b.Insert(CellId::FromFace(2), OneRef(5, true));
  SuperCovering sc = b.Build();
  EncodedCovering enc = Encode(sc);
  AdaptiveCellTrie trie(enc, {.bits_per_level = 8});
  Grid grid;
  // Anything on face 2 (south, lng in [60, 180)) hits with depth 0; other
  // faces miss.
  int depth = -1;
  TaggedEntry e = trie.ProbeCounting(grid.CellAt({-10, 100.0}).id(), &depth);
  ASSERT_NE(e, kSentinelEntry);
  EXPECT_EQ(FirstRefOf(e).polygon_id, 5u);
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(trie.Probe(grid.CellAt({10, 100.0}).id()), kSentinelEntry);
}

TEST(Trie, MultiFaceCovering) {
  Grid grid;
  SuperCoveringBuilder b;
  // Cells on several faces (south 0..2, north 3..5).
  b.Insert(grid.CellAt({-10.0, -150.0}, 8), OneRef(0, true));  // face 0
  b.Insert(grid.CellAt({10.0, -90.0}, 8), OneRef(1, true));    // face 3
  b.Insert(grid.CellAt({10.0, 150.0}, 8), OneRef(5, false));   // face 5
  SuperCovering sc = b.Build();
  EncodedCovering enc = Encode(sc);
  AdaptiveCellTrie trie(enc, {.bits_per_level = 8});
  EXPECT_EQ(FirstRefOf(trie.Probe(grid.CellAt({-10.0, -150.0}).id()))
                .polygon_id, 0u);
  EXPECT_EQ(FirstRefOf(trie.Probe(grid.CellAt({10.0, -90.0}).id()))
                .polygon_id, 1u);
  EXPECT_EQ(FirstRefOf(trie.Probe(grid.CellAt({10.0, 150.0}).id()))
                .polygon_id, 5u);
  EXPECT_EQ(trie.Probe(grid.CellAt({-10.0, 30.0}).id()), kSentinelEntry);
}

TEST(Trie, DepthBoundsMatchFanout) {
  // ACT4: ceil(60/8) = 8 node accesses max; ACT2: 15; ACT1: 30.
  Grid grid;
  Rng rng(5);
  SuperCoveringBuilder b;
  for (int k = 0; k < 300; ++k) {
    geo::LatLng p{rng.Uniform(-80, 80), rng.Uniform(-179, 179)};
    b.Insert(grid.CellAt(p, 20 + static_cast<int>(rng.UniformInt(11))),
             OneRef(1, true));
  }
  SuperCovering sc = b.Build();
  EncodedCovering enc = Encode(sc);
  struct Bound {
    int bits;
    int max_depth;
  };
  for (Bound bound : {Bound{2, 30}, Bound{4, 15}, Bound{8, 8}}) {
    AdaptiveCellTrie trie(enc, {.bits_per_level = bound.bits,
                                .use_root_prefix = false});
    EXPECT_LE(trie.stats().max_depth, bound.max_depth);
    for (int s = 0; s < 500; ++s) {
      geo::LatLng p{rng.Uniform(-85, 85), rng.Uniform(-179, 179)};
      int depth = 0;
      trie.ProbeCounting(grid.CellAt(p).id(), &depth);
      ASSERT_LE(depth, bound.max_depth);
    }
  }
}

TEST(Trie, StatsAreConsistent) {
  Grid grid;
  Rng rng(6);
  SuperCoveringBuilder b;
  for (int k = 0; k < 400; ++k) {
    geo::LatLng p{rng.Uniform(40.4, 41.0), rng.Uniform(-74.3, -73.7)};
    b.Insert(grid.CellAt(p, 10 + static_cast<int>(rng.UniformInt(10))),
             OneRef(static_cast<uint32_t>(k % 11), k % 2 == 0));
  }
  SuperCovering sc = b.Build();
  EncodedCovering enc = Encode(sc);
  AdaptiveCellTrie trie(enc, {.bits_per_level = 8});
  const ActStats& st = trie.stats();
  EXPECT_GT(st.node_count, 0u);
  EXPECT_EQ(st.memory_bytes, st.node_count * 256 * 8);
  EXPECT_GT(st.value_slots, 0u);
  EXPECT_GE(st.avg_value_depth, 1.0);
  EXPECT_LE(st.avg_value_depth, st.max_depth);
  // Occupancy fractions are valid probabilities.
  for (double occ : st.occupancy_by_depth) {
    EXPECT_GE(occ, 0.0);
    EXPECT_LE(occ, 1.0);
  }
  // Higher fanout => fewer, larger nodes.
  AdaptiveCellTrie narrow(enc, {.bits_per_level = 2});
  EXPECT_GT(narrow.stats().node_count, st.node_count);
}

TEST(Trie, EndToEndPipelineProbesMatchReference) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.08);  // ~25 polygons
  BuildOptions opts;
  opts.threads = 1;
  PolygonIndex index = PolygonIndex::Build(ds.polygons, grid, opts);
  const SuperCovering& sc = index.covering();
  ASSERT_TRUE(sc.IsDisjoint());

  Rng rng(7);
  for (int s = 0; s < 4000; ++s) {
    geo::LatLng p{rng.Uniform(40.45, 40.95), rng.Uniform(-74.3, -73.65)};
    CellId leaf = grid.CellAt(p);
    ASSERT_EQ(DecodeRefs(index.trie().Probe(leaf.id()),
                         index.encoded().table),
              ReferenceRefs(sc, leaf));
  }
}

TEST(Trie, PrecisionBoundPipeline) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.04);
  BuildOptions opts;
  opts.threads = 1;
  opts.precision_bound_m = 100.0;
  PolygonIndex index = PolygonIndex::Build(ds.polygons, grid, opts);
  for (size_t i = 0; i < index.covering().size(); ++i) {
    if (HasCandidate(index.covering().refs(i))) {
      ASSERT_LE(grid.CellDiagonalMeters(index.covering().cell(i)), 100.0);
    }
  }
  EXPECT_GT(index.timings().refine_s, 0.0);
  EXPECT_GT(index.MemoryBytes(), 0u);
}

}  // namespace
}  // namespace actjoin::act
