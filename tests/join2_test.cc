// Tests for the dual-trie crossmatch (src/join2/): the synchronized
// descent must agree byte-for-byte with two independent oracles — the
// index-free brute force and the R-tree × R-tree baseline — on random and
// adversarial fixtures (shared edges, containment nests, empty overlap),
// in both modes, at every thread width; and the dataset-level matcher must
// enforce the catalog's typed-rejection contract while pinning consistent
// epoch pairs across concurrent mutations. Suites are named Join2* so the
// TSan CI job's filter runs the concurrent ones under ThreadSanitizer.
//
// Seeding convention (full rationale in util_test.cc): random data comes
// only from the workload factories with explicit literal seeds.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "act/join.h"
#include "baselines/rtree.h"
#include "geo/grid.h"
#include "join2/cross_match.h"
#include "join2/dataset_cross_matcher.h"
#include "service/join_service.h"
#include "service/sharded_index.h"
#include "workloads/datasets.h"
#include "workloads/polygon_gen.h"

namespace actjoin::join2 {
namespace {

using geo::Grid;
using service::JoinService;
using service::ServiceOptions;
using service::ShardedIndex;

using Pairs = std::vector<std::pair<uint32_t, uint32_t>>;

service::ShardingOptions Sharding(int num_shards) {
  service::ShardingOptions opts;
  opts.num_shards = num_shards;
  return opts;
}

std::shared_ptr<const ShardedIndex> BuildShared(
    const std::vector<geom::Polygon>& polygons, const Grid& grid,
    int num_shards) {
  return std::make_shared<const ShardedIndex>(
      ShardedIndex::Build(polygons, grid, Sharding(num_shards)));
}

/// A jittered nx*ny partition of the NYC extent. dilation 0 keeps the
/// polygons tiling exactly (every neighboring pair shares a full edge —
/// the adversarial fixture for boundary predicates).
std::vector<geom::Polygon> Partition(int nx, int ny, uint64_t seed,
                                     double dilation = 0) {
  return wl::JitteredPartition({.mbr = wl::NycMbr(),
                                .nx = nx,
                                .ny = ny,
                                .edge_depth = 2,
                                .seed = seed,
                                .overlap_dilation = dilation});
}

/// Axis-aligned square ring centered in the NYC extent, side 2 * half.
geom::Polygon CenteredSquare(double half) {
  geom::Rect mbr = wl::NycMbr();
  const double cx = (mbr.lo.x + mbr.hi.x) / 2;
  const double cy = (mbr.lo.y + mbr.hi.y) / 2;
  return geom::Polygon({{cx - half, cy - half},
                        {cx + half, cy - half},
                        {cx + half, cy + half},
                        {cx - half, cy + half}});
}

/// The ordering contract shared by every pair producer in the repo.
template <typename PairVec>
void ExpectSortedUnique(const PairVec& pairs) {
  EXPECT_TRUE(std::is_sorted(pairs.begin(), pairs.end()));
  EXPECT_EQ(std::adjacent_find(pairs.begin(), pairs.end()), pairs.end());
}

/// Everything in CrossMatchStats except the wall clock.
void ExpectStatsEqual(const CrossMatchStats& got, const CrossMatchStats& want) {
  EXPECT_EQ(got.candidate_pairs, want.candidate_pairs);
  EXPECT_EQ(got.refined_pairs, want.refined_pairs);
  EXPECT_EQ(got.pruned_pairs, want.pruned_pairs);
  EXPECT_EQ(got.result_pairs, want.result_pairs);
  EXPECT_EQ(got.max_depth, want.max_depth);
}

/// Runs the dual-trie crossmatch at several widths plus the two oracles
/// and asserts all outputs are byte-identical (and stats width-invariant).
void ExpectAllImplementationsAgree(const std::vector<geom::Polygon>& pa,
                                   const std::vector<geom::Polygon>& pb,
                                   CrossMatchMode mode, int shards_a = 3,
                                   int shards_b = 5) {
  Grid grid;
  ShardedIndex ia = ShardedIndex::Build(pa, grid, Sharding(shards_a));
  ShardedIndex ib = ShardedIndex::Build(pb, grid, Sharding(shards_b));

  Pairs want = BruteForceCrossMatch(pa, pb, mode);
  ExpectSortedUnique(want);

  baselines::RTree ra = baselines::BuildPolygonRTree(pa);
  baselines::RTree rb = baselines::BuildPolygonRTree(pb);
  Pairs rtree = baselines::RTreeCrossMatch(
      ra, pa, rb, pb, mode == CrossMatchMode::kContains);
  ExpectSortedUnique(rtree);
  EXPECT_EQ(rtree, want);

  CrossMatchStats base_stats;
  bool have_base = false;
  for (int width : {1, 2, 4, 8}) {
    CrossMatchStats stats;
    Pairs got = CrossMatchIndexes(ia, ib, {.mode = mode, .threads = width},
                                  nullptr, &stats);
    ExpectSortedUnique(got);
    EXPECT_EQ(got, want) << "mode=" << ToString(mode) << " width=" << width;
    EXPECT_EQ(stats.result_pairs, want.size());
    if (!have_base) {
      base_stats = stats;
      have_base = true;
    } else {
      ExpectStatsEqual(stats, base_stats);
    }
  }
}

// --- Library-level crossmatch ----------------------------------------------

TEST(Join2CrossMatch, RandomPartitionsIntersects) {
  ExpectAllImplementationsAgree(Partition(6, 5, 101), Partition(4, 7, 202),
                                CrossMatchMode::kIntersects);
}

TEST(Join2CrossMatch, RandomPartitionsContains) {
  // Dilated cells of a coarse partition against a finer one: containment
  // actually occurs (a dilated coarse cell covers interior fine cells).
  ExpectAllImplementationsAgree(Partition(3, 3, 303, 0.4),
                                Partition(9, 9, 404),
                                CrossMatchMode::kContains);
}

TEST(Join2CrossMatch, SharedEdgeSelfJoin) {
  // A joined with itself: every polygon shares a full (jittered) edge
  // chain with each grid neighbor and is identical to itself — the
  // boundary-heavy adversarial case for both predicates.
  std::vector<geom::Polygon> pa = Partition(5, 4, 505);
  ExpectAllImplementationsAgree(pa, pa, CrossMatchMode::kIntersects);
  ExpectAllImplementationsAgree(pa, pa, CrossMatchMode::kContains);

  // Self-join sanity: the diagonal intersects and covers itself.
  Grid grid;
  ShardedIndex ia = ShardedIndex::Build(pa, grid, Sharding(2));
  for (CrossMatchMode mode :
       {CrossMatchMode::kIntersects, CrossMatchMode::kContains}) {
    Pairs got = CrossMatchIndexes(ia, ia, {.mode = mode});
    for (uint32_t i = 0; i < pa.size(); ++i) {
      EXPECT_TRUE(std::binary_search(got.begin(), got.end(),
                                     std::make_pair(i, i)))
          << "diagonal pair missing in mode " << ToString(mode);
    }
  }
}

TEST(Join2CrossMatch, ContainmentNest) {
  // Concentric squares: a_i covers b_j iff half_a(i) >= half_b(j). The
  // two sides interleave so both strict nesting and touching-containment
  // (equal halves) occur.
  std::vector<geom::Polygon> pa, pb;
  std::vector<double> halves_a = {0.05, 0.11, 0.17};
  std::vector<double> halves_b = {0.02, 0.05, 0.08, 0.14};
  for (double h : halves_a) pa.push_back(CenteredSquare(h));
  for (double h : halves_b) pb.push_back(CenteredSquare(h));

  ExpectAllImplementationsAgree(pa, pb, CrossMatchMode::kContains, 2, 3);
  ExpectAllImplementationsAgree(pa, pb, CrossMatchMode::kIntersects, 2, 3);

  Grid grid;
  ShardedIndex ia = ShardedIndex::Build(pa, grid, Sharding(2));
  ShardedIndex ib = ShardedIndex::Build(pb, grid, Sharding(2));
  Pairs covers =
      CrossMatchIndexes(ia, ib, {.mode = CrossMatchMode::kContains});
  Pairs want;
  for (uint32_t i = 0; i < halves_a.size(); ++i) {
    for (uint32_t j = 0; j < halves_b.size(); ++j) {
      if (halves_a[i] >= halves_b[j]) want.emplace_back(i, j);
    }
  }
  EXPECT_EQ(covers, want);
  // All squares are concentric, so every pair intersects.
  EXPECT_EQ(CrossMatchIndexes(ia, ib, {.mode = CrossMatchMode::kIntersects})
                .size(),
            pa.size() * pb.size());
}

TEST(Join2CrossMatch, EmptyOverlapPrunesEverything) {
  // Two dense partitions of disjoint extents: the top-level span pair is
  // range-disjoint, so the descent prunes without emitting any candidate
  // or running any refinement.
  geom::Rect left = geom::Rect::Of(-10, -10, -1, 10);
  geom::Rect right = geom::Rect::Of(1, -10, 10, 10);
  std::vector<geom::Polygon> pa = wl::JitteredPartition(
      {.mbr = left, .nx = 4, .ny = 4, .edge_depth = 1, .seed = 606});
  std::vector<geom::Polygon> pb = wl::JitteredPartition(
      {.mbr = right, .nx = 4, .ny = 4, .edge_depth = 1, .seed = 707});

  Grid grid;
  ShardedIndex ia = ShardedIndex::Build(pa, grid, Sharding(3));
  ShardedIndex ib = ShardedIndex::Build(pb, grid, Sharding(3));
  for (CrossMatchMode mode :
       {CrossMatchMode::kIntersects, CrossMatchMode::kContains}) {
    CrossMatchStats stats;
    Pairs got = CrossMatchIndexes(ia, ib, {.mode = mode}, nullptr, &stats);
    EXPECT_TRUE(got.empty());
    EXPECT_EQ(got, BruteForceCrossMatch(pa, pb, mode));
    EXPECT_EQ(stats.candidate_pairs, 0u);
    EXPECT_EQ(stats.refined_pairs, 0u);
    EXPECT_GT(stats.pruned_pairs, 0u);
  }
}

TEST(Join2CrossMatch, SharedExternalPoolMatchesTransient) {
  std::vector<geom::Polygon> pa = Partition(5, 5, 808);
  std::vector<geom::Polygon> pb = Partition(6, 4, 909);
  Grid grid;
  ShardedIndex ia = ShardedIndex::Build(pa, grid, Sharding(4));
  ShardedIndex ib = ShardedIndex::Build(pb, grid, Sharding(4));

  CrossMatchStats want_stats;
  Pairs want = CrossMatchIndexes(
      ia, ib, {.mode = CrossMatchMode::kIntersects, .threads = 1}, nullptr,
      &want_stats);

  util::WorkStealingPool pool(3);
  CrossMatchStats got_stats;
  Pairs got = CrossMatchIndexes(ia, ib, {.mode = CrossMatchMode::kIntersects},
                                &pool, &got_stats);
  EXPECT_EQ(got, want);
  ExpectStatsEqual(got_stats, want_stats);
}

TEST(Join2CrossMatch, IntervalViewIsSortedAndDisjoint) {
  std::vector<geom::Polygon> pa = Partition(6, 6, 111, 0.3);
  Grid grid;
  for (int shards : {1, 3, 8}) {
    ShardedIndex ia = ShardedIndex::Build(pa, grid, Sharding(shards));
    IntervalView view = IntervalView::FromIndex(ia);
    ASSERT_GT(view.size(), 0u);
    for (size_t i = 0; i < view.size(); ++i) {
      const IntervalView::Interval& iv = view.interval(i);
      EXPECT_LE(iv.lo, iv.hi);
      EXPECT_FALSE(view.refs(iv).empty());
      if (i > 0) {
        EXPECT_LT(view.interval(i - 1).hi, iv.lo);
      }
    }
    for (uint32_t gid = 0; gid < pa.size(); ++gid) {
      EXPECT_NE(view.polygon(gid), nullptr);
    }
  }
}

// --- The shared ordering contract (see act::ExecuteJoinPairs) --------------

TEST(Join2OrderingContract, AllPairProducersSortedUnique) {
  Grid grid;
  wl::PolygonDataset ds = wl::Neighborhoods(0.06);
  wl::PointSet pts = wl::TaxiPoints(ds.mbr, 2000, grid, 42);

  // Point-join producers: act::ExecuteJoinPairs (via PolygonIndex) and
  // the routed ShardedIndex::JoinPairs promise sorted unique pairs.
  act::PolygonIndex single = act::PolygonIndex::Build(ds.polygons, grid, {});
  auto single_pairs =
      single.JoinPairs(pts.AsJoinInput(), act::JoinMode::kExact);
  ExpectSortedUnique(single_pairs);

  ShardedIndex sharded =
      ShardedIndex::Build(ds.polygons, grid, Sharding(4));
  auto sharded_pairs =
      sharded.JoinPairs(pts.AsJoinInput(), act::JoinMode::kExact);
  ExpectSortedUnique(sharded_pairs);
  EXPECT_EQ(sharded_pairs, single_pairs);

  // Pair-join producers reuse the same contract — that is what makes the
  // three implementations byte-comparable in the tests above.
  std::vector<geom::Polygon> pb = Partition(4, 4, 212);
  ShardedIndex ib = ShardedIndex::Build(pb, grid, Sharding(2));
  ExpectSortedUnique(
      CrossMatchIndexes(sharded, ib, {.mode = CrossMatchMode::kIntersects}));
  ExpectSortedUnique(
      BruteForceCrossMatch(ds.polygons, pb, CrossMatchMode::kIntersects));
  baselines::RTree ra = baselines::BuildPolygonRTree(ds.polygons);
  baselines::RTree rb = baselines::BuildPolygonRTree(pb);
  ExpectSortedUnique(ra.CrossMatchCandidates(rb));
  ExpectSortedUnique(baselines::RTreeCrossMatch(ra, ds.polygons, rb, pb));
}

// --- Dataset-level matcher -------------------------------------------------

struct TwoDatasetService {
  std::vector<geom::Polygon> pa, pb;
  std::unique_ptr<JoinService> service;
  uint16_t id_a = 0, id_b = 0;

  explicit TwoDatasetService(const ServiceOptions& opts = {}) {
    pa = Partition(5, 4, 131);
    pb = Partition(3, 6, 242);
    Grid grid;
    service = std::make_unique<JoinService>(BuildShared(pa, grid, 3), opts);
    id_a = 0;
    // ASSERT_* cannot run in a constructor; Add only fails on id-space
    // exhaustion, which a two-dataset fixture cannot hit.
    id_b = service->catalog().Add("b", BuildShared(pb, grid, 2)).value();
  }
};

TEST(Join2Matcher, RunMatchesLibraryAndOracle) {
  TwoDatasetService fx;
  DatasetCrossMatcher matcher(fx.service.get());
  for (CrossMatchMode mode :
       {CrossMatchMode::kIntersects, CrossMatchMode::kContains}) {
    CrossMatchOutcome out = matcher.Run(
        {.dataset_a = fx.id_a, .dataset_b = fx.id_b, .mode = mode});
    ASSERT_EQ(out.status, CrossMatchStatus::kOk);
    EXPECT_EQ(out.pairs, BruteForceCrossMatch(fx.pa, fx.pb, mode));
    EXPECT_GT(out.epoch_a, 0u);
    EXPECT_GT(out.epoch_b, 0u);
    EXPECT_EQ(out.stats.result_pairs, out.pairs.size());
  }
}

TEST(Join2Matcher, TypedRejectionsNameTheOffendingSide) {
  TwoDatasetService fx;
  DatasetCrossMatcher matcher(fx.service.get());

  // Unknown ids, either side.
  CrossMatchOutcome out = matcher.Run({.dataset_a = 99, .dataset_b = fx.id_b});
  EXPECT_EQ(out.status, CrossMatchStatus::kUnknownDataset);
  EXPECT_EQ(out.offending_dataset, 99);
  out = matcher.Run({.dataset_a = fx.id_a, .dataset_b = 99});
  EXPECT_EQ(out.status, CrossMatchStatus::kUnknownDataset);
  EXPECT_EQ(out.offending_dataset, 99);

  // Offline reservation: assigned but never published.
  auto offline = fx.service->catalog().AddOffline("offline");
  ASSERT_TRUE(offline.has_value());
  out = matcher.Run({.dataset_a = fx.id_a, .dataset_b = *offline});
  EXPECT_EQ(out.status, CrossMatchStatus::kUnknownDataset);
  EXPECT_EQ(out.offending_dataset, *offline);

  // Tombstoned, either side.
  ASSERT_EQ(fx.service->DropDataset(fx.id_b).status,
            service::MutationStatus::kApplied);
  out = matcher.Run({.dataset_a = fx.id_a, .dataset_b = fx.id_b});
  EXPECT_EQ(out.status, CrossMatchStatus::kDatasetDropped);
  EXPECT_EQ(out.offending_dataset, fx.id_b);
  out = matcher.Run({.dataset_a = fx.id_b, .dataset_b = fx.id_a});
  EXPECT_EQ(out.status, CrossMatchStatus::kDatasetDropped);
  EXPECT_EQ(out.offending_dataset, fx.id_b);

  // A self-join of a live dataset still works after all that.
  out = matcher.Run({.dataset_a = fx.id_a, .dataset_b = fx.id_a});
  EXPECT_EQ(out.status, CrossMatchStatus::kOk);
}

TEST(Join2Matcher, AsyncMatchesRunAndFeedsObservability) {
  TwoDatasetService fx;
  DatasetCrossMatcher matcher(fx.service.get());
  CrossMatchRequest req{.dataset_a = fx.id_a,
                        .dataset_b = fx.id_b,
                        .mode = CrossMatchMode::kIntersects,
                        .request_id = 7777};
  CrossMatchOutcome want = matcher.Run(req);
  ASSERT_EQ(want.status, CrossMatchStatus::kOk);

  std::promise<CrossMatchOutcome> promise;
  std::future<CrossMatchOutcome> future = promise.get_future();
  ASSERT_EQ(matcher.TryCrossMatchAsync(
                req, [&](CrossMatchOutcome out) {
                  promise.set_value(std::move(out));
                }),
            service::SubmitStatus::kAccepted);
  CrossMatchOutcome got = future.get();
  ASSERT_EQ(got.status, CrossMatchStatus::kOk);
  EXPECT_EQ(got.pairs, want.pairs);
  ExpectStatsEqual(got.stats, want.stats);
  EXPECT_EQ(got.epoch_a, want.epoch_a);
  EXPECT_EQ(got.epoch_b, want.epoch_b);

  // Unknown a-side is rejected at the door (done dropped unrun).
  EXPECT_EQ(matcher.TryCrossMatchAsync({.dataset_a = 99},
                                       [](CrossMatchOutcome) { FAIL(); }),
            service::SubmitStatus::kUnknownDataset);

  // Metrics counted both executions; the slow-query log saw the request.
  util::MetricsRegistry* metrics = fx.service->metrics();
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(metrics->GetCounter("crossmatch_requests_total", "")->value(),
            2u);
  EXPECT_EQ(metrics->GetCounter("crossmatch_result_pairs_total", "")->value(),
            2 * want.pairs.size());
  bool logged = false;
  for (const auto& q : fx.service->slow_queries().TopK()) {
    logged |= q.request_id == 7777;
  }
  EXPECT_TRUE(logged);
}

TEST(Join2Matcher, MutationsChangeTheJoinedEpoch) {
  TwoDatasetService fx;
  DatasetCrossMatcher matcher(fx.service.get());
  CrossMatchRequest req{.dataset_a = fx.id_a, .dataset_b = fx.id_b};
  CrossMatchOutcome before = matcher.Run(req);
  ASSERT_EQ(before.status, CrossMatchStatus::kOk);

  // Grow the b-side: the next crossmatch pins the new epoch and matches
  // the oracle over the extended polygon set.
  std::vector<geom::Polygon> added = {CenteredSquare(0.07)};
  auto mut = fx.service->AddPolygons(fx.id_b, added);
  ASSERT_EQ(mut.status, service::MutationStatus::kApplied);
  std::vector<geom::Polygon> pb2 = fx.pb;
  pb2.push_back(added[0]);

  CrossMatchOutcome after = matcher.Run(req);
  ASSERT_EQ(after.status, CrossMatchStatus::kOk);
  EXPECT_GT(after.epoch_b, before.epoch_b);
  EXPECT_EQ(after.epoch_a, before.epoch_a);
  EXPECT_EQ(after.pairs, BruteForceCrossMatch(
                             fx.pa, pb2, CrossMatchMode::kIntersects));

  // Shrink the a-side: removed ids vanish from the output.
  ASSERT_EQ(fx.service->RemovePolygons(fx.id_a, {0, 3}).status,
            service::MutationStatus::kApplied);
  std::vector<uint32_t> skip = {0, 3};
  CrossMatchOutcome removed = matcher.Run(req);
  ASSERT_EQ(removed.status, CrossMatchStatus::kOk);
  EXPECT_EQ(removed.pairs,
            BruteForceCrossMatch(fx.pa, pb2, CrossMatchMode::kIntersects,
                                 skip, {}));
}

// --- Concurrency (runs under TSan in CI) -----------------------------------

TEST(Join2Concurrency, CrossMatchesRaceWithMutations) {
  TwoDatasetService fx;
  DatasetCrossMatcher matcher(fx.service.get());
  CrossMatchRequest req{.dataset_a = fx.id_a, .dataset_b = fx.id_b};

  // Mutator: grow b, shrink a, concurrently with crossmatches. Every
  // concurrent result must be internally well-formed (sorted unique) —
  // each pins one consistent epoch pair.
  std::atomic<bool> stop{false};
  std::atomic<bool> malformed{false};
  std::vector<std::thread> joiners;
  for (int t = 0; t < 3; ++t) {
    joiners.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        CrossMatchOutcome out = matcher.Run(req);
        if (out.status != CrossMatchStatus::kOk) continue;
        if (!std::is_sorted(out.pairs.begin(), out.pairs.end()) ||
            std::adjacent_find(out.pairs.begin(), out.pairs.end()) !=
                out.pairs.end()) {
          malformed.store(true, std::memory_order_relaxed);
        }
      }
    });
  }
  std::vector<geom::Polygon> pb2 = fx.pb;
  for (int i = 0; i < 6; ++i) {
    std::vector<geom::Polygon> add = {
        CenteredSquare(0.02 + 0.01 * static_cast<double>(i))};
    ASSERT_EQ(fx.service->AddPolygons(fx.id_b, add).status,
              service::MutationStatus::kApplied);
    pb2.push_back(add[0]);
    ASSERT_EQ(fx.service->RemovePolygons(fx.id_a, {static_cast<uint32_t>(i)})
                  .status,
              service::MutationStatus::kApplied);
  }
  stop.store(true);
  for (auto& th : joiners) th.join();
  EXPECT_FALSE(malformed.load());

  // Quiesced: the final result matches the oracle over the final state.
  std::vector<uint32_t> skip = {0, 1, 2, 3, 4, 5};
  CrossMatchOutcome final_out = matcher.Run(req);
  ASSERT_EQ(final_out.status, CrossMatchStatus::kOk);
  EXPECT_EQ(final_out.pairs,
            BruteForceCrossMatch(fx.pa, pb2, CrossMatchMode::kIntersects,
                                 skip, {}));
}

}  // namespace
}  // namespace actjoin::join2
