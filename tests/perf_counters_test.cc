// Tests for util/perf_counters.h: the Table-5 bench group's
// start/read/reset round-trip, the typed graceful fallback when
// perf_event_open is denied (forced through the kernel's invalid-attr
// rejection via simulate_denied, so it runs even where the real open
// succeeds), the TSC cycle fallback, Stop()-without-Start() as a safe
// no-op, FD_CLOEXEC hygiene on the perf fds, and the per-thread
// StagePerfCounters group the serving stack charges stages through.
//
// Suite is named PerfCountersTest and deliberately left out of the TSan
// ctest filter: counter values depend on hardware and container policy,
// not on synchronization, and TSan's instrumentation skews them.

#include <dirent.h>
#include <fcntl.h>
#include <unistd.h>

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "util/perf_counters.h"

namespace actjoin::util {
namespace {

/// Burns enough CPU that any working cycle counter must advance.
uint64_t BusyWork() {
  volatile uint64_t acc = 1;
  for (int i = 0; i < 2'000'000; ++i) acc = acc * 2862933555777941757ULL + 3037;
  return acc;
}

TEST(PerfCountersTest, StartStopRoundTrip) {
  PerfCounterGroup g;
  g.Start();
  BusyWork();
  const PerfSample s = g.Stop();
  // Cycles are always measurable: hardware events when the kernel allows
  // them, the TSC otherwise.
  EXPECT_TRUE(s.cycles.valid);
  EXPECT_GT(s.cycles.value, 0u);
  if (g.UsingHardwareEvents()) {
    EXPECT_TRUE(s.instructions.valid);
    EXPECT_GT(s.instructions.value, 0u);
  }
}

TEST(PerfCountersTest, RestartMeasuresFreshDeltas) {
  // Start/Stop twice on one group: the second window must report its own
  // delta, not a running total that includes the first.
  PerfCounterGroup g;
  g.Start();
  BusyWork();
  const PerfSample first = g.Stop();
  g.Start();
  const PerfSample second = g.Stop();  // ~empty window
  ASSERT_TRUE(first.cycles.valid);
  ASSERT_TRUE(second.cycles.valid);
  // The empty window is far smaller than the busy one; a cumulative
  // reading would be strictly larger.
  EXPECT_LT(second.cycles.value, first.cycles.value);
}

TEST(PerfCountersTest, StopWithoutStartIsSafeNoOp) {
  PerfCounterGroup g;
  const PerfSample s = g.Stop();
  EXPECT_FALSE(s.cycles.valid);
  EXPECT_FALSE(s.instructions.valid);
  EXPECT_FALSE(s.branch_misses.valid);
  EXPECT_FALSE(s.cache_misses.valid);
  EXPECT_EQ(s.cycles.value, 0u);
}

TEST(PerfCountersTest, SimulatedDenialFallsBackToTsc) {
  PerfCounterGroup g(PerfCounterGroup::Options{.simulate_denied = true});
  EXPECT_FALSE(g.UsingHardwareEvents());
  g.Start();
  BusyWork();
  const PerfSample s = g.Stop();
  // Cycles degrade to the TSC — still valid, still advancing.
  EXPECT_TRUE(s.cycles.valid);
  EXPECT_GT(s.cycles.value, 0u);
  // Everything else is typed unavailable, never garbage.
  EXPECT_FALSE(s.instructions.valid);
  EXPECT_FALSE(s.branch_misses.valid);
  EXPECT_FALSE(s.cache_misses.valid);
  EXPECT_EQ(s.instructions.value, 0u);
  EXPECT_EQ(s.cache_misses.value, 0u);
}

TEST(PerfCountersTest, StageGroupMonotoneAcrossReads) {
  StagePerfCounters g;
  if (!g.available()) {
    // Denied environment: Read() must be all-zero, not partially valid.
    EXPECT_EQ(g.Read(), StageCounterSample{});
    BusyWork();
    EXPECT_EQ(g.Read(), StageCounterSample{});
    GTEST_SKIP() << "perf_event_open denied; fallback verified";
  }
  const StageCounterSample a = g.Read();
  BusyWork();
  const StageCounterSample b = g.Read();
  // Running totals: the second read includes the busy window.
  EXPECT_GT(b.cycles, a.cycles);
  EXPECT_GT(b.instructions, a.instructions);
  EXPECT_GE(b.llc_misses, a.llc_misses);
  const StageCounterSample delta = b - a;
  EXPECT_GT(delta.cycles, 0u);
}

TEST(PerfCountersTest, StageGroupSimulatedDenialIsAllZero) {
  StagePerfCounters g(StagePerfCounters::Options{.simulate_denied = true});
  EXPECT_FALSE(g.available());
  BusyWork();
  EXPECT_EQ(g.Read(), StageCounterSample{});
}

TEST(PerfCountersTest, PerfFdsAreCloseOnExec) {
  // A serving process fork/execs (snapshot tooling, CI harnesses); leaked
  // perf fds would pin counter groups in the child. Scan /proc/self/fd for
  // perf_event anon inodes and require FD_CLOEXEC on every one.
  StagePerfCounters stage_group;
  PerfCounterGroup bench_group;
  bench_group.Start();
  if (!stage_group.available() && !bench_group.UsingHardwareEvents()) {
    bench_group.Stop();
    GTEST_SKIP() << "perf_event_open denied; no perf fds exist";
  }
  DIR* dir = opendir("/proc/self/fd");
  ASSERT_NE(dir, nullptr);
  int perf_fds = 0;
  while (dirent* entry = readdir(dir)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    char target[256];
    const std::string path = std::string("/proc/self/fd/") + name;
    const ssize_t n = readlink(path.c_str(), target, sizeof(target) - 1);
    if (n <= 0) continue;
    target[n] = '\0';
    if (std::string(target).find("perf_event") == std::string::npos) continue;
    ++perf_fds;
    const int fd = std::stoi(name);
    const int fd_flags = fcntl(fd, F_GETFD);
    ASSERT_GE(fd_flags, 0);
    EXPECT_NE(fd_flags & FD_CLOEXEC, 0) << "perf fd " << fd << " leaks";
  }
  closedir(dir);
  bench_group.Stop();
  EXPECT_GT(perf_fds, 0);
}

}  // namespace
}  // namespace actjoin::util
